"""Figure 8 — performance over training iterations.

Regenerates the training curves: after every training iteration the frozen
model is evaluated on a different application instance; budgets with
different total iteration counts use correspondingly faster epsilon/alpha
decay.  The paper's observation: a large improvement after the first
iteration and convergence within roughly ten iterations.
"""

from __future__ import annotations

from repro.experiments.common import traffic_setup
from repro.experiments.report import report_training
from repro.experiments.training import run_training_study
from repro.units import KB
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec

from .conftest import is_full_scale


def _quick_apps(setup):
    """Reduced-size train/test applications for the quick benchmark scale."""
    names = [descriptor.name for descriptor in setup.accelerators]

    def app(tag, footprints):
        threads = tuple(
            ThreadSpec(
                thread_id=f"{tag}-{i}",
                accelerator_chain=(names[(i * 2 + len(tag)) % len(names)],),
                footprint_bytes=footprint,
                loop_count=1,
            )
            for i, footprint in enumerate(footprints)
        )
        return ApplicationSpec(name=f"fig8-{tag}", phases=(PhaseSpec(name=tag, threads=threads),))

    train = app("train", (24 * KB, 200 * KB, 700 * KB, 48 * KB, 300 * KB))
    test = app("test", (32 * KB, 240 * KB, 900 * KB, 16 * KB))
    return train, test


def _run(runner=None):
    setup = traffic_setup("SoC1", seed=23)
    if is_full_scale():
        return run_training_study(setup=setup, budgets=(10, 30, 50), seed=23, runner=runner)
    train, test = _quick_apps(setup)
    return run_training_study(
        setup=setup, budgets=(5, 10), seed=23, train_app=train, test_app=test, runner=runner
    )


def test_fig8_training(benchmark, emit, sweep_runner):
    result = benchmark.pedantic(_run, args=(sweep_runner,), rounds=1, iterations=1)
    emit("fig8_training", report_training(result))
    for budget, curve in result.curves.items():
        # Training must not make the policy worse than the untrained
        # (random-equivalent) model by the end of the schedule.
        assert curve.final_point().norm_exec <= curve.initial_point().norm_exec * 1.10
        assert len(curve.points) == budget + 1
