"""Orchestration scaling: serial vs. process vs. batched dispatch.

The original record of this benchmark (kept under ``before`` in the JSON)
measured a reduced Figure 9 grid — two long jobs — and showed process
parallelism at 0.96x: with jobs that long, pool overhead is noise and a
single-core container has no headroom anyway.  What that record could not
see is the opposite regime, where the *dispatch* cost dominates: a grid
of many millisecond-scale jobs pays one pickle/unpickle round-trip per
job under the process backend.  The batch backend exists to fix exactly
that — it leases fingerprint-partitioned groups of jobs per round-trip —
so this benchmark now measures both regimes:

* **small grid** (dispatch-bound): a tiny-footprint isolation sweep of
  ~100 jobs, a few milliseconds each.  The headline is the dispatch
  ratio ``process@2 / batch@2`` — same workers, same jobs, only the
  leasing strategy differs — which isolates the round-trip overhead from
  the machine's core count.
* **large grid** (compute-bound): the original reduced Figure 9 grid,
  re-measured with both parallel backends for continuity with ``before``.

Wall-clock speedup over *serial* still depends on physical cores (on a
single-CPU runner it cannot exceed 1x, see ``cpu_count`` in the record);
the benchmark therefore asserts determinism — every backend must produce
identical results — and that batching beats per-job dispatch, not any
serial speedup.
"""

from __future__ import annotations

import json
import os
import time

from repro.accelerators.library import accelerator_by_name
from repro.experiments.common import motivation_setup
from repro.experiments.isolation import run_isolation_experiment
from repro.experiments.socs import run_soc_comparison
from repro.experiments.sweep import RunConfig, SweepRunner
from repro.units import KB
from repro.utils.host import host_metadata

from .conftest import RESULTS_DIR, is_full_scale

PARALLEL_WORKERS = 2

#: The last committed measurement of the pre-batch benchmark, kept so the
#: record shows what the batch backend was built against.
BEFORE = {
    "grid": "reduced Figure 9 (2 jobs, ~2 s each)",
    "jobs": 2,
    "serial_seconds": 3.7430687840001156,
    "process_2workers_seconds": 3.8928762719999668,
    "speedup": 0.961517531631467,
}


def _runner(backend, workers):
    return SweepRunner(config=RunConfig(workers=workers, backend=backend))


def _small_grid_run(backend, workers):
    """A dispatch-bound sweep: many tiny-footprint isolation jobs."""
    setup = motivation_setup(line_bytes=256)
    names = ("FFT", "Sort", "SPMV", "GEMM")
    repeats = 8 if is_full_scale() else 4
    accelerators = [accelerator_by_name(name) for name in names] * repeats
    sizes = {"4KB": 4 * KB, "8KB": 8 * KB}
    started = time.perf_counter()
    measurements = run_isolation_experiment(
        setup,
        accelerators=accelerators,
        sizes=sizes,
        runner=_runner(backend, workers),
    )
    elapsed = time.perf_counter() - started
    table = [
        (m.accelerator_name, m.size_label, m.mode.label, m.exec_cycles, m.ddr_accesses)
        for m in measurements
    ]
    return table, len(measurements), elapsed


def _large_grid_kwargs():
    if is_full_scale():
        return {
            "labels": ("SoC1", "SoC2", "SoC3", "SoC6"),
            "policy_kinds": (
                "fixed-non-coh-dma",
                "fixed-llc-coh-dma",
                "fixed-coh-dma",
                "manual",
                "cohmeleon",
            ),
            "training_iterations": 4,
            "seed": 29,
        }
    return {
        "labels": ("SoC1", "SoC6"),
        "policy_kinds": ("fixed-non-coh-dma", "fixed-coh-dma", "manual", "cohmeleon"),
        "training_iterations": 1,
        "seed": 29,
    }


def _large_grid_run(backend, workers):
    started = time.perf_counter()
    comparison = run_soc_comparison(
        runner=_runner(backend, workers), **_large_grid_kwargs()
    )
    return comparison.points, time.perf_counter() - started


def test_sweep_scaling(benchmark, emit):
    worker_counts = (2, 4) if is_full_scale() else (PARALLEL_WORKERS,)

    def measure():
        small = {"serial": _small_grid_run("serial", 1)}
        for workers in worker_counts:
            small[f"process@{workers}"] = _small_grid_run("process", workers)
            small[f"batch@{workers}"] = _small_grid_run("batch", workers)
        large = {
            "serial": _large_grid_run("serial", 1),
            f"process@{PARALLEL_WORKERS}": _large_grid_run(
                "process", PARALLEL_WORKERS
            ),
            f"batch@{PARALLEL_WORKERS}": _large_grid_run("batch", PARALLEL_WORKERS),
        }
        return small, large

    small, large = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Determinism first: the backend must never change a result.
    for runs in (small, large):
        reference = runs["serial"][0]
        for label, (results, *_rest) in runs.items():
            assert results == reference, f"{label} diverged from serial"

    small_jobs = small["serial"][1]
    small_seconds = {label: run[-1] for label, run in small.items()}
    large_seconds = {label: run[-1] for label, run in large.items()}
    process_key = f"process@{PARALLEL_WORKERS}"
    batch_key = f"batch@{PARALLEL_WORKERS}"
    dispatch_speedup = small_seconds[process_key] / small_seconds[batch_key]
    # The point of the batch backend: same workers, same jobs, fewer
    # round-trips.  This holds on any core count.
    assert dispatch_speedup > 1.0, (
        f"batched dispatch no faster than per-job dispatch "
        f"({small_seconds[process_key]:.3f}s vs {small_seconds[batch_key]:.3f}s)"
    )

    record = {
        "benchmark": "sweep_scaling",
        "cpu_count": os.cpu_count(),
        "host": host_metadata(),
        "before": BEFORE,
        "small_grid": {
            "description": "tiny-footprint isolation sweep (dispatch-bound)",
            "jobs": small_jobs,
            "seconds": small_seconds,
            "batch_vs_process_2workers": dispatch_speedup,
            "serial_vs_batch_2workers": small_seconds["serial"]
            / small_seconds[batch_key],
        },
        "large_grid": {
            "description": "reduced Figure 9 grid (compute-bound)",
            "grid": {
                k: list(v) if isinstance(v, tuple) else v
                for k, v in _large_grid_kwargs().items()
            },
            "jobs": len(_large_grid_kwargs()["labels"]),
            "seconds": large_seconds,
            "serial_vs_batch_2workers": large_seconds["serial"]
            / large_seconds[batch_key],
        },
    }
    (RESULTS_DIR / "BENCH_sweep_scaling.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )

    small_lines = "\n".join(
        f"    {label:12s} {seconds:8.3f} s"
        for label, seconds in sorted(small_seconds.items())
    )
    large_lines = "\n".join(
        f"    {label:12s} {seconds:8.3f} s"
        for label, seconds in sorted(large_seconds.items())
    )
    emit(
        "sweep_scaling",
        "Sweep orchestration scaling\n"
        f"  small grid ({small_jobs} dispatch-bound jobs):\n{small_lines}\n"
        f"  batch vs process @{PARALLEL_WORKERS} workers: {dispatch_speedup:.2f}x\n"
        f"  large grid (reduced Figure 9):\n{large_lines}\n"
        f"  before (pre-batch record): serial {BEFORE['serial_seconds']:.2f} s, "
        f"process@2 {BEFORE['process_2workers_seconds']:.2f} s "
        f"({BEFORE['speedup']:.2f}x)",
    )
