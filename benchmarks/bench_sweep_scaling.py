"""Orchestration scaling: serial vs. multi-worker wall-clock for a SoC grid.

Runs a reduced Figure 9 grid (two SoCs, four policies, one training
iteration) through the sweep runner once serially and once with two worker
processes, verifies the results are identical, and records both wall-clock
times — plus the speedup — to ``benchmarks/results/BENCH_sweep_scaling.json``
so the performance trajectory starts capturing orchestration speedup.

On a single-core machine the parallel run may be no faster (process
scheduling overhead dominates); the benchmark therefore asserts
determinism, not speedup.
"""

from __future__ import annotations

import json
import time

from repro.experiments.socs import run_soc_comparison
from repro.experiments.sweep import SweepRunner

from .conftest import RESULTS_DIR, is_full_scale

PARALLEL_WORKERS = 2


def _grid_kwargs():
    if is_full_scale():
        return {
            "labels": ("SoC1", "SoC2", "SoC3", "SoC6"),
            "policy_kinds": (
                "fixed-non-coh-dma",
                "fixed-llc-coh-dma",
                "fixed-coh-dma",
                "manual",
                "cohmeleon",
            ),
            "training_iterations": 4,
            "seed": 29,
        }
    return {
        "labels": ("SoC1", "SoC6"),
        "policy_kinds": ("fixed-non-coh-dma", "fixed-coh-dma", "manual", "cohmeleon"),
        "training_iterations": 1,
        "seed": 29,
    }


def _timed_run(workers):
    started = time.perf_counter()
    comparison = run_soc_comparison(runner=SweepRunner(workers=workers), **_grid_kwargs())
    return comparison, time.perf_counter() - started


def test_sweep_scaling(benchmark, emit):
    (serial, serial_seconds), (parallel, parallel_seconds) = benchmark.pedantic(
        lambda: (_timed_run(1), _timed_run(PARALLEL_WORKERS)), rounds=1, iterations=1
    )
    assert serial.points == parallel.points  # worker count never changes results

    record = {
        "benchmark": "sweep_scaling",
        "grid": {k: list(v) if isinstance(v, tuple) else v for k, v in _grid_kwargs().items()},
        "jobs": len(_grid_kwargs()["labels"]),
        "serial_seconds": serial_seconds,
        "parallel_workers": PARALLEL_WORKERS,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0,
    }
    (RESULTS_DIR / "BENCH_sweep_scaling.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    emit(
        "sweep_scaling",
        "Sweep orchestration scaling (reduced Figure 9 grid)\n"
        f"  serial:            {serial_seconds:8.2f} s\n"
        f"  {PARALLEL_WORKERS} workers:         {parallel_seconds:8.2f} s\n"
        f"  speedup:           {record['speedup']:8.2f}x",
    )
