"""Figure 6 — design-space exploration of the reward function on SoC0.

Regenerates the scatter of normalised execution time versus normalised
off-chip accesses for fifteen reward weightings plus the baseline policies.
"""

from __future__ import annotations

from repro.experiments.common import traffic_setup
from repro.experiments.report import report_reward_dse
from repro.experiments.reward_dse import REWARD_WEIGHTINGS, run_reward_dse
from repro.utils.stats import mean

from .conftest import is_full_scale


def _run(runner=None):
    setup = traffic_setup("SoC0", seed=13)
    weightings = REWARD_WEIGHTINGS if is_full_scale() else REWARD_WEIGHTINGS[::2]
    return run_reward_dse(
        setup=setup,
        weightings=weightings,
        training_iterations=8 if is_full_scale() else 4,
        seed=13,
        runner=runner,
    )


def test_fig6_reward_dse(benchmark, emit, sweep_runner):
    result = benchmark.pedantic(_run, args=(sweep_runner,), rounds=1, iterations=1)
    emit("fig6_reward_dse", report_reward_dse(result))
    cohmeleon_points = result.cohmeleon_points()
    assert cohmeleon_points
    # Paper shape: the learned policies cluster at low execution time and
    # low off-chip accesses relative to the fixed non-coherent baseline.
    assert mean([p.norm_mem for p in cohmeleon_points]) <= 1.05
