"""Figure 9 and the Section 6 headline numbers.

Regenerates the cross-SoC comparison (SoC0-Streaming, SoC0-Irregular,
SoC1-SoC3 with traffic generators, and the SoC4/SoC5/SoC6 case studies)
for the eight coherence policies, and aggregates it into the paper's
headline summary: average speedup and off-chip-access reduction of
Cohmeleon versus the five fixed (design-time) policies, plus the
comparison against the manually-tuned runtime heuristic.
"""

from __future__ import annotations

from repro.experiments.report import report_headline, report_socs
from repro.experiments.socs import FIGURE9_SOC_LABELS, run_soc_comparison
from repro.experiments.summary import summarize_headline

from .conftest import is_full_scale


def _run(runner=None):
    if is_full_scale():
        labels = FIGURE9_SOC_LABELS
        iterations = 10
    else:
        labels = ("SoC0-Streaming", "SoC0-Irregular", "SoC1", "SoC2", "SoC4", "SoC5", "SoC6")
        iterations = 4
    return run_soc_comparison(
        labels=labels, training_iterations=iterations, seed=29, runner=runner
    )


def test_fig9_socs_and_headline(benchmark, emit, sweep_runner):
    comparison = benchmark.pedantic(_run, args=(sweep_runner,), rounds=1, iterations=1)
    summary = summarize_headline(comparison)
    emit(
        "fig9_socs_and_headline",
        report_socs(comparison) + "\n\n" + report_headline(summary),
    )
    # Paper shape: Cohmeleon improves on the fixed policies on average (the
    # paper reports a 38 % speedup and a 66 % reduction of off-chip
    # accesses; the exact magnitudes depend on the platform).
    assert summary.speedup_vs_fixed > 0.0
    assert summary.mem_reduction_vs_fixed > 0.0
    # And it stays close to the manually-tuned heuristic's execution time.
    assert summary.exec_vs_manual < 1.25
