"""Section 6 — Cohmeleon runtime overhead.

Regenerates the measurement of the fraction of execution time spent in
Cohmeleon's status tracking, decision making, and monitor reads across
workload footprints (the paper reports 3-6 % at 16 KB, below 0.1 % at 4 MB).
"""

from __future__ import annotations

from repro.experiments.common import motivation_setup
from repro.experiments.overhead import run_overhead_experiment
from repro.experiments.report import report_overhead
from repro.units import KB, MB

from .conftest import is_full_scale


def _run(runner=None):
    setup = motivation_setup(line_bytes=256)
    footprints = (
        (16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB)
        if is_full_scale()
        else (16 * KB, 256 * KB, 2 * MB)
    )
    return run_overhead_experiment(
        setup=setup, footprints=footprints, invocations_per_point=2, runner=runner
    )


def test_overhead(benchmark, emit, sweep_runner):
    measurements = benchmark.pedantic(_run, args=(sweep_runner,), rounds=1, iterations=1)
    emit("overhead", report_overhead(measurements))
    # Overhead decreases as the workload grows, and is small for the
    # largest footprint.
    assert measurements[0].overhead_fraction > measurements[-1].overhead_fraction
    assert measurements[-1].overhead_fraction < 0.01
