"""Figure 2 — accelerators running in isolation.

Regenerates the per-(accelerator, workload size) comparison of the four
coherence modes: normalised execution time and off-chip memory accesses,
with each accelerator running alone on the motivation SoC.
"""

from __future__ import annotations

from repro.experiments.common import motivation_setup
from repro.experiments.isolation import (
    ISOLATION_SIZES,
    best_mode_per_workload,
    run_isolation_experiment,
)
from repro.experiments.report import report_isolation
from repro.units import KB, MB

from .conftest import is_full_scale


def _run(runner=None):
    setup = motivation_setup(line_bytes=256)
    sizes = dict(ISOLATION_SIZES) if is_full_scale() else {
        "Small": 16 * KB,
        "Medium": 256 * KB,
        "Large": 2 * MB,
    }
    accelerators = setup.accelerators if is_full_scale() else setup.accelerators[:8]
    return run_isolation_experiment(
        setup, accelerators=accelerators, sizes=sizes, repeats=1, runner=runner
    )


def test_fig2_isolation(benchmark, emit, sweep_runner):
    measurements = benchmark.pedantic(_run, args=(sweep_runner,), rounds=1, iterations=1)
    text = report_isolation(measurements)
    best = best_mode_per_workload(measurements)
    winners = "\n".join(
        f"  best mode for {acc:14s} {size:6s}: {mode.label}"
        for (acc, size), mode in sorted(best.items())
    )
    emit("fig2_isolation", text + "\n\nBest mode per workload:\n" + winners)
    # The headline observation of Section 3: the best mode is not the same
    # for every (accelerator, size) pair.
    assert len(set(best.values())) >= 2
