"""Tables 1-4 of the paper.

These tables are descriptive rather than measured: Table 1 classifies prior
systems by the coherence modes they support, Table 2 maps the accelerators
to benchmark suites, Table 3 defines the RL state space, and Table 4 lists
the parameters of the evaluation SoCs.  The benchmark prints the library's
reproduction of each so that ``bench_output.txt`` contains every table of
the paper.
"""

from __future__ import annotations

from repro.accelerators.catalog import BENCHMARK_SUITE_COVERAGE, mode_support_matrix
from repro.accelerators.library import accelerator_names
from repro.core.state import LEVELS_PER_ATTRIBUTE, NUM_ATTRIBUTES, NUM_STATES
from repro.soc.coherence import COHERENCE_MODES
from repro.soc.config import soc_preset
from repro.utils.tables import format_table


def _table1() -> str:
    matrix = mode_support_matrix()
    headers = ["system"] + [mode.label for mode in COHERENCE_MODES]
    rows = [
        [system] + ["x" if support[mode.label] else "" for mode in COHERENCE_MODES]
        for system, support in sorted(matrix.items())
    ]
    return format_table(headers, rows, title="Table 1 - coherence modes in prior systems")


def _table2() -> str:
    headers = ["suite"] + accelerator_names()
    rows = []
    for suite, covered in sorted(BENCHMARK_SUITE_COVERAGE.items()):
        rows.append([suite] + ["x" if name in covered else "" for name in accelerator_names()])
    return format_table(headers, rows, title="Table 2 - benchmark-suite coverage")


def _table3() -> str:
    rows = [
        ["Fully coh acc", "active fully-coherent accelerators", "0 / 1 / 2+"],
        ["Non coh acc per tile", "non-coherent accelerators per target partition", "0 / 1 / 2+"],
        ["To LLC per tile", "accelerators accessing each target LLC partition", "0 / 1 / 2+"],
        ["Tile footprint", "utilisation of the target cache partitions", "<=L2 / <=LLC slice / >LLC slice"],
        ["Acc footprint", "footprint of the target invocation", "<=L2 / <=LLC slice / >LLC slice"],
        ["(total states)", f"{LEVELS_PER_ATTRIBUTE}^{NUM_ATTRIBUTES}", str(NUM_STATES)],
    ]
    return format_table(["attribute", "description", "values"], rows, title="Table 3 - RL state space")


def _table4() -> str:
    headers = ["parameter"] + [f"SoC{i}" for i in range(7)]
    configs = [soc_preset(f"SoC{i}").describe() for i in range(7)]
    fields = [
        ("Accelerators", "accelerators"),
        ("NoC size", "noc"),
        ("CPUs", "cpus"),
        ("DDRs", "ddrs"),
        ("LLC part. (KB)", "llc_partition_kb"),
        ("Total LLC (KB)", "total_llc_kb"),
        ("L2 cache (KB)", "l2_kb"),
    ]
    rows = [[label] + [config[key] for config in configs] for label, key in fields]
    return format_table(headers, rows, title="Table 4 - parameters of the evaluation SoCs")


def _run() -> str:
    return "\n\n".join([_table1(), _table2(), _table3(), _table4()])


def test_tables(benchmark, emit):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("tables_1_to_4", text)
    assert "Table 1" in text and "Table 4" in text
