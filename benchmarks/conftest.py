"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints the corresponding rows/series (normalised execution time and
off-chip memory accesses).  The reports are also written to
``benchmarks/results/`` so they survive output capturing.

The benchmarks run each experiment exactly once (``benchmark.pedantic`` with
one round): the measured quantity is the wall-clock cost of regenerating
the experiment, and the printed report is the reproduced result itself.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.sweep import ResultCache, SweepRunner, autodetect_workers

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale factor hook: setting REPRO_BENCH_SCALE=full runs the heavier,
#: closer-to-paper configurations; the default keeps the whole suite at a
#: few minutes of wall-clock time.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def is_full_scale() -> bool:
    """Whether the benchmarks should run at full (paper) scale."""
    return BENCH_SCALE == "full"


def bench_workers() -> int:
    """Worker count for the benchmark sweeps.

    ``REPRO_BENCH_WORKERS=N`` forces N workers; ``REPRO_BENCH_WORKERS=auto``
    autodetects one per CPU.  The default is serial so the measured
    wall-clock stays comparable across machines.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "1")
    if raw == "auto":
        return autodetect_workers()
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def sweep_runner() -> SweepRunner:
    """The sweep runner every figure benchmark dispatches its grid through.

    Set ``REPRO_BENCH_CACHE=<dir>`` to reuse simulated jobs across runs
    (useful when iterating on the report layer only).
    """
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    cache = ResultCache(cache_dir) if cache_dir else None
    return SweepRunner(workers=bench_workers(), cache=cache)


@pytest.fixture(scope="session", autouse=True)
def _results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(capsys, _results_dir):
    """Return a function that prints a report and archives it to a file."""

    def _emit(name: str, text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
