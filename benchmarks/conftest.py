"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints the corresponding rows/series (normalised execution time and
off-chip memory accesses).  The reports are also written to
``benchmarks/results/`` so they survive output capturing.

The benchmarks run each experiment exactly once (``benchmark.pedantic`` with
one round): the measured quantity is the wall-clock cost of regenerating
the experiment, and the printed report is the reproduced result itself.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale factor hook: setting REPRO_BENCH_SCALE=full runs the heavier,
#: closer-to-paper configurations; the default keeps the whole suite at a
#: few minutes of wall-clock time.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def is_full_scale() -> bool:
    """Whether the benchmarks should run at full (paper) scale."""
    return BENCH_SCALE == "full"


@pytest.fixture(scope="session", autouse=True)
def _results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(capsys, _results_dir):
    """Return a function that prints a report and archives it to a file."""

    def _emit(name: str, text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
