"""Figure 5 — phase analysis of the evaluation application on SoC0.

Regenerates the comparison of the eight coherence policies on the four
phases (6 threads Large, 3 threads Variable, 10 threads Small, 4 threads
Medium), normalised to the fixed non-coherent-DMA policy.
"""

from __future__ import annotations

from repro.experiments.common import traffic_setup
from repro.experiments.phases import run_phase_analysis
from repro.experiments.report import report_phases

from .conftest import is_full_scale


def _run(runner=None):
    setup = traffic_setup("SoC0", seed=3)
    return run_phase_analysis(
        setup=setup,
        training_iterations=10 if is_full_scale() else 6,
        loops_per_thread=2 if is_full_scale() else 1,
        seed=3,
        runner=runner,
    )


def test_fig5_phases(benchmark, emit, sweep_runner):
    result = benchmark.pedantic(_run, args=(sweep_runner,), rounds=1, iterations=1)
    emit("fig5_phases", report_phases(result))
    # Cohmeleon must stay competitive with the best policy in every phase
    # (the paper: it matches or improves on the best execution time).
    for phase in result.phase_names:
        best_exec = min(entry["exec"] for entry in result.table[phase].values())
        cohmeleon_exec = result.table[phase]["cohmeleon"]["exec"]
        assert cohmeleon_exec <= best_exec * 1.35
