"""Figure 3 — performance degradation with parallel accelerators.

Regenerates the 1/4/8/12-accelerator sweep with medium workloads under each
coherence mode, normalised to the single-accelerator non-coherent-DMA run.
"""

from __future__ import annotations

from repro.experiments.parallel import (
    degradation_summary,
    normalize_parallel,
    parallel_setup,
    run_parallel_experiment,
)
from repro.experiments.report import report_parallel
from repro.soc.coherence import CoherenceMode
from repro.utils.tables import format_mapping

from .conftest import is_full_scale


def _run(runner=None):
    invocations = 4 if is_full_scale() else 3
    return run_parallel_experiment(
        parallel_setup(line_bytes=256), invocations_per_thread=invocations, runner=runner
    )


def test_fig3_parallel(benchmark, emit, sweep_runner):
    measurements = benchmark.pedantic(_run, args=(sweep_runner,), rounds=1, iterations=1)
    text = report_parallel(measurements)
    summary = degradation_summary(measurements)
    emit(
        "fig3_parallel",
        text + "\n\n" + format_mapping("Slowdown from 1 to 12 accelerators", dict(summary)),
    )
    table = normalize_parallel(measurements)
    # Paper shape: every mode degrades with concurrency, and coherent DMA
    # degrades more than non-coherent DMA.
    assert table[12][CoherenceMode.COH_DMA.label]["exec"] > table[1][CoherenceMode.COH_DMA.label]["exec"]
    assert summary[CoherenceMode.COH_DMA.label] > summary[CoherenceMode.NON_COH_DMA.label]
