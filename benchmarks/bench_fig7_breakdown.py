"""Figure 7 — breakdown of coherence decisions.

Regenerates the selection-frequency breakdown (per coherence mode, overall
and per workload-size class) for Cohmeleon and the manually-tuned policy.
"""

from __future__ import annotations

from repro.experiments.breakdown import run_breakdown_experiment
from repro.experiments.common import traffic_setup
from repro.experiments.report import report_breakdown

from .conftest import is_full_scale


def _run(runner=None):
    setup = traffic_setup("SoC0", seed=17)
    return run_breakdown_experiment(
        setup=setup,
        training_iterations=10 if is_full_scale() else 6,
        seed=17,
        runner=runner,
    )


def test_fig7_breakdown(benchmark, emit, sweep_runner):
    result = benchmark.pedantic(_run, args=(sweep_runner,), rounds=1, iterations=1)
    emit("fig7_breakdown", report_breakdown(result))
    cohmeleon = result.breakdowns["cohmeleon"]
    manual = result.breakdowns["manual"]
    # Both policies must have made decisions in every mode category row.
    assert cohmeleon.frequencies["All"]
    assert manual.frequencies["All"]
    # Every frequency row is a probability distribution.
    for breakdown in result.breakdowns.values():
        for frequencies in breakdown.frequencies.values():
            assert abs(sum(frequencies.values()) - 1.0) < 1e-9
