"""Benchmark harnesses regenerating the paper's tables and figures.

Making this directory a package lets the ``bench_*.py`` modules use
relative imports of the shared ``conftest`` helpers under pytest's default
import mode: ``PYTHONPATH=src python -m pytest benchmarks -q``.
"""
