"""Setuptools entry point.

The pyproject.toml carries all metadata; this file exists so that
``pip install -e .`` works in offline environments whose setuptools/pip
combination cannot build PEP 517 editable wheels.
"""

from setuptools import setup

setup()
