"""Property tests for procedural scenario generation.

The contract under test (see ``repro/scenarios/generate/__init__.py``):

* **validity** — for *arbitrary* valid :class:`GenerationSpec` values,
  every generated scenario passes the scenario-file loader's validation
  and assembles into a runnable SoC with a training/testing application
  pair;
* **determinism** — the same (spec, seed) yields byte-identical TOML and
  JSON exports and equal content digests; different seeds yield distinct
  digests; the generated fleet is invariant under the requested count;
* **integration** — generated scenarios run through the sweep runner
  bit-identically across serial/thread/process backends and worker
  counts, with identical job fingerprints (the cache-correctness
  backbone).

Hypothesis draws the specs; the ranges are kept deliberately small so
each sampled scenario simulates in milliseconds.
"""

from __future__ import annotations

import dataclasses
import json
import tomllib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerators.library import accelerator_names
from repro.errors import ConfigurationError
from repro.experiments.sweep import Job, ResultCache, SweepRunner
from repro.scenarios.generate import (
    GenerationSpec,
    NonStationarySpec,
    TopologySpec,
    WorkloadSpec,
    document_json,
    document_toml,
    generate_scenario,
    generate_scenarios,
    generation_spec_from_mapping,
    load_generation_spec,
    scenario_from_generated,
    spec_digest,
    spec_to_mapping,
)
from repro.scenarios.run import (
    _scenario_policy_job,
    resolve_scenario,
    run_scenario,
    scenario_definition_digest,
    scenario_job_params,
)
from repro.units import KB


# ----------------------------------------------------------------------
# Spec strategy
# ----------------------------------------------------------------------

def _range(lo: int, hi: int):
    """An inclusive [a, b] sub-range of [lo, hi], as hypothesis draws it."""
    return (
        st.tuples(st.integers(lo, hi), st.integers(lo, hi))
        .map(sorted)
        .map(tuple)
    )


@st.composite
def gen_specs(draw) -> GenerationSpec:
    """Arbitrary *valid* generation specs over a quick-to-simulate space."""
    names = accelerator_names()
    pool = draw(
        st.lists(st.sampled_from(names), min_size=1, max_size=4, unique=True)
    )
    classes = draw(
        st.lists(st.sampled_from(["S", "M", "L", "XL"]), min_size=1, max_size=3, unique=True)
    )
    weights = draw(
        st.lists(
            st.floats(0.1, 2.0, allow_nan=False),
            min_size=len(classes),
            max_size=len(classes),
        )
    )
    return GenerationSpec(
        name_prefix=draw(st.sampled_from(["gen", "fleet", "x1"])),
        count=draw(st.integers(1, 3)),
        seed=draw(st.integers(0, 2**20)),
        topology=TopologySpec(
            tiles=draw(_range(1, 4)),
            cpus=draw(_range(1, 2)),
            mem_tiles=draw(_range(1, 2)),
            llc_partition_bytes=draw(_range(32 * KB, 128 * KB)),
            l2_bytes=draw(_range(4 * KB, 16 * KB)),
            cacheless_probability=draw(st.sampled_from([0.0, 0.3, 1.0])),
        ),
        workload=WorkloadSpec(
            accelerators=tuple(pool),
            phases=draw(_range(1, 2)),
            threads=draw(_range(1, 2)),
            chain=draw(_range(1, 2)),
            loops=draw(_range(1, 1)),
            size_classes=tuple(classes),
            size_weights=tuple(weights),
        ),
        nonstationary=NonStationarySpec(
            phase_shift_probability=draw(st.sampled_from([0.0, 0.5, 1.0])),
            burst_probability=draw(st.sampled_from([0.0, 0.5, 1.0])),
            burst_threads=draw(_range(2, 4)),
        ),
        training_iterations=1,
    )


# ----------------------------------------------------------------------
# Validity: every generated scenario is a first-class registry citizen
# ----------------------------------------------------------------------

class TestValidity:
    """Arbitrary specs generate loader-valid, runnable scenarios."""

    @given(gen_specs())
    @settings(max_examples=25, deadline=None)
    def test_generated_scenarios_pass_loader_validation_and_assemble(self, spec):
        for item in generate_scenarios(spec):
            # .scenario() routes the document through load_scenario_mapping,
            # i.e. the same validation path as on-disk scenario files.
            scenario = item.scenario()
            assert scenario.name == item.name
            setup = scenario.build_setup()
            assert 1 <= len(setup.accelerators) <= setup.soc_config.num_accelerator_tiles
            training_app, test_app = scenario.applications(setup)
            assert training_app.name != test_app.name
            assert training_app.phases and test_app.phases
            for app in (training_app, test_app):
                for phase in app.phases:
                    assert phase.threads

    @given(gen_specs())
    @settings(max_examples=10, deadline=None)
    def test_generated_metadata_regenerates_the_same_scenario(self, spec):
        item = generate_scenario(spec, index=0)
        scenario = item.scenario()
        regenerated = scenario_from_generated(scenario.metadata["generated"])
        assert regenerated.name == scenario.name
        assert scenario_definition_digest(regenerated) == scenario_definition_digest(
            scenario
        )


# ----------------------------------------------------------------------
# Determinism and digests
# ----------------------------------------------------------------------

class TestDeterminism:
    """Generation is a pure function of (spec, seed)."""

    @given(gen_specs())
    @settings(max_examples=25, deadline=None)
    def test_same_spec_and_seed_is_byte_identical(self, spec):
        first = generate_scenario(spec, index=0)
        # Round-trip the spec through its file format to rule out any
        # in-memory state: a re-parsed spec must generate identical bytes.
        reparsed = generation_spec_from_mapping(spec_to_mapping(spec))
        assert reparsed == spec
        second = generate_scenario(reparsed, index=0)
        assert first.document == second.document
        assert first.digest == second.digest
        assert document_toml(first.document) == document_toml(second.document)
        assert document_json(first.document) == document_json(second.document)

    @given(gen_specs())
    @settings(max_examples=25, deadline=None)
    def test_different_seeds_give_distinct_digests(self, spec):
        other = dataclasses.replace(spec, seed=spec.seed + 1)
        assert generate_scenario(spec).digest != generate_scenario(other).digest
        assert spec_digest(spec) != spec_digest(other)

    @given(gen_specs())
    @settings(max_examples=15, deadline=None)
    def test_fleet_is_count_invariant(self, spec):
        # Asking for more scenarios must not change the earlier ones:
        # the count is a harvest size, not part of any scenario's identity.
        small = generate_scenarios(spec, count=1)
        large = generate_scenarios(spec, count=3)
        assert [g.digest for g in large][: len(small)] == [g.digest for g in small]
        assert [g.name for g in large][: len(small)] == [g.name for g in small]
        assert len({g.digest for g in large}) == len(large)

    @given(gen_specs())
    @settings(max_examples=25, deadline=None)
    def test_exports_round_trip(self, spec):
        document = generate_scenario(spec).document
        assert tomllib.loads(document_toml(document)) == document
        assert json.loads(document_json(document)) == document

    def test_name_carries_the_digest_prefix(self):
        item = generate_scenario(GenerationSpec(name_prefix="abc", seed=3))
        assert item.name == f"abc-{item.digest[:12]}"


# ----------------------------------------------------------------------
# Non-stationary variants
# ----------------------------------------------------------------------

class TestNonStationary:
    """Phase shifts and bursts materialize as advertised."""

    def test_burst_phases_are_many_short_threads(self):
        spec = GenerationSpec(
            seed=5,
            workload=WorkloadSpec(phases=(2, 2), threads=(1, 1)),
            nonstationary=NonStationarySpec(
                burst_probability=1.0, burst_threads=(4, 6)
            ),
        )
        document = generate_scenario(spec).document
        assert "non-stationary" in document["scenario"]["tags"]
        for phase in document["application"]["phases"]:
            assert phase["name"].endswith("-burst")
            assert 4 <= len(phase["threads"]) <= 6
            for thread in phase["threads"]:
                assert len(thread["chain"]) == 1
                assert thread["loops"] == 1

    def test_certain_phase_shifts_are_tagged(self):
        spec = GenerationSpec(
            seed=5,
            workload=WorkloadSpec(phases=(3, 3)),
            nonstationary=NonStationarySpec(phase_shift_probability=1.0),
        )
        document = generate_scenario(spec).document
        assert "non-stationary" in document["scenario"]["tags"]
        names = [phase["name"] for phase in document["application"]["phases"]]
        assert any(name.endswith("-shift") for name in names[1:])

    def test_stationary_specs_are_not_tagged(self):
        document = generate_scenario(GenerationSpec(seed=5)).document
        assert "non-stationary" not in document["scenario"]["tags"]


# ----------------------------------------------------------------------
# Spec validation errors
# ----------------------------------------------------------------------

class TestSpecValidation:
    """Bad specs fail eagerly, naming the offending key."""

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"count": 0}, "[generation].count"),
            ({"name_prefix": ""}, "[generation].name_prefix"),
            ({"name_prefix": "a b"}, "[generation].name_prefix"),
            ({"training_iterations": -1}, "[run].training_iterations"),
            ({"line_bytes": 3}, "[run].line_bytes"),
            ({"policies": ()}, "[run].policies"),
            ({"policies": ("nope",)}, "[run].policies"),
        ],
    )
    def test_generation_spec_errors(self, kwargs, fragment):
        with pytest.raises(ConfigurationError, match=".*") as excinfo:
            GenerationSpec(**kwargs)
        assert fragment in str(excinfo.value)

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"tiles": (3, 1)}, "[topology].tiles"),
            ({"tiles": (0, 2)}, "[topology].tiles"),
            ({"cacheless_probability": 1.5}, "[topology].cacheless_probability"),
            ({"l2_bytes": (64, 128)}, "[topology].l2"),
        ],
    )
    def test_topology_spec_errors(self, kwargs, fragment):
        with pytest.raises(ConfigurationError) as excinfo:
            TopologySpec(**kwargs)
        assert fragment in str(excinfo.value)

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"accelerators": ("NotAnAccelerator",)}, "NotAnAccelerator"),
            ({"size_classes": ("HUGE",)}, "size_class"),
            ({"size_classes": ()}, "[workload].size_classes"),
            ({"size_weights": (1.0,)}, "size_classes and size_weights"),
            (
                {"size_classes": ("S",), "size_weights": (0.0,)},
                "[workload].size_weights",
            ),
        ],
    )
    def test_workload_spec_errors(self, kwargs, fragment):
        with pytest.raises((ConfigurationError, Exception)) as excinfo:
            WorkloadSpec(**kwargs)
        assert fragment in str(excinfo.value)

    def test_unknown_keys_are_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            generation_spec_from_mapping({"typo": {}})
        with pytest.raises(ConfigurationError, match="unknown key"):
            generation_spec_from_mapping({"topology": {"tilez": 3}})

    def test_malformed_ranges_are_rejected(self):
        with pytest.raises(ConfigurationError, match=r"\[workload\].phases"):
            generation_spec_from_mapping({"workload": {"phases": [1, 2, 3]}})
        with pytest.raises(ConfigurationError, match=r"\[generation\].count"):
            generation_spec_from_mapping({"generation": {"count": "many"}})

    def test_spec_file_errors(self, tmp_path):
        bad_ext = tmp_path / "spec.yaml"
        bad_ext.write_text("{}")
        with pytest.raises(ConfigurationError, match="unsupported extension"):
            load_generation_spec(bad_ext)
        bad_toml = tmp_path / "spec.toml"
        bad_toml.write_text("[generation\n")
        with pytest.raises(ConfigurationError, match="invalid TOML"):
            load_generation_spec(bad_toml)
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_generation_spec(tmp_path / "missing.toml")

    def test_resolve_scenario_rejects_mismatched_generated_params(self):
        item = generate_scenario(GenerationSpec(seed=9))
        scenario = item.scenario()
        with pytest.raises(ConfigurationError, match="expected"):
            resolve_scenario("some-other-name", None, scenario.metadata["generated"])


# ----------------------------------------------------------------------
# Sweep integration: backends, worker counts, fingerprints
# ----------------------------------------------------------------------

def _tiny_generated_scenario():
    """One deterministic, milliseconds-fast generated scenario."""
    spec = GenerationSpec(
        name_prefix="itest",
        seed=42,
        topology=TopologySpec(tiles=(2, 2), cpus=(1, 1), mem_tiles=(1, 1)),
        workload=WorkloadSpec(
            phases=(1, 1), threads=(1, 2), chain=(1, 1), loops=(1, 1)
        ),
        training_iterations=1,
    )
    return generate_scenario(spec).scenario()


class TestSweepIntegration:
    """Generated scenarios obey the sweep determinism contract."""

    POLICIES = ["fixed-non-coh-dma", "cohmeleon"]

    def test_fingerprints_are_stable_across_regeneration(self):
        first = _tiny_generated_scenario()
        second = _tiny_generated_scenario()
        for kind in self.POLICIES:
            jobs = [
                Job(
                    key=kind,
                    fn=_scenario_policy_job,
                    params=scenario_job_params(
                        scenario, kind, seed=7, training_iterations=1
                    ),
                    seed=7,
                )
                for scenario in (first, second)
            ]
            assert jobs[0].fingerprint() == jobs[1].fingerprint()

    def test_serial_and_thread_backends_are_bit_identical(self, tmp_path):
        scenario = _tiny_generated_scenario()
        baseline = run_scenario(scenario, policy_kinds=self.POLICIES)
        runner = SweepRunner(
            workers=2, backend="thread", cache=ResultCache(tmp_path / "cache")
        )
        threaded = run_scenario(scenario, policy_kinds=self.POLICIES, runner=runner)
        assert {k: v.to_dict() for k, v in baseline.evaluations.items()} == {
            k: v.to_dict() for k, v in threaded.evaluations.items()
        }

    @pytest.mark.slow
    def test_process_backend_and_worker_counts_are_bit_identical(self, tmp_path):
        scenario = _tiny_generated_scenario()
        baseline = run_scenario(scenario, policy_kinds=self.POLICIES)
        payloads = {k: v.to_dict() for k, v in baseline.evaluations.items()}
        for workers in (1, 2):
            runner = SweepRunner(
                workers=workers,
                backend="process",
                cache=ResultCache(tmp_path / f"cache-{workers}"),
            )
            result = run_scenario(scenario, policy_kinds=self.POLICIES, runner=runner)
            assert payloads == {
                k: v.to_dict() for k, v in result.evaluations.items()
            }, f"process backend with {workers} workers diverged"
