"""Unit tests for the set-associative cache model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.soc.cache import SetAssociativeCache, flush_cost_cycles
from repro.units import KB


def make_cache(size=4 * KB, line=64, ways=4):
    return SetAssociativeCache("test", size_bytes=size, line_bytes=line, ways=ways)


class TestGeometry:
    def test_sets_times_ways_matches_capacity(self):
        cache = make_cache(size=4 * KB, line=64, ways=4)
        assert cache.num_sets * cache.ways * cache.line_bytes == 4 * KB

    def test_ways_clamped_to_capacity(self):
        cache = SetAssociativeCache("tiny", size_bytes=128, line_bytes=64, ways=16)
        assert cache.ways <= 2

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache("bad", size_bytes=0, line_bytes=64, ways=4)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache("bad", size_bytes=32, line_bytes=64, ways=4)

    def test_line_address_alignment(self):
        cache = make_cache()
        assert cache.line_address(130) == 128
        assert cache.line_address(64) == 64

    def test_lines_in_range(self):
        cache = make_cache()
        assert list(cache.lines_in_range(0, 128)) == [0, 64]
        assert list(cache.lines_in_range(10, 1)) == [0]
        assert list(cache.lines_in_range(0, 0)) == []


class TestAccess:
    def test_miss_then_hit(self):
        cache = make_cache()
        hit, evicted, dirty = cache.access_line(0, write=False)
        assert not hit and evicted is None
        hit, _, _ = cache.access_line(0, write=False)
        assert hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_write_marks_dirty(self):
        cache = make_cache()
        cache.access_line(0, write=True)
        assert cache.is_dirty(0)

    def test_read_does_not_mark_dirty(self):
        cache = make_cache()
        cache.access_line(0, write=False)
        assert not cache.is_dirty(0)

    def test_no_allocate_on_miss(self):
        cache = make_cache()
        cache.access_line(0, write=False, allocate=False)
        assert not cache.contains(0)

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache("lru", size_bytes=256, line_bytes=64, ways=2)
        # Two lines mapping to the same set (set count = 2).
        set_stride = cache.num_sets * cache.line_bytes
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access_line(a, write=False)
        cache.access_line(b, write=False)
        cache.access_line(a, write=False)  # refresh a
        _, evicted, _ = cache.access_line(c, write=False)
        assert evicted == b

    def test_dirty_eviction_reports_writeback(self):
        cache = SetAssociativeCache("wb", size_bytes=256, line_bytes=64, ways=2)
        set_stride = cache.num_sets * cache.line_bytes
        cache.access_line(0, write=True)
        cache.access_line(set_stride, write=True)
        _, evicted, dirty = cache.access_line(2 * set_stride, write=True)
        assert evicted == 0
        assert dirty
        assert cache.stats.writebacks == 1

    def test_access_range_counts(self):
        cache = make_cache()
        result = cache.access_range(0, 1024, write=False)
        assert result.lines == 16
        assert result.misses == 16
        again = cache.access_range(0, 1024, write=False)
        assert again.hits == 16


class TestInstallAndFlush:
    def test_install_range_populates_without_stats(self):
        cache = make_cache()
        installed = cache.install_range(0, 1024, dirty=True)
        assert installed == 16
        assert cache.stats.misses == 0
        assert cache.contains(0)

    def test_flush_all_counts_writebacks_and_invalidations(self):
        cache = make_cache()
        cache.install_range(0, 512, dirty=True)
        cache.install_range(512, 512, dirty=False)
        writebacks, invalidations = cache.flush_all()
        assert invalidations == 16
        assert writebacks == 8
        assert cache.valid_lines() == 0

    def test_flush_range_only_touches_range(self):
        cache = make_cache()
        cache.install_range(0, 1024, dirty=True)
        writebacks, invalidations = cache.flush_range(0, 512)
        assert writebacks == 8
        assert invalidations == 8
        assert cache.contains(512)
        assert not cache.contains(0)

    def test_flush_empty_cache_is_noop(self):
        cache = make_cache()
        assert cache.flush_all() == (0, 0)

    def test_flush_cost_model(self):
        assert flush_cost_cycles(0, 0, 100.0, 2.0) == pytest.approx(100.0)
        assert flush_cost_cycles(4, 10, 100.0, 2.0) == pytest.approx(120.0)


class TestRecallAndOccupancy:
    def test_recall_line_removes_and_reports_dirty(self):
        cache = make_cache()
        cache.access_line(0, write=True)
        assert cache.recall_line(0)
        assert not cache.contains(0)
        assert cache.stats.recalls == 1

    def test_recall_clean_line(self):
        cache = make_cache()
        cache.access_line(0, write=False)
        assert not cache.recall_line(0)

    def test_invalidate_absent_line(self):
        cache = make_cache()
        assert not cache.invalidate_line(0)

    def test_occupancy_tracking(self):
        cache = make_cache(size=1 * KB)
        cache.install_range(0, 512, dirty=True)
        assert cache.occupancy_bytes() == 512
        assert 0.0 < cache.occupancy_fraction() <= 1.0
        assert cache.dirty_lines() == 8

    def test_resident_lines_within(self):
        cache = make_cache()
        cache.install_range(0, 256, dirty=False)
        resident = cache.resident_lines_within(64, 128)
        assert sorted(resident) == [64, 128]
        assert cache.resident_lines_within(4096, 128) == []
        assert cache.resident_lines_within(0, 0) == []

    def test_resident_lines_in_range_count(self):
        cache = make_cache()
        cache.install_range(0, 256, dirty=False)
        assert cache.resident_lines_in_range(0, 256) == 4

    def test_clear_resets_everything(self):
        cache = make_cache()
        cache.access_range(0, 512, write=True)
        cache.clear()
        assert cache.valid_lines() == 0
        assert cache.stats.accesses == 0

    def test_capacity_never_exceeded(self):
        cache = make_cache(size=1 * KB, line=64, ways=4)
        cache.access_range(0, 16 * KB, write=True)
        assert cache.valid_lines() <= 16
