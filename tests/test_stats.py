"""Unit tests for repro.utils.stats."""

from __future__ import annotations

import math

import pytest

from repro.utils.stats import (
    RunningStats,
    geometric_mean,
    mean,
    normalize,
    normalized_series,
    safe_ratio,
    summarize_reduction,
    summarize_speedup,
)


class TestMean:
    def test_simple_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert mean([]) == 0.0


class TestGeometricMean:
    def test_matches_closed_form(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert geometric_mean([]) == 0.0

    def test_zero_values_do_not_collapse(self):
        assert geometric_mean([0.0, 1.0]) > 0.0

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)


class TestNormalize:
    def test_normalizes_to_reference(self):
        result = normalize({"a": 2.0, "b": 4.0}, "a")
        assert result == {"a": 1.0, "b": 2.0}

    def test_missing_reference_raises(self):
        with pytest.raises(KeyError):
            normalize({"a": 1.0}, "missing")

    def test_zero_reference_returns_unchanged(self):
        values = {"a": 0.0, "b": 3.0}
        assert normalize(values, "a") == values

    def test_normalized_series(self):
        series = {"g1": {"a": 2.0, "b": 1.0}, "g2": {"a": 10.0, "b": 5.0}}
        result = normalized_series(series, "a")
        assert result["g1"]["b"] == pytest.approx(0.5)
        assert result["g2"]["b"] == pytest.approx(0.5)


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(6.0, 3.0) == 2.0

    def test_zero_denominator_returns_default(self):
        assert safe_ratio(6.0, 0.0, default=-1.0) == -1.0


class TestRunningStats:
    def test_tracks_extrema_and_mean(self):
        stats = RunningStats()
        stats.extend([1.0, 5.0, 3.0])
        assert stats.count == 3
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.mean == pytest.approx(3.0)

    def test_variance_and_stddev(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.variance == pytest.approx(4.0)
        assert stats.stddev == pytest.approx(2.0)

    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert math.isinf(stats.minimum)

    def test_merge_combines_counts(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        b = RunningStats()
        b.extend([3.0, 4.0])
        merged = a.merge(b)
        assert merged.count == 4
        assert merged.minimum == 1.0
        assert merged.maximum == 4.0
        assert merged.mean == pytest.approx(2.5)


class TestSummaries:
    def test_speedup_of_two_x(self):
        assert summarize_speedup([10.0, 10.0], [5.0, 5.0]) == pytest.approx(1.0)

    def test_speedup_mismatched_lengths(self):
        with pytest.raises(ValueError):
            summarize_speedup([1.0], [1.0, 2.0])

    def test_reduction_of_half(self):
        assert summarize_reduction([10.0, 10.0], [5.0, 5.0]) == pytest.approx(0.5)

    def test_reduction_never_negative(self):
        assert summarize_reduction([1.0], [5.0]) == 0.0

    def test_reduction_mismatched_lengths(self):
        with pytest.raises(ValueError):
            summarize_reduction([1.0], [])
