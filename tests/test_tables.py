"""Unit tests for repro.utils.tables."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_mapping, format_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["name", "value"], [["a", 1], ["b", 2]])
        assert "name" in text and "value" in text
        assert "a" in text and "b" in text

    def test_title_is_first_line(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_floats_are_formatted(self):
        text = format_table(["v"], [[1.23456]])
        assert "1.235" in text

    def test_columns_are_aligned(self):
        text = format_table(["col", "x"], [["aaaa", 1], ["b", 22]])
        lines = [line for line in text.splitlines() if "|" in line]
        positions = {line.index("|") for line in lines}
        assert len(positions) == 1

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatMapping:
    def test_mapping_rendered_sorted(self):
        text = format_mapping("t", {"b": 2, "a": 1})
        lines = text.splitlines()
        assert lines[0] == "t"
        a_index = next(i for i, line in enumerate(lines) if line.startswith("a"))
        b_index = next(i for i, line in enumerate(lines) if line.startswith("b"))
        assert a_index < b_index
