"""Unit tests for DRAM controllers, LLC partitions, and hardware monitors."""

from __future__ import annotations

import pytest

from repro.soc.dram import DramController
from repro.soc.llc import LLCPartition
from repro.soc.monitors import AcceleratorCounters, HardwareMonitors
from repro.units import KB


@pytest.fixture
def dram():
    return DramController(mem_tile=0, bytes_per_cycle=8.0, latency_cycles=100.0, line_bytes=64)


@pytest.fixture
def llc():
    return LLCPartition(
        mem_tile=0,
        size_bytes=64 * KB,
        line_bytes=64,
        ways=8,
        port_bytes_per_cycle=8.0,
        lookup_cycles=10.0,
    )


class TestDramController:
    def test_read_counts_lines(self, dram):
        dram.read(0.0, 1024)
        assert dram.counters.reads == 16
        assert dram.counters.writes == 0
        assert dram.total_accesses == 16

    def test_write_counts_lines(self, dram):
        dram.write(0.0, 640)
        assert dram.counters.writes == 10

    def test_write_back_counts_lines_directly(self, dram):
        dram.write_back(0.0, 5)
        assert dram.counters.writes == 5

    def test_zero_size_transfers_are_free(self, dram):
        assert dram.read(10.0, 0) == 10.0
        assert dram.write(10.0, 0) == 10.0
        assert dram.write_back(10.0, 0) == 10.0
        assert dram.total_accesses == 0

    def test_more_bursts_cost_more_latency(self, dram):
        single = dram.read(0.0, 4096, bursts=1)
        dram.reset()
        many = dram.read(0.0, 4096, bursts=16)
        assert many > single

    def test_snapshot_is_a_copy(self, dram):
        dram.read(0.0, 64)
        snapshot = dram.snapshot()
        dram.read(0.0, 64)
        assert snapshot.reads == 1
        assert dram.counters.reads == 2

    def test_reset_clears_counters(self, dram):
        dram.read(0.0, 64)
        dram.reset()
        assert dram.total_accesses == 0


class TestLLCPartition:
    def test_lookup_range_hits_after_warm(self, llc):
        llc.warm(0, 4 * KB, dirty=True)
        result = llc.lookup_range(0, 4 * KB, write=False)
        assert result.misses == 0
        assert result.hits == 64

    def test_lookup_range_misses_cold(self, llc):
        result = llc.lookup_range(0, 4 * KB, write=False)
        assert result.misses == 64

    def test_port_serialization(self, llc):
        first = llc.serve_port(0.0, 1024)
        second = llc.serve_port(0.0, 1024)
        assert second > first

    def test_flush_reports_dirty_writebacks(self, llc):
        llc.warm(0, 2 * KB, dirty=True)
        writebacks, invalidations = llc.flush()
        assert writebacks == 32
        assert invalidations == 32

    def test_occupancy_and_stats(self, llc):
        llc.warm(0, 8 * KB)
        assert llc.occupancy_bytes() == 8 * KB
        stats = llc.stats()
        assert "hits" in stats and "port_requests" in stats

    def test_reset(self, llc):
        llc.warm(0, 1 * KB)
        llc.serve_port(0.0, 64)
        llc.reset()
        assert llc.occupancy_bytes() == 0
        assert llc.stats()["port_requests"] == 0

    def test_size_property(self, llc):
        assert llc.size_bytes == 64 * KB


class TestHardwareMonitors:
    def test_ddr_snapshot_and_delta(self, dram):
        monitors = HardwareMonitors([dram])
        before = monitors.ddr_snapshot()
        dram.read(0.0, 640)
        after = monitors.ddr_snapshot()
        delta = before.delta(after)
        assert delta[0] == 10
        assert after.total == 10

    def test_total_ddr_accesses(self, dram):
        monitors = HardwareMonitors([dram])
        dram.write(0.0, 128)
        assert monitors.total_ddr_accesses() == 2

    def test_accelerator_counters_accumulate(self):
        monitors = HardwareMonitors([])
        monitors.reset_accelerator("acc0")
        monitors.add_accelerator_cycles("acc0", 100.0, 40.0)
        monitors.add_accelerator_cycles("acc0", 50.0, 10.0)
        counters = monitors.read_accelerator("acc0")
        assert counters.total_cycles == 150.0
        assert counters.comm_cycles == 50.0
        assert counters.comm_ratio == pytest.approx(1.0 / 3.0)

    def test_unknown_accelerator_reads_zero(self):
        monitors = HardwareMonitors([])
        counters = monitors.read_accelerator("ghost")
        assert counters.total_cycles == 0.0

    def test_comm_ratio_bounds(self):
        counters = AcceleratorCounters(total_cycles=10.0, comm_cycles=20.0)
        assert counters.comm_ratio == 1.0
        assert AcceleratorCounters().comm_ratio == 0.0

    def test_reset_clears_counters(self, dram):
        monitors = HardwareMonitors([dram])
        dram.read(0.0, 64)
        monitors.add_accelerator_cycles("acc0", 10.0, 5.0)
        monitors.reset()
        assert monitors.total_ddr_accesses() == 0
        assert monitors.read_accelerator("acc0").total_cycles == 0.0
