"""Concurrency proofs for the serving stack.

Two properties anchor this module (they are the PR's acceptance
criteria):

* **Bit-identical under concurrency** — N >= 8 concurrent clients
  hammering ``/v1/decide`` receive exactly the decisions an offline
  :meth:`QTable.best_modes` evaluation of the same artifact produces,
  for hypothesis-generated state streams and batch shapes.
* **No torn models under hot reload** — while the registry artifact is
  being atomically swapped between two maximally distinguishable tables
  (every state's greedy mode differs), every response must be *entirely*
  from one table: its decision vector matches that table's offline
  evaluation and its digest is that table's digest.  A mixed response
  (decisions from one table, digest from another — or decisions
  straddling both) fails the test.

Hypothesis drives the request interleavings; everything runs over the
real asyncio HTTP transport on a loopback socket.
"""

from __future__ import annotations

import asyncio
import threading
import time

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from serving_harness import make_artifact, make_registry, make_server, make_service

from repro.core.state import NUM_STATES
from repro.serving import ServingClient
from repro.soc.coherence import CoherenceMode

#: Concurrency floor the acceptance criteria demand.
NUM_CLIENTS = 8


# ----------------------------------------------------------------------
# N concurrent clients == offline evaluation
# ----------------------------------------------------------------------
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    streams=st.lists(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=NUM_STATES - 1),
                min_size=1,
                max_size=32,
            ),
            min_size=1,
            max_size=6,
        ),
        min_size=NUM_CLIENTS,
        max_size=NUM_CLIENTS,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_concurrent_clients_match_offline_qtable(tmp_path_factory, streams, seed):
    """Every concurrent client's decisions equal the offline evaluation."""
    tmp_path = tmp_path_factory.mktemp("serving-conc")
    artifact = make_artifact(seed=seed % 1000, updates=800)
    registry = make_registry(tmp_path / "models", artifact)
    qtable = artifact.build_policy().agent.qtable
    expected = [
        [[mode.label for mode in qtable.best_modes(batch)] for batch in stream]
        for stream in streams
    ]

    async def _client(server, stream, sink):
        async with ServingClient(server.host, server.port) as client:
            for batch in stream:
                status, document = await client.decide(batch)
                assert status == 200
                assert document["digest"] == artifact.digest
                sink.append(document["decisions"])

    async def _run():
        service = make_service(registry)
        async with make_server(service) as server:
            sinks = [[] for _ in streams]
            await asyncio.gather(
                *(
                    _client(server, stream, sink)
                    for stream, sink in zip(streams, sinks)
                )
            )
            return sinks

    assert asyncio.run(_run()) == expected


# ----------------------------------------------------------------------
# Hot reload under load never serves a torn model
# ----------------------------------------------------------------------
def _biased_expectations():
    """Two artifacts whose greedy decisions differ in every state."""
    table_a = make_artifact(name="served", bias_mode=CoherenceMode.NON_COH_DMA)
    table_b = make_artifact(name="served", bias_mode=CoherenceMode.FULL_COH)
    assert table_a.digest != table_b.digest
    expectations = {
        table_a.digest: "non-coh-dma",
        table_b.digest: "full-coh",
    }
    return table_a, table_b, expectations


@settings(max_examples=6, deadline=None)
@given(
    batches=st.lists(
        st.lists(
            st.integers(min_value=0, max_value=NUM_STATES - 1),
            min_size=1,
            max_size=16,
        ),
        min_size=3,
        max_size=8,
    ),
    flips=st.integers(min_value=2, max_value=5),
)
def test_hot_reload_under_load_never_tears(tmp_path_factory, batches, flips):
    """Every response is wholly from one table: digest and decisions agree.

    A writer task atomically flips the registry artifact between the two
    biased tables while reload checks and decision requests interleave on
    the server; each client response must satisfy
    ``decisions == [expectations[digest]] * len(batch)`` — the definition
    of "old or new, never a mix".
    """
    tmp_path = tmp_path_factory.mktemp("serving-reload")
    table_a, table_b, expectations = _biased_expectations()
    registry = make_registry(tmp_path / "models", table_a)
    generations = []

    async def _writer(server):
        # Flip the artifact and force reload checks, interleaving with
        # the clients below on the same event loop.
        tables = [table_b, table_a]
        async with ServingClient(server.host, server.port) as control:
            for flip in range(flips):
                registry.save(tables[flip % 2], replace=True)
                await asyncio.sleep(0)
                status, document = await control.post("/v1/reload", {})
                assert status == 200
                generations.append(document["generation"])
                await asyncio.sleep(0)

    async def _reader(server, index):
        async with ServingClient(server.host, server.port) as client:
            for batch in batches:
                status, document = await client.decide(batch)
                assert status == 200
                digest = document["digest"]
                assert digest in expectations, f"unknown digest {digest!r}"
                expected_label = expectations[digest]
                assert document["decisions"] == [expected_label] * len(batch), (
                    "torn response: digest says "
                    f"{expected_label!r} but decisions were "
                    f"{document['decisions']!r}"
                )
                await asyncio.sleep(0)

    async def _run():
        service = make_service(registry)
        async with make_server(service) as server:
            await asyncio.gather(
                _writer(server),
                *(_reader(server, index) for index in range(NUM_CLIENTS)),
            )

    asyncio.run(_run())
    # Generations only ever move forward, one per observed digest change.
    assert generations == sorted(generations)


def test_reload_during_slow_whatif_does_not_tear_the_response(tmp_path):
    """A what-if captures its model before a reload lands mid-simulation.

    The response's ``pretrained_digest`` must be the digest of the model
    that was current when the request *started*, even though the served
    model changed while the simulation ran on the executor thread.
    """
    table_a, table_b, expectations = _biased_expectations()
    registry = make_registry(tmp_path / "models", table_a)

    async def _run():
        service = make_service(registry, whatif_max_events=2_000_000)
        async with make_server(service) as server:
            async with ServingClient(server.host, server.port) as client:
                whatif = asyncio.ensure_future(
                    client.post("/v1/whatif", {"scenario": "quickstart"})
                )
                # Let the what-if dispatch to the executor, then swap.
                await asyncio.sleep(0.01)
                registry.save(table_b, replace=True)
                async with ServingClient(server.host, server.port) as control:
                    status, document = await control.post("/v1/reload", {})
                    assert status == 200
                status, document = await whatif
                assert status == 200
                # Captured-before-dispatch snapshot, not the new model.
                assert document["pretrained_digest"] == table_a.digest
                # New decision requests already see the new model.
                status, decided = await client.post("/v1/decide", {"state": 0})
                assert decided["digest"] == table_b.digest

    asyncio.run(_run())


# ----------------------------------------------------------------------
# Registry write race (satellite regression test)
# ----------------------------------------------------------------------
def test_load_retry_survives_continuous_atomic_rewrites(tmp_path):
    """A reader loop never fails while a writer thread swaps the artifact.

    The writer alternates two valid artifacts through the atomic
    write-commit path as fast as it can; a concurrent reader calling
    :meth:`ModelRegistry.load_retry` must always get one of the two
    digests and never raise — the old-or-new-never-torn registry
    contract.
    """
    table_a, table_b, _ = _biased_expectations()
    registry = make_registry(tmp_path / "models", table_a)
    digests = {table_a.digest, table_b.digest}
    stop = threading.Event()
    writer_error = []

    def _writer():
        tables = [table_a, table_b]
        index = 0
        try:
            while not stop.is_set():
                registry.save(tables[index % 2], replace=True)
                index += 1
        except Exception as exc:  # pragma: no cover - diagnostic path
            writer_error.append(exc)

    thread = threading.Thread(target=_writer, daemon=True)
    thread.start()
    try:
        deadline = time.monotonic() + 2.0
        reads = 0
        while time.monotonic() < deadline:
            artifact = registry.load_retry("served")
            assert artifact.digest in digests
            reads += 1
    finally:
        stop.set()
        thread.join(timeout=10)
    assert not writer_error, f"writer failed: {writer_error[0]}"
    assert reads > 50  # the loop really raced the writer
