"""Unit tests for the coherence-mode datapaths."""

from __future__ import annotations

import pytest

from repro.errors import CoherenceError
from repro.soc.coherence import CoherenceMode
from repro.soc.soc import Soc
from repro.units import KB


@pytest.fixture
def soc(tiny_config):
    return Soc(tiny_config)


def read_buffer(soc, mode, size=8 * KB, warm=False, tile="acc0"):
    buffer = soc.allocate_buffer(size)
    if warm:
        soc.warm_buffer(buffer, cpu_index=0)
    private = soc.private_cache_of(tile)
    finish, stats = soc.datapath.dma_read(
        0.0, tile, buffer.slice(0, size), mode, burst_bytes=1024, private_cache=private
    )
    return buffer, finish, stats


class TestNonCoherentPath:
    def test_reads_go_to_dram(self, soc):
        _, finish, stats = read_buffer(soc, CoherenceMode.NON_COH_DMA)
        assert stats.dram_read_lines == 8 * KB // 64
        assert finish > 0

    def test_writes_go_to_dram(self, soc):
        buffer = soc.allocate_buffer(4 * KB)
        _, stats = soc.datapath.dma_write(
            0.0, "acc0", buffer.slice(0, 4 * KB), CoherenceMode.NON_COH_DMA, 1024
        )
        assert stats.dram_write_lines == 64

    def test_warm_data_does_not_help(self, soc):
        _, _, cold_stats = read_buffer(soc, CoherenceMode.NON_COH_DMA, warm=False)
        soc.reset_state(clear_allocations=True)
        _, _, warm_stats = read_buffer(soc, CoherenceMode.NON_COH_DMA, warm=True)
        assert warm_stats.dram_read_lines == cold_stats.dram_read_lines


class TestLLCCoherentPath:
    def test_warm_data_hits_in_llc(self, soc):
        _, _, stats = read_buffer(soc, CoherenceMode.LLC_COH_DMA, warm=True)
        assert stats.dram_read_lines == 0
        assert stats.llc_hits > 0

    def test_cold_data_misses_to_dram(self, soc):
        _, _, stats = read_buffer(soc, CoherenceMode.LLC_COH_DMA, warm=False)
        assert stats.dram_read_lines > 0
        assert stats.llc_misses > 0

    def test_warm_read_faster_than_cold(self, soc):
        _, cold_finish, _ = read_buffer(soc, CoherenceMode.LLC_COH_DMA, warm=False)
        soc.reset_state(clear_allocations=True)
        _, warm_finish, _ = read_buffer(soc, CoherenceMode.LLC_COH_DMA, warm=True)
        assert warm_finish < cold_finish

    def test_write_allocates_without_dram_fetch(self, soc):
        buffer = soc.allocate_buffer(4 * KB)
        _, stats = soc.datapath.dma_write(
            0.0, "acc0", buffer.slice(0, 4 * KB), CoherenceMode.LLC_COH_DMA, 1024
        )
        assert stats.dram_read_lines == 0


class TestCoherentDmaPath:
    def test_recalls_dirty_lines_from_cpu_cache(self, soc):
        buffer = soc.allocate_buffer(4 * KB)
        soc.cpu_l2_caches[0].install_range(buffer.segments[0].start, 4 * KB, dirty=True)
        _, stats = soc.datapath.dma_read(
            0.0, "acc0", buffer.slice(0, 4 * KB), CoherenceMode.COH_DMA, 1024
        )
        assert stats.recalls == 64
        assert soc.cpu_l2_caches[0].resident_lines_in_range(
            buffer.segments[0].start, 4 * KB
        ) == 0

    def test_no_recalls_when_caches_empty(self, soc):
        _, _, stats = read_buffer(soc, CoherenceMode.COH_DMA, warm=False)
        assert stats.recalls == 0

    def test_recall_adds_latency(self, soc):
        buffer = soc.allocate_buffer(4 * KB)
        base_finish, _ = soc.datapath.dma_read(
            0.0, "acc0", buffer.slice(0, 4 * KB), CoherenceMode.COH_DMA, 1024
        )
        soc.reset_state(clear_allocations=True)
        buffer = soc.allocate_buffer(4 * KB)
        soc.cpu_l2_caches[0].install_range(buffer.segments[0].start, 4 * KB, dirty=True)
        recall_finish, _ = soc.datapath.dma_read(
            0.0, "acc0", buffer.slice(0, 4 * KB), CoherenceMode.COH_DMA, 1024
        )
        # The recalled run fetches from the LLC (fast) but pays the recall
        # latency; it must not be cheaper than an uncontended cold run minus
        # its DRAM latency, i.e. the recall cost is visible.
        assert recall_finish > 0
        assert recall_finish != base_finish


class TestFullyCoherentPath:
    def test_requires_private_cache(self, soc):
        buffer = soc.allocate_buffer(1 * KB)
        with pytest.raises(CoherenceError):
            soc.datapath.dma_read(
                0.0, "acc0", buffer.slice(0, 1 * KB), CoherenceMode.FULL_COH, 1024, None
            )

    def test_second_read_hits_private_cache(self, soc):
        buffer = soc.allocate_buffer(4 * KB)
        private = soc.private_cache_of("acc0")
        segments = buffer.slice(0, 4 * KB)
        _, first = soc.datapath.dma_read(
            0.0, "acc0", segments, CoherenceMode.FULL_COH, 1024, private
        )
        _, second = soc.datapath.dma_read(
            0.0, "acc0", segments, CoherenceMode.FULL_COH, 1024, private
        )
        assert first.private_misses > 0
        assert second.private_hits == first.private_misses
        assert second.private_misses == 0

    def test_write_misses_fetch_ownership(self, soc):
        buffer = soc.allocate_buffer(4 * KB)
        private = soc.private_cache_of("acc0")
        _, stats = soc.datapath.dma_write(
            0.0, "acc0", buffer.slice(0, 4 * KB), CoherenceMode.FULL_COH, 1024, private
        )
        # Read-for-ownership traffic reaches the LLC / DRAM.
        assert stats.llc_misses + stats.llc_hits > 0


class TestFlushes:
    def test_non_coherent_flush_writes_back_to_dram(self, soc):
        buffer = soc.allocate_buffer(8 * KB)
        soc.warm_buffer(buffer, cpu_index=0)
        before = soc.monitors.total_ddr_accesses()
        finish, stats = soc.datapath.flush_for_invocation(
            0.0, CoherenceMode.NON_COH_DMA, buffer.slice(0, 8 * KB)
        )
        assert finish > 0
        assert stats.flush_invalidations > 0
        assert soc.monitors.total_ddr_accesses() > before

    def test_llc_coherent_flush_keeps_data_in_llc(self, soc):
        buffer = soc.allocate_buffer(8 * KB)
        soc.warm_buffer(buffer, cpu_index=0)
        _, stats = soc.datapath.flush_for_invocation(
            0.0, CoherenceMode.LLC_COH_DMA, buffer.slice(0, 8 * KB)
        )
        assert stats.flush_writebacks > 0
        # The flushed lines remain resident in the LLC partition.
        partition = soc.llc_partitions[buffer.segments[0].mem_tile]
        assert partition.cache.resident_lines_in_range(buffer.segments[0].start, 8 * KB) > 0

    def test_coherent_modes_need_no_flush(self, soc):
        buffer = soc.allocate_buffer(8 * KB)
        soc.warm_buffer(buffer, cpu_index=0)
        for mode in (CoherenceMode.COH_DMA, CoherenceMode.FULL_COH):
            finish, stats = soc.datapath.flush_for_invocation(
                0.0, mode, buffer.slice(0, 8 * KB)
            )
            assert finish == 0.0
            assert stats.flush_invalidations == 0

    def test_flush_cost_scales_with_resident_data(self, soc):
        small = soc.allocate_buffer(2 * KB)
        large = soc.allocate_buffer(16 * KB)
        soc.warm_buffer(small, cpu_index=0)
        small_finish, _ = soc.datapath.flush_for_invocation(
            0.0, CoherenceMode.NON_COH_DMA, small.slice(0, 2 * KB)
        )
        soc.reset_state()
        soc.warm_buffer(large, cpu_index=0)
        large_finish, _ = soc.datapath.flush_for_invocation(
            0.0, CoherenceMode.NON_COH_DMA, large.slice(0, 16 * KB)
        )
        assert large_finish > small_finish


class TestTransferStats:
    def test_merge_accumulates(self, soc):
        _, _, a = read_buffer(soc, CoherenceMode.NON_COH_DMA, size=2 * KB)
        lines = a.dram_read_lines
        b, _, _ = read_buffer(soc, CoherenceMode.NON_COH_DMA, size=2 * KB)
        a.merge(_last_stats(soc, b))
        assert a.dram_read_lines >= lines

    def test_as_dict_round_trip(self, soc):
        _, _, stats = read_buffer(soc, CoherenceMode.LLC_COH_DMA, size=2 * KB)
        payload = stats.as_dict()
        assert payload["dram_lines"] == stats.dram_lines
        assert payload["bytes_moved"] == stats.bytes_moved


def _last_stats(soc, buffer):
    """Helper: re-read a buffer to obtain a fresh stats object."""
    finish, stats = soc.datapath.dma_read(
        0.0, "acc0", buffer.slice(0, buffer.size), CoherenceMode.NON_COH_DMA, 1024
    )
    return stats
