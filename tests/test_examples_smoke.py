"""Smoke lane for the ``examples/`` scripts.

The examples were previously never executed by CI, so an API change could
silently break them.  Each test runs one script as a subprocess — the same
way a user would — with ``REPRO_EXAMPLE_QUICK=1`` (every example shrinks
its training budget / grid under that override) and asserts a zero exit
code plus non-empty output.  The whole lane carries the ``slow`` marker,
so CI's quick lane skips it and the full lane runs it.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    """The glob actually finds the walkthrough scripts."""
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(EXAMPLE_SCRIPTS) >= 5


@pytest.mark.slow
@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[path.name for path in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script: Path):
    """The example exits 0 under the quick size-class override."""
    env = {
        **os.environ,
        "PYTHONPATH": str(REPO_ROOT / "src"),
        "REPRO_EXAMPLE_QUICK": "1",
    }
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed (rc={completed.returncode})\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"
