"""Tests for repro.models: artifacts, the registry, training, warm starts.

The acceptance spine is the full round trip — train through the sweep
runner, save, reload, evaluate frozen — being *bit-identical* (payload
digests equal) to an in-process train-then-evaluate run, plus the digest
gate rejecting corrupt, truncated, tampered, and version-mismatched
artifacts before any Q-value is trusted.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.policies import CohmeleonPolicy
from repro.errors import ConfigurationError, ModelError
from repro.experiments.sweep import ResultCache, SweepRunner
from repro.experiments.sweep.manifest import payload_digest as sweep_payload_digest
from repro.models import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ModelRegistry,
    PolicyArtifact,
    PROVENANCE_FIELDS,
    build_provenance,
    load_artifact,
    train_artifact,
    validate_model_name,
)
from repro.models.cli import main as models_cli
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.cli import main as scenarios_cli
from repro.scenarios.run import evaluate_scenario_policy
from repro.utils.rng import SeededRNG

QUICK_ITERATIONS = 2


@pytest.fixture(scope="module")
def quickstart_training(tmp_path_factory):
    """One trained quickstart artifact, saved to a module-scoped registry."""
    root = tmp_path_factory.mktemp("models")
    scenario = get_scenario("quickstart")
    runner = SweepRunner(workers=1, cache=ResultCache(root / "cache"))
    run = train_artifact(
        scenario, name="qs-demo", training_iterations=QUICK_ITERATIONS, runner=runner
    )
    registry = ModelRegistry(root / "registry")
    registry.save(run.artifact)
    return {"root": root, "registry": registry, "run": run, "scenario": scenario}


# ----------------------------------------------------------------------
# Artifact format
# ----------------------------------------------------------------------

def _toy_artifact(name: str = "toy") -> PolicyArtifact:
    policy = CohmeleonPolicy(rng=SeededRNG(7))
    provenance = build_provenance(
        scenario="toy-scenario",
        scenario_definition="0" * 64,
        seed=7,
        training_iterations=1,
    )
    return PolicyArtifact.from_policy(policy, name=name, provenance=provenance)


def test_artifact_digest_is_canonical_and_stable(tmp_path):
    """The digest covers the payload only and survives a save/load cycle."""
    artifact = _toy_artifact()
    assert artifact.digest == _toy_artifact("renamed").digest
    path = artifact.save(tmp_path / "toy.json")
    reloaded = load_artifact(path)
    assert reloaded.digest == artifact.digest
    assert reloaded.payload == artifact.payload
    assert reloaded.dumps() == artifact.dumps()


def test_artifact_provenance_fields_complete():
    """Every promised provenance field is present and deterministic."""
    artifact = _toy_artifact()
    assert set(PROVENANCE_FIELDS) <= set(artifact.provenance)
    assert artifact.provenance["repro_version"]
    # No wall-clock, hostname, or other nondeterminism may leak in.
    assert _toy_artifact().dumps() == _toy_artifact().dumps()


def test_artifact_rebuilds_a_frozen_policy():
    """build_policy() restores table, config, weights, and the RNG stream."""
    policy = CohmeleonPolicy(rng=SeededRNG(3))
    policy.agent.qtable.update(0, policy.agent.qtable.best_mode(0), 0.5, 0.25)
    policy.agent.rng.random()  # advance the stream past its seed state
    policy.freeze()
    artifact = PolicyArtifact.from_policy(
        policy, "t", build_provenance("s", "0" * 64, 3, 1)
    )
    rebuilt = artifact.build_policy()
    assert rebuilt.agent.learning_enabled is False
    assert rebuilt.agent.epsilon == 0.0 and rebuilt.agent.alpha == 0.0
    assert (rebuilt.agent.qtable.values == policy.agent.qtable.values).all()
    assert rebuilt.agent.rng.state() == policy.agent.rng.state()
    assert rebuilt.reward_tracker.weights == policy.reward_tracker.weights


def test_corrupt_truncated_and_mismatched_artifacts_rejected(tmp_path):
    """The load path rejects every malformed document with ModelError."""
    artifact = _toy_artifact()
    path = artifact.save(tmp_path / "toy.json")
    good = json.loads(path.read_text())

    # Truncated file (killed writer, partial download).
    (tmp_path / "truncated.json").write_text(path.read_text()[: len(path.read_text()) // 2])
    with pytest.raises(ModelError, match="corrupt or truncated"):
        load_artifact(tmp_path / "truncated.json")

    # Not JSON at all.
    (tmp_path / "garbage.json").write_text("not an artifact")
    with pytest.raises(ModelError, match="corrupt or truncated"):
        load_artifact(tmp_path / "garbage.json")

    # Tampered payload: digest gate.
    tampered = json.loads(json.dumps(good))
    tampered["payload"]["policy"]["qtable"]["values"][0][0] = 123.0
    (tmp_path / "tampered.json").write_text(json.dumps(tampered))
    with pytest.raises(ModelError, match="digest mismatch"):
        load_artifact(tmp_path / "tampered.json")

    # Wrong format marker.
    wrong_format = json.loads(json.dumps(good))
    wrong_format["format"] = "something-else"
    (tmp_path / "format.json").write_text(json.dumps(wrong_format))
    with pytest.raises(ModelError, match="not a trained-policy artifact"):
        load_artifact(tmp_path / "format.json")

    # Future layout version.
    future = json.loads(json.dumps(good))
    future["version"] = ARTIFACT_VERSION + 1
    (tmp_path / "future.json").write_text(json.dumps(future))
    with pytest.raises(ModelError, match="layout version"):
        load_artifact(tmp_path / "future.json")

    # Missing envelope fields.
    for field in ("format", "version", "name", "digest", "payload"):
        broken = json.loads(json.dumps(good))
        del broken[field]
        (tmp_path / "missing.json").write_text(json.dumps(broken))
        with pytest.raises(ModelError, match=field):
            load_artifact(tmp_path / "missing.json")

    # Caller-supplied expected digest (the fingerprint gate in workers).
    with pytest.raises(ModelError, match="does not match the"):
        load_artifact(path, expected_digest="f" * 64)

    # Missing file.
    with pytest.raises(ModelError, match="cannot read"):
        load_artifact(tmp_path / "nope.json")


def test_artifact_with_poisoned_qtable_fails_to_build(tmp_path):
    """A digest-valid artifact holding a bad table still cannot build."""
    artifact = _toy_artifact()
    artifact.payload["policy"]["qtable"]["values"][0][0] = float("nan")
    artifact.digest = ""
    artifact.__post_init__()  # re-stamp the digest over the poisoned payload
    path = artifact.save(tmp_path / "poisoned.json")
    reloaded = load_artifact(path)  # digest gate passes...
    with pytest.raises(ModelError, match="valid policy"):
        reloaded.build_policy()  # ...but the hardened QTable.from_dict refuses


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_save_load_list_delete(tmp_path):
    registry = ModelRegistry(tmp_path / "reg")
    artifact = _toy_artifact("model-a")
    registry.save(artifact)
    assert "model-a" in registry
    assert registry.names() == ["model-a"]
    with pytest.raises(ModelError, match="already exists"):
        registry.save(_toy_artifact("model-a"))
    registry.save(_toy_artifact("model-a"), replace=True)
    loaded = registry.load("model-a")
    assert loaded.digest == artifact.digest
    assert registry.delete("model-a") is True
    assert registry.delete("model-a") is False
    assert registry.names() == []
    with pytest.raises(ModelError, match="no model named"):
        registry.load("model-a")


def test_registry_rejects_path_escaping_names(tmp_path):
    registry = ModelRegistry(tmp_path)
    for bad in ("../escape", "a/b", "", ".hidden", "UPPER"):
        with pytest.raises(ModelError, match="invalid model name"):
            registry.path_for(bad)
    assert validate_model_name("soc1-baseline.v2") == "soc1-baseline.v2"


# ----------------------------------------------------------------------
# Training through the sweep runner + the warm-start round trip
# ----------------------------------------------------------------------

def test_retraining_hits_the_cache_and_is_name_independent(quickstart_training):
    """Same scenario/seed/schedule: cache hit; the name is registry metadata."""
    run = quickstart_training["run"]
    assert run.executed == 1 and run.cache_hits == 0
    assert len(run.training_cycles) == QUICK_ITERATIONS
    rerun = train_artifact(
        quickstart_training["scenario"],
        name="different-name",
        training_iterations=QUICK_ITERATIONS,
        runner=SweepRunner(
            workers=1, cache=ResultCache(quickstart_training["root"] / "cache")
        ),
    )
    assert rerun.cache_hits == 1 and rerun.executed == 0
    assert rerun.artifact.digest == run.artifact.digest
    assert rerun.artifact.name == "different-name"


def test_train_requires_a_positive_schedule(quickstart_training):
    with pytest.raises(ModelError, match="at least one iteration"):
        train_artifact(
            quickstart_training["scenario"], name="x", training_iterations=0
        )


def test_round_trip_is_bit_identical_to_in_process_training(quickstart_training):
    """train -> export -> reload -> frozen eval == in-process train+freeze.

    The acceptance criterion: payload digests of the evaluation results
    must be equal, not merely close.
    """
    scenario = quickstart_training["scenario"]
    reloaded = quickstart_training["registry"].load("qs-demo")
    in_process = evaluate_scenario_policy(
        scenario, "cohmeleon", training_iterations=QUICK_ITERATIONS
    )
    warm = evaluate_scenario_policy(scenario, "cohmeleon", pretrained=reloaded)
    assert sweep_payload_digest(warm.result.to_dict()) == sweep_payload_digest(
        in_process.result.to_dict()
    )


def test_pretrained_run_worker_invariant_and_resumable(quickstart_training, tmp_path):
    """--pretrained payloads are identical for 1 vs N workers, cold vs resume."""
    scenario = quickstart_training["scenario"]
    artifact = quickstart_training["registry"].load("qs-demo")
    kinds = ("fixed-non-coh-dma", "cohmeleon")

    def digests(result):
        return {k: sweep_payload_digest(v.to_dict()) for k, v in result.evaluations.items()}

    serial = run_scenario(
        scenario, policy_kinds=kinds, runner=SweepRunner(workers=1), pretrained=artifact
    )
    parallel = run_scenario(
        scenario, policy_kinds=kinds, runner=SweepRunner(workers=4), pretrained=artifact
    )
    assert digests(serial) == digests(parallel)

    cache = ResultCache(tmp_path / "cache")
    manifest_dir = tmp_path / "cache" / "manifests"
    cold = run_scenario(
        scenario,
        policy_kinds=kinds,
        runner=SweepRunner(workers=2, cache=cache, manifest_dir=manifest_dir),
        pretrained=artifact,
    )
    resumed = run_scenario(
        scenario,
        policy_kinds=kinds,
        runner=SweepRunner(workers=2, cache=cache, manifest_dir=manifest_dir, resume=True),
        pretrained=artifact,
    )
    assert resumed.executed == 0 and resumed.resumed == len(kinds)
    assert digests(cold) == digests(resumed) == digests(serial)
    assert cold.pretrained_digest == artifact.digest


def test_pretrained_fingerprints_incorporate_the_digest(quickstart_training, tmp_path):
    """A different table at the same path can never reuse a cached payload."""
    scenario = quickstart_training["scenario"]
    registry = quickstart_training["registry"]
    artifact = registry.load("qs-demo")
    cache = ResultCache(tmp_path / "cache")
    runner = SweepRunner(workers=1, cache=cache)
    kinds = ("cohmeleon",)
    run_scenario(scenario, policy_kinds=kinds, runner=runner, pretrained=artifact)

    # Retrain with a different schedule -> different digest, same path.
    retrained = train_artifact(
        scenario, name="qs-demo", training_iterations=QUICK_ITERATIONS + 1
    )
    registry.save(retrained.artifact, replace=True)
    updated = registry.load("qs-demo")
    assert updated.digest != artifact.digest
    second = run_scenario(scenario, policy_kinds=kinds, runner=runner, pretrained=updated)
    assert second.cache_hits == 0 and second.executed == 1


def test_relocated_artifact_still_hits_the_cache(quickstart_training, tmp_path):
    """The digest, not the registry name or path, is the artifact identity.

    Copying the artifact file elsewhere (or registering it under another
    name) must reuse cached payloads: the load path is transport-only in
    the job fingerprint.
    """
    scenario = quickstart_training["scenario"]
    artifact = quickstart_training["registry"].load("qs-demo")
    cache = ResultCache(tmp_path / "cache")
    runner = SweepRunner(workers=1, cache=cache)
    kinds = ("cohmeleon",)
    first = run_scenario(scenario, policy_kinds=kinds, runner=runner, pretrained=artifact)
    assert first.executed == 1

    moved_registry = ModelRegistry(tmp_path / "moved")
    renamed = PolicyArtifact(name="renamed-copy", payload=artifact.payload)
    moved_registry.save(renamed)
    relocated = moved_registry.load("renamed-copy")
    assert relocated.digest == artifact.digest
    second = run_scenario(
        scenario, policy_kinds=kinds, runner=runner, pretrained=relocated
    )
    assert second.executed == 0 and second.cache_hits == 1


def test_stale_pretrained_digest_is_rejected_at_execution(quickstart_training, tmp_path):
    """The worker re-verifies the digest against the fingerprinted value."""
    scenario = quickstart_training["scenario"]
    artifact = quickstart_training["registry"].load("qs-demo")
    # Swap the file underneath the scheduled digest.
    doc = json.loads(artifact.dumps())
    doc["payload"]["policy"]["qtable"]["values"][0][0] = 42.0
    doc["digest"] = PolicyArtifact(name="x", payload=doc["payload"]).digest
    path = tmp_path / "swapped.json"
    path.write_text(json.dumps(doc))
    swapped = load_artifact(path)  # self-consistent, but a different table
    swapped.digest = artifact.digest  # caller believes it is the old one
    with pytest.raises(ModelError, match="does not match the"):
        run_scenario(
            scenario,
            policy_kinds=("cohmeleon",),
            runner=SweepRunner(workers=1),
            pretrained=swapped,
        )


def test_pretrained_needs_cohmeleon_and_a_saved_source(quickstart_training):
    scenario = quickstart_training["scenario"]
    artifact = quickstart_training["registry"].load("qs-demo")
    with pytest.raises(ConfigurationError, match="cohmeleon"):
        run_scenario(
            scenario, policy_kinds=("manual",), pretrained=artifact
        )
    unsaved = _toy_artifact()
    with pytest.raises(ConfigurationError, match="no on-disk source"):
        run_scenario(
            scenario, policy_kinds=("cohmeleon",), pretrained=unsaved
        )


def test_transfer_evaluation_on_another_scenario(quickstart_training):
    """A table trained on one platform evaluates frozen on another."""
    artifact = quickstart_training["registry"].load("qs-demo")
    other = get_scenario("mode-exploration")
    result = run_scenario(
        other,
        policy_kinds=("fixed-non-coh-dma", "cohmeleon"),
        runner=SweepRunner(workers=1),
        pretrained=artifact,
    )
    assert result.pretrained_digest == artifact.digest
    assert result.evaluations["cohmeleon"].result.total_execution_cycles > 0
    assert result.evaluations["cohmeleon"].training_results == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_models_cli_full_round_trip(tmp_path):
    """train / list / describe / export / eval against one registry."""
    models_dir = str(tmp_path / "registry")
    cache_dir = str(tmp_path / "cache")
    argv_common = ["--models-dir", models_dir]
    stream = io.StringIO()
    assert (
        models_cli(
            [
                "train",
                "quickstart",
                "--name",
                "cli-demo",
                "--training-iterations",
                str(QUICK_ITERATIONS),
                "--workers",
                "1",
                "--cache-dir",
                cache_dir,
                *argv_common,
            ],
            stream=stream,
        )
        == 0
    )
    text = stream.getvalue()
    assert "digest: " in text and "cli-demo" in text
    digest = text.split("digest: ")[1].split()[0]

    # Re-training the same name without --force is refused.
    assert (
        models_cli(
            ["train", "quickstart", "--name", "cli-demo", "--training-iterations",
             str(QUICK_ITERATIONS), "--workers", "1", "--cache-dir", cache_dir,
             *argv_common],
            stream=io.StringIO(),
        )
        == 2
    )

    stream = io.StringIO()
    assert models_cli(["list", "--json", *argv_common], stream=stream) == 0
    listing = json.loads(stream.getvalue())
    assert [entry["name"] for entry in listing] == ["cli-demo"]
    assert listing[0]["digest"] == digest

    stream = io.StringIO()
    assert models_cli(["describe", "cli-demo", "--json", *argv_common], stream=stream) == 0
    description = json.loads(stream.getvalue())
    assert description["provenance"]["scenario"] == "quickstart"
    assert description["digest"] == digest

    out_path = tmp_path / "exported.json"
    assert (
        models_cli(["export", "cli-demo", "--out", str(out_path), *argv_common],
                   stream=io.StringIO())
        == 0
    )
    exported = load_artifact(out_path)
    assert exported.digest == digest

    stream = io.StringIO()
    assert (
        models_cli(
            ["eval", "cli-demo", "--workers", "1", "--cache-dir", cache_dir,
             *argv_common],
            stream=stream,
        )
        == 0
    )
    assert f"digest={digest[:12]}" in stream.getvalue()

    # The scenarios CLI accepts the same registry via --pretrained.
    stream = io.StringIO()
    assert (
        scenarios_cli(
            [
                "run",
                "quickstart",
                "--pretrained",
                "cli-demo",
                "--models-dir",
                models_dir,
                "--workers",
                "1",
                "--cache-dir",
                cache_dir,
                "--policies",
                "fixed-non-coh-dma,cohmeleon",
            ],
            stream=stream,
        )
        == 0
    )
    assert f"pretrained={digest[:12]}" in stream.getvalue()


def test_models_cli_errors_exit_nonzero(tmp_path):
    assert models_cli(
        ["describe", "missing", "--models-dir", str(tmp_path)], stream=io.StringIO()
    ) == 2
    assert models_cli(
        ["eval", "missing", "--models-dir", str(tmp_path)], stream=io.StringIO()
    ) == 2


# ----------------------------------------------------------------------
# Registry read-retry helper (serving hot-reload path)
# ----------------------------------------------------------------------

def test_load_retry_matches_load_on_the_happy_path(tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.save(_toy_artifact("steady"))
    direct = registry.load("steady")
    retried = registry.load_retry("steady")
    assert retried.digest == direct.digest
    assert retried.name == "steady"


def test_load_retry_still_raises_for_a_genuinely_missing_model(tmp_path):
    registry = ModelRegistry(tmp_path)
    with pytest.raises(ModelError, match="no model named"):
        registry.load_retry("ghost", attempts=3, delay_s=0.001)


def test_load_retry_enforces_the_expected_digest(tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.save(_toy_artifact("steady"))
    with pytest.raises(ModelError, match="digest"):
        registry.load_retry("steady", expected_digest="0" * 64, attempts=2, delay_s=0.001)
