"""Unit tests for the whole-SoC assembly (repro.soc.soc)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.soc.config import soc_preset
from repro.soc.soc import Soc
from repro.units import KB


class TestConstruction:
    def test_component_counts_match_config(self, tiny_soc, tiny_config):
        assert len(tiny_soc.llc_partitions) == tiny_config.num_mem_tiles
        assert len(tiny_soc.dram_controllers) == tiny_config.num_mem_tiles
        assert len(tiny_soc.cpu_l2_caches) == tiny_config.num_cpus
        assert len(tiny_soc.accelerator_private_caches) == tiny_config.num_accelerator_tiles
        assert len(tiny_soc.accelerator_links) == tiny_config.num_accelerator_tiles

    def test_soc3_skips_private_caches_for_cacheless_tiles(self):
        soc = Soc(soc_preset("SoC3"))
        assert soc.private_cache_of("acc12") is None
        assert soc.private_cache_of("acc0") is not None

    def test_tile_name_helpers(self, tiny_soc):
        assert tiny_soc.memory_tile_name(0) == "mem0"
        assert tiny_soc.accelerator_tile_name(1) == "acc1"
        with pytest.raises(ConfigurationError):
            tiny_soc.memory_tile_name(9)
        with pytest.raises(ConfigurationError):
            tiny_soc.accelerator_tile_name(9)

    def test_tile_listings(self, tiny_soc, tiny_config):
        assert len(tiny_soc.accelerator_tiles()) == tiny_config.num_accelerator_tiles
        assert len(tiny_soc.cpu_tiles()) == tiny_config.num_cpus

    def test_private_caches_excluding(self, tiny_soc, tiny_config):
        others = list(tiny_soc.private_caches_excluding("acc0"))
        expected = tiny_config.num_cpus + tiny_config.num_accelerator_tiles - 1
        assert len(others) == expected

    def test_describe_contains_tiles(self, tiny_soc):
        summary = tiny_soc.describe()
        assert summary["name"] == "TestSoC"
        assert any(name == "acc0" for name, _, _ in summary["tiles"])


class TestWarmup:
    def test_warm_buffer_populates_llc_and_cpu_l2(self, tiny_soc):
        buffer = tiny_soc.allocate_buffer(8 * KB)
        tiny_soc.warm_buffer(buffer, cpu_index=0)
        partition = tiny_soc.llc_partitions[buffer.segments[0].mem_tile]
        assert partition.occupancy_bytes() >= 8 * KB
        assert tiny_soc.cpu_l2_caches[0].valid_lines() > 0

    def test_warm_buffer_larger_than_caches_keeps_tail(self, tiny_soc, tiny_config):
        buffer = tiny_soc.allocate_buffer(tiny_config.llc_partition_bytes * 2)
        tiny_soc.warm_buffer(buffer, cpu_index=0)
        l2 = tiny_soc.cpu_l2_caches[0]
        assert l2.occupancy_bytes() <= l2.size_bytes

    def test_warm_buffer_invalid_cpu(self, tiny_soc):
        buffer = tiny_soc.allocate_buffer(1 * KB)
        with pytest.raises(ConfigurationError):
            tiny_soc.warm_buffer(buffer, cpu_index=99)


class TestReset:
    def test_reset_clears_caches_and_counters(self, tiny_soc):
        buffer = tiny_soc.allocate_buffer(8 * KB)
        tiny_soc.warm_buffer(buffer)
        tiny_soc.dram_controllers[0].read(0.0, 1024)
        tiny_soc.reset_state()
        assert tiny_soc.monitors.total_ddr_accesses() == 0
        assert all(c.valid_lines() == 0 for c in tiny_soc.cpu_l2_caches)
        assert tiny_soc.engine.now == 0.0

    def test_reset_preserves_allocations_by_default(self, tiny_soc):
        tiny_soc.allocate_buffer(8 * KB, name="keepme")
        tiny_soc.reset_state()
        assert "keepme" in tiny_soc.allocator.allocations

    def test_reset_can_clear_allocations(self, tiny_soc):
        tiny_soc.allocate_buffer(8 * KB, name="dropme")
        tiny_soc.reset_state(clear_allocations=True)
        assert "dropme" not in tiny_soc.allocator.allocations
