"""Slow lane: serving load test, SLO gate, and soak.

These run the deterministic load generator of
:mod:`repro.serving.loadtest` against a live loopback server and hold the
measurements to the SLO block committed in
``benchmarks/results/BENCH_serving.json`` — the same gate the CI serving
job enforces through ``python -m repro.serving loadtest --slo``.  The
soak test additionally cross-checks the load report against the server's
own ``/stats`` accounting after thousands of requests.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from serving_harness import make_registry, make_server, make_service

from repro.serving.loadtest import check_slo, run_load_async, slo_for_scale
from repro.serving import ServingClient

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_serving.json"


def _run_load(tmp_path, clients, requests, batch, **service_kwargs):
    registry = make_registry(tmp_path / "models")
    service = make_service(registry, **service_kwargs)

    async def _run():
        async with make_server(service) as server:
            report = await run_load_async(
                server.host, server.port, clients=clients, requests=requests, batch=batch
            )
            async with ServingClient(server.host, server.port) as client:
                _, stats = await client.get("/stats")
            return report, stats, service

    report, stats, service = asyncio.run(_run())
    return report, stats, service


@pytest.mark.slow
class TestSloGate:
    """The committed SLO block holds at quick scale."""

    def test_quick_scale_load_meets_the_committed_slo(self, tmp_path):
        baseline = json.loads(BASELINE.read_text())
        slo = slo_for_scale(baseline, "quick")
        report, _, _ = _run_load(tmp_path, clients=8, requests=50, batch=64)
        violations = check_slo(report, slo)
        assert violations == [], "\n".join(violations)
        assert report.decisions == 8 * 50 * 64
        assert report.error_count == 0
        assert len(report.digests) == 1

    def test_committed_baselines_carry_both_slo_scales(self):
        for name in ("BENCH_serving.json", "BENCH_serving_quick.json"):
            baseline = json.loads((BASELINE.parent / name).read_text())
            for scale in ("quick", "default"):
                slo = slo_for_scale(baseline, scale)
                assert "p99_ms_max" in slo
                assert "decisions_per_s_min" in slo

    def test_slo_violations_are_detected(self, tmp_path):
        report, _, _ = _run_load(tmp_path, clients=2, requests=5, batch=8)
        impossible = {"p99_ms_max": 0.0, "decisions_per_s_min": 10**12}
        violations = check_slo(report, impossible)
        assert len(violations) == 2
        with pytest.raises(Exception):
            check_slo(report, {"p99_typo": 1})


@pytest.mark.slow
class TestSoak:
    """Sustained concurrent load: zero errors, consistent accounting."""

    def test_soak_is_error_free_and_stats_agree(self, tmp_path):
        clients, requests, batch = 8, 300, 32
        report, stats, service = _run_load(
            tmp_path, clients=clients, requests=requests, batch=batch
        )
        assert report.error_count == 0
        assert report.decisions == clients * requests * batch
        assert len(report.digests) == 1
        # The server's own accounting matches what the clients saw.
        assert stats["decisions_served"] == report.decisions
        assert stats["requests"]["POST /v1/decide"] == clients * requests
        assert stats["errors"] == {}
        assert stats["reload_errors"] == 0
        assert stats["latency"]["count"] >= clients * requests
        histogram_total = sum(
            bucket["count"] for bucket in stats["batch_sizes"]["buckets"]
        )
        assert histogram_total == clients * requests
