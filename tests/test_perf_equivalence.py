"""Property tests: optimized hot paths match naive reference implementations.

The profile-guided optimisations of the simulation core (contents-
proportional flushes, batched line accesses, address-bound early exits,
bisect-based buffer slicing, interned RL states) all promise *bit-identical*
behaviour — the performance contract of ``docs/performance.md``.  These
tests hold them to it: each optimized operation is replayed against a
straightforward reference implementation (the seed's original per-line
algorithms) on randomized inputs, and every observable — return values,
statistics counters, and the full final cache state — must agree.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import (
    LEVELS_PER_ATTRIBUTE,
    NUM_ATTRIBUTES,
    CoherenceState,
    intern_state,
)
from repro.soc.address import Buffer, BufferSegment
from repro.soc.cache import SetAssociativeCache

# ----------------------------------------------------------------------
# Reference cache: the seed's original, naive per-line algorithms.
# ----------------------------------------------------------------------


class ReferenceCache:
    """LRU set-associative cache implemented the slow, obvious way."""

    def __init__(self, size_bytes: int, line_bytes: int, ways: int) -> None:
        num_lines = size_bytes // line_bytes
        ways = min(ways, num_lines)
        if num_lines % ways:
            num_lines = (num_lines // ways) * ways
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(num_lines // ways, 1)
        self.sets = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = self.misses = self.evictions = 0
        self.dirty_evictions = self.writebacks = 0
        self.flush_writebacks = self.flush_invalidations = 0

    def _set(self, line_addr):
        return self.sets[(line_addr // self.line_bytes) % self.num_sets]

    def _lines(self, start, nbytes):
        if nbytes <= 0:
            return range(0)
        line = self.line_bytes
        first = (start // line) * line
        last = ((start + nbytes - 1) // line) * line
        return range(first, last + line, line)

    def access_line(self, line_addr, write):
        line_addr = (line_addr // self.line_bytes) * self.line_bytes
        cache_set = self._set(line_addr)
        if line_addr in cache_set:
            self.hits += 1
            dirty = cache_set.pop(line_addr)
            cache_set[line_addr] = dirty or write
            return True, None, False
        self.misses += 1
        evicted, evicted_dirty = None, False
        if len(cache_set) >= self.ways:
            evicted, evicted_dirty = cache_set.popitem(last=False)
            self.evictions += 1
            if evicted_dirty:
                self.dirty_evictions += 1
                self.writebacks += 1
        cache_set[line_addr] = write
        return False, evicted, evicted_dirty

    def access_range(self, start, nbytes, write):
        hits = misses = 0
        evicted_dirty = []
        for line_addr in self._lines(start, nbytes):
            hit, evicted, was_dirty = self.access_line(line_addr, write)
            if hit:
                hits += 1
            else:
                misses += 1
            if evicted is not None and was_dirty:
                evicted_dirty.append(evicted)
        return hits, misses, evicted_dirty

    def install_range(self, start, nbytes, dirty):
        for line_addr in self._lines(start, nbytes):
            cache_set = self._set(line_addr)
            if line_addr in cache_set:
                was = cache_set.pop(line_addr)
                cache_set[line_addr] = was or dirty
            else:
                if len(cache_set) >= self.ways:
                    cache_set.popitem(last=False)
                cache_set[line_addr] = dirty

    def flush_range(self, start, nbytes):
        writebacks = invalidations = 0
        for line_addr in self._lines(start, nbytes):
            dirty = self._set(line_addr).pop(line_addr, None)
            if dirty is None:
                continue
            invalidations += 1
            if dirty:
                writebacks += 1
        self.flush_writebacks += writebacks
        self.flush_invalidations += invalidations
        return writebacks, invalidations

    def resident_within(self, start, nbytes):
        if nbytes <= 0:
            return []
        end = start + nbytes
        found = []
        for cache_set in self.sets:
            for addr in cache_set:
                if start - self.line_bytes < addr < end and addr + self.line_bytes > start:
                    found.append(addr)
        return found

    def state(self):
        return [list(cache_set.items()) for cache_set in self.sets]


def _state_of(cache: SetAssociativeCache):
    return [list(cache_set.items()) for cache_set in cache._sets]


#: One randomized cache operation: (kind, start, nbytes, flag).
_op = st.tuples(
    st.sampled_from(["read", "write", "install", "flush", "invalidate", "resident"]),
    st.integers(min_value=0, max_value=4096),
    st.integers(min_value=0, max_value=2048),
    st.booleans(),
)


class TestCacheEquivalence:
    """The optimized cache replays identically to the reference cache."""

    @given(
        ops=st.lists(_op, max_size=30),
        ways=st.integers(min_value=1, max_value=4),
        size=st.sampled_from([256, 512, 1024]),
    )
    @settings(max_examples=120, deadline=None)
    def test_random_operation_sequences(self, ops, ways, size):
        """Counters, results, and final state agree after any op sequence."""
        line = 64
        fast = SetAssociativeCache("fast", size_bytes=size, line_bytes=line, ways=ways)
        ref = ReferenceCache(size_bytes=size, line_bytes=line, ways=ways)

        for kind, start, nbytes, flag in ops:
            if kind in ("read", "write"):
                result = fast.access_range(start, nbytes, write=(kind == "write"))
                hits, misses, evicted_dirty = ref.access_range(
                    start, nbytes, write=(kind == "write")
                )
                assert (result.hits, result.misses) == (hits, misses)
                assert sorted(result.evicted_dirty) == sorted(evicted_dirty)
            elif kind == "install":
                fast.install_range(start, nbytes, dirty=flag)
                ref.install_range(start, nbytes, dirty=flag)
            elif kind == "flush":
                assert fast.flush_range(start, nbytes) == ref.flush_range(start, nbytes)
            elif kind == "invalidate":
                dirty = fast.invalidate_line(start)
                ref_set = ref._set((start // line) * line)
                assert dirty == bool(ref_set.pop((start // line) * line, False))
            else:
                assert sorted(fast.resident_lines_within(start, nbytes)) == sorted(
                    ref.resident_within(start, nbytes)
                )
            assert _state_of(fast) == ref.state()
            assert fast.valid_lines() == sum(len(s) for s in ref.sets)

        assert (fast.stats.hits, fast.stats.misses) == (ref.hits, ref.misses)
        assert fast.stats.evictions == ref.evictions
        assert fast.stats.dirty_evictions == ref.dirty_evictions
        assert fast.stats.writebacks == ref.writebacks
        assert fast.stats.flush_writebacks == ref.flush_writebacks
        assert fast.stats.flush_invalidations == ref.flush_invalidations

    @given(
        ops=st.lists(_op.filter(lambda o: o[0] in ("read", "write", "install")), max_size=10),
        start=st.integers(min_value=0, max_value=4096),
        nbytes=st.integers(min_value=0, max_value=2048),
        write=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_batched_line_accesses_match_per_line_calls(self, ops, start, nbytes, write):
        """access_line_run/access_lines equal a per-line access_line loop."""
        line = 64
        fast = SetAssociativeCache("fast", size_bytes=512, line_bytes=line, ways=2)
        slow = SetAssociativeCache("slow", size_bytes=512, line_bytes=line, ways=2)
        for kind, op_start, op_nbytes, flag in ops:
            for cache in (fast, slow):
                if kind == "install":
                    cache.install_range(op_start, op_nbytes, dirty=flag)
                else:
                    cache.access_range(op_start, op_nbytes, write=(kind == "write"))

        hits, misses, miss_lines, evicted_dirty = fast.access_line_run(
            start, nbytes, write=write
        )
        ref_hits = ref_misses = 0
        ref_miss_lines, ref_evicted = [], []
        for line_addr in slow.lines_in_range(start, nbytes):
            hit, evicted, was_dirty = slow.access_line(line_addr, write=write)
            if hit:
                ref_hits += 1
            else:
                ref_misses += 1
                ref_miss_lines.append(line_addr)
            if evicted is not None and was_dirty:
                ref_evicted.append(evicted)
        assert (hits, misses) == (ref_hits, ref_misses)
        assert miss_lines == ref_miss_lines
        assert evicted_dirty == ref_evicted
        assert _state_of(fast) == _state_of(slow)

        lhits, lmisses, ldirty = fast.access_lines(list(miss_lines), write=True)
        ref_lhits = ref_lmisses = ref_ldirty = 0
        for line_addr in ref_miss_lines:
            hit, evicted, was_dirty = slow.access_line(line_addr, write=True)
            if hit:
                ref_lhits += 1
            else:
                ref_lmisses += 1
            if evicted is not None and was_dirty:
                ref_ldirty += 1
        assert (lhits, lmisses, ldirty) == (ref_lhits, ref_lmisses, ref_ldirty)
        assert _state_of(fast) == _state_of(slow)


# ----------------------------------------------------------------------
# Buffer slicing: bisect decode vs the original linear scan.
# ----------------------------------------------------------------------


def _reference_slice(buffer: Buffer, offset: int, nbytes: int):
    """The seed's linear-scan slice (kept verbatim as the oracle)."""
    result = []
    remaining = nbytes
    cursor = offset
    covered = 0
    for segment in buffer.segments:
        seg_lo = covered
        seg_hi = covered + segment.size
        if cursor < seg_hi and remaining > 0:
            inner = max(cursor, seg_lo) - seg_lo
            take = min(segment.size - inner, remaining)
            result.append(
                BufferSegment(
                    mem_tile=segment.mem_tile, start=segment.start + inner, size=take
                )
            )
            remaining -= take
            cursor += take
        covered = seg_hi
        if remaining == 0:
            break
    return result


@st.composite
def _buffers(draw):
    sizes = draw(st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=8))
    segments = []
    base = 0
    for index, size in enumerate(sizes):
        segments.append(BufferSegment(mem_tile=index % 3, start=base + index * 64, size=size))
        base += size + 1024
    return Buffer(name="b", size=sum(sizes), segments=tuple(segments))


class TestBufferSliceEquivalence:
    """The bisect-based slice matches the linear-scan reference."""

    @given(
        buffer=_buffers(),
        offset_frac=st.floats(min_value=0.0, max_value=1.0),
        nbytes=st.integers(min_value=0, max_value=2048),
    )
    @settings(max_examples=200, deadline=None)
    def test_slice_matches_linear_scan(self, buffer, offset_frac, nbytes):
        """Random slices of random segment layouts decode identically."""
        offset = int(offset_frac * buffer.size)
        nbytes = min(nbytes, buffer.size - offset)
        assert buffer.slice(offset, nbytes) == _reference_slice(buffer, offset, nbytes)

    @given(buffer=_buffers(), nbytes=st.integers(min_value=1, max_value=2048))
    @settings(max_examples=100, deadline=None)
    def test_footprint_within_matches_slice_sum(self, buffer, nbytes):
        """The memoized footprint map equals a recomputation from slice()."""
        nbytes = min(nbytes, buffer.size)
        expected = {}
        for segment in _reference_slice(buffer, 0, nbytes):
            expected[segment.mem_tile] = expected.get(segment.mem_tile, 0) + segment.size
        assert buffer.footprint_within(nbytes) == expected
        # Second call returns the memoized mapping with identical content.
        assert buffer.footprint_within(nbytes) == expected


# ----------------------------------------------------------------------
# Interned RL states: shared instances encode exactly like fresh ones.
# ----------------------------------------------------------------------

_attr = st.integers(min_value=0, max_value=LEVELS_PER_ATTRIBUTE - 1)


class TestStateInterningEquivalence:
    """intern_state and the cached index agree with first-principles encoding."""

    @given(values=st.tuples(_attr, _attr, _attr, _attr, _attr))
    @settings(max_examples=200, deadline=None)
    def test_interned_state_matches_fresh_state(self, values):
        """Interned and directly-constructed states are equal, same index."""
        interned = intern_state(*values)
        fresh = CoherenceState(*values)
        assert interned == fresh
        assert interned.as_tuple() == values
        # The cached index equals the base-3 encoding computed from scratch.
        expected = 0
        for value in values:
            expected = expected * LEVELS_PER_ATTRIBUTE + value
        assert interned.index == expected == fresh.index
        assert CoherenceState.from_index(expected).as_tuple() == values
        # Interning is idempotent: the same attributes share one instance.
        assert intern_state(*values) is interned

    def test_all_states_round_trip(self):
        """Every one of the 3^5 states round-trips through its index."""
        seen = set()
        for index in range(LEVELS_PER_ATTRIBUTE**NUM_ATTRIBUTES):
            state = CoherenceState.from_index(index)
            assert state.index == index
            seen.add(state.as_tuple())
        assert len(seen) == LEVELS_PER_ATTRIBUTE**NUM_ATTRIBUTES
