"""Unit tests for the Q-table, the agent, and the coherence policies.

The whole module runs once per core backend (reference and vectorized,
see the autouse fixture below), so every invariant here is asserted
against both implementations of the Q-learning core.
"""

from __future__ import annotations

import pytest

from repro.accelerators.library import accelerator_by_name
from repro.core.agent import AgentConfig, QLearningAgent
from repro.core.policies import (
    CohmeleonPolicy,
    FixedHeterogeneousPolicy,
    FixedPolicy,
    ManualPolicy,
    RandomPolicy,
    make_policy,
)
from repro.core.profiling import (
    ProfileEntry,
    choose_fixed_heterogeneous,
    choose_mode_for_accelerator,
    profile_summary,
)
from repro.core.qtable import QTable
from repro.core.state import CoherenceState
from repro.errors import PolicyError
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.units import KB, MB
from repro.utils.rng import SeededRNG

from tests.test_state_reward import make_result, make_snapshot


@pytest.fixture(autouse=True)
def _backend_matrix(core_backend_name):
    """Run every test in this module under each core backend."""


def make_request(footprint=16 * KB, accelerator="FFT", tile="acc0"):
    from repro.accelerators.invocation import InvocationRequest
    from repro.soc.address import Buffer, BufferSegment

    buffer = Buffer(name="b", size=footprint, segments=(BufferSegment(0, 0, footprint),))
    return InvocationRequest(
        accelerator=accelerator_by_name(accelerator),
        tile_name=tile,
        buffer=buffer,
        footprint_bytes=footprint,
    )


STATE0 = CoherenceState(0, 0, 0, 0, 0)


class TestQTable:
    def test_dimensions_match_paper(self):
        table = QTable()
        assert table.num_states == 243
        assert table.num_actions == 4
        assert table.values.size == 972

    def test_update_rule(self):
        table = QTable()
        value = table.update(STATE0, CoherenceMode.COH_DMA, reward=1.0, alpha=0.25)
        assert value == pytest.approx(0.25)
        value = table.update(STATE0, CoherenceMode.COH_DMA, reward=1.0, alpha=0.25)
        assert value == pytest.approx(0.4375)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(PolicyError):
            QTable().update(STATE0, CoherenceMode.COH_DMA, 1.0, alpha=1.5)

    def test_best_mode_prefers_highest_value(self):
        table = QTable()
        table.update(STATE0, CoherenceMode.LLC_COH_DMA, 1.0, 0.5)
        assert table.best_mode(STATE0) is CoherenceMode.LLC_COH_DMA

    def test_best_mode_respects_allowed_subset(self):
        table = QTable()
        table.update(STATE0, CoherenceMode.FULL_COH, 1.0, 0.5)
        best = table.best_mode(STATE0, allowed=[CoherenceMode.NON_COH_DMA, CoherenceMode.COH_DMA])
        assert best in (CoherenceMode.NON_COH_DMA, CoherenceMode.COH_DMA)

    def test_best_mode_tie_break_uses_rng(self):
        table = QTable()
        rng = SeededRNG(0)
        chosen = {table.best_mode(STATE0, rng=rng) for _ in range(40)}
        assert len(chosen) > 1

    def test_best_mode_empty_candidates_raises(self):
        with pytest.raises(PolicyError):
            QTable().best_mode(STATE0, allowed=[])

    def test_coverage_and_visited_states(self):
        table = QTable()
        assert table.coverage() == 0.0
        table.update(STATE0, CoherenceMode.COH_DMA, 1.0, 0.5)
        assert table.visited_states() == [0]
        assert table.coverage() == pytest.approx(1 / 243)

    def test_serialisation_roundtrip(self):
        table = QTable()
        table.update(STATE0, CoherenceMode.COH_DMA, 0.7, 0.25)
        restored = QTable.from_dict(table.to_dict())
        assert restored.value(STATE0, CoherenceMode.COH_DMA) == pytest.approx(
            table.value(STATE0, CoherenceMode.COH_DMA)
        )

    def test_from_dict_rejects_wrong_values_shape(self):
        payload = QTable().to_dict()
        payload["values"] = [[0.0] * 4] * 7
        with pytest.raises(PolicyError, match="shape"):
            QTable.from_dict(payload)

    def test_from_dict_rejects_wrong_updates_shape(self):
        """Regression: a mismatched updates matrix was silently accepted."""
        payload = QTable().to_dict()
        payload["updates"] = [[0] * 4] * 7
        with pytest.raises(PolicyError, match="update counts.*shape"):
            QTable.from_dict(payload)

    def test_from_dict_rejects_non_integer_updates(self):
        """Regression: float update counts corrupt visited_states()/coverage()."""
        table = QTable()
        table.update(STATE0, CoherenceMode.COH_DMA, 1.0, 0.5)
        payload = table.to_dict()
        payload["updates"][0][1] = 0.5
        with pytest.raises(PolicyError, match="not integers"):
            QTable.from_dict(payload)
        payload["updates"][0][1] = "three"
        with pytest.raises(PolicyError, match="not numeric"):
            QTable.from_dict(payload)
        payload["updates"][0][1] = -2
        with pytest.raises(PolicyError, match="negative"):
            QTable.from_dict(payload)

    def test_from_dict_rejects_non_finite_values(self):
        for poison in (float("nan"), float("inf"), float("-inf")):
            payload = QTable().to_dict()
            payload["values"][0][0] = poison
            with pytest.raises(PolicyError, match="non-finite"):
                QTable.from_dict(payload)

    def test_from_dict_rejects_missing_and_invalid_fields(self):
        payload = QTable().to_dict()
        del payload["updates"]
        with pytest.raises(PolicyError, match="updates"):
            QTable.from_dict(payload)
        payload = QTable().to_dict()
        payload["num_states"] = "many"
        with pytest.raises(PolicyError, match="num_states"):
            QTable.from_dict(payload)

    def test_from_dict_preserves_visited_states(self):
        table = QTable()
        table.update(STATE0, CoherenceMode.COH_DMA, 1.0, 0.5)
        table.update(5, CoherenceMode.FULL_COH, 0.5, 0.5)
        restored = QTable.from_dict(table.to_dict())
        assert restored.visited_states() == table.visited_states()
        assert restored.coverage() == table.coverage()
        assert (restored.update_counts() == table.update_counts()).all()

    def test_best_mode_exact_ties_only(self):
        """Tie detection is exact equality, independent of Q-value scale.

        The old absolute 1e-12 threshold merged near-ties at large
        magnitudes (consuming RNG draws that should not happen) and was
        never needed for genuine float-equal ties.  Near-equal values must
        deterministically pick the larger; exactly equal values tie.
        """
        table = QTable()
        # Near-tie below the old threshold: 5e-13 beats 0.0, but the old
        # `best - 1e-12` cutoff called them tied, consumed an RNG draw, and
        # could return the strictly worse mode.  (alpha=1.0 sets the entry
        # to exactly the reward, on every backend.)
        table.update(0, COHERENCE_MODES[0], 5e-13, 1.0)
        rng = SeededRNG(0)
        before = rng.state()
        assert table.best_mode(STATE0, rng=rng) is COHERENCE_MODES[0]
        # No tie -> no RNG draw consumed (the committed determinism digests
        # depend on the exact draw sequence).
        assert rng.state() == before
        # Exactly equal values still tie and draw, at any magnitude.
        table.update(0, COHERENCE_MODES[0], 1e9, 1.0)
        table.update(0, COHERENCE_MODES[1], 1e9, 1.0)
        table.best_mode(STATE0, rng=rng)
        assert rng.state() != before

    def test_reset(self):
        table = QTable()
        table.update(STATE0, CoherenceMode.COH_DMA, 0.7, 0.25)
        table.reset()
        assert table.coverage() == 0.0

    def test_state_index_bounds(self):
        with pytest.raises(PolicyError):
            QTable().value(999, CoherenceMode.COH_DMA)

    def test_update_sequence_digest_is_pinned(self):
        """The exact float trajectory of a seeded 1k-step episode is frozen.

        Guards the float-accumulation hazard in the batched update path:
        the update rule is a sequential recurrence, so any reordering or
        algebraic regrouping (e.g. folding a batch into a cumulative
        product) changes IEEE-754 rounding and moves these digests.  The
        module-level backend matrix asserts the same digests for the
        reference and vectorized tables; ``update_batch`` must land on the
        identical table as the per-step replay.
        """
        import hashlib
        import json

        from repro.core.state import NUM_STATES

        def episode_args():
            rng = SeededRNG(1234)
            for step in range(1000):
                state = rng.randint(0, NUM_STATES - 1)
                mode = COHERENCE_MODES[rng.randint(0, 3)]
                reward = rng.uniform(-2.0, 2.0)
                yield state, mode, reward, 0.25 * (1.0 - step / 1000)

        table = QTable()
        trace = [table.update(*args) for args in episode_args()]
        # repr() is the shortest round-trip form, so the digest pins every
        # bit of every intermediate value, not just the final table.
        sequence_digest = hashlib.sha256(
            json.dumps([repr(value) for value in trace]).encode()
        ).hexdigest()[:16]
        table_digest = hashlib.sha256(
            json.dumps(table.to_dict(), sort_keys=True).encode()
        ).hexdigest()[:16]
        assert sequence_digest == "f18e3e629c834026"
        assert table_digest == "02d1125c3a155644"

        batched = QTable()
        args = list(episode_args())
        batched.update_batch(
            [state for state, _, _, _ in args],
            [mode for _, mode, _, _ in args],
            [reward for _, _, reward, _ in args],
            [alpha for _, _, _, alpha in args],
        )
        assert batched.to_dict() == table.to_dict()

    def test_update_batch_validates_inputs(self):
        table = QTable()
        # Mismatched sequence lengths.
        with pytest.raises(PolicyError):
            table.update_batch([0, 1], [CoherenceMode.COH_DMA], [1.0], [0.5])
        # Out-of-range learning rate.
        with pytest.raises(PolicyError):
            table.update_batch([0], [CoherenceMode.COH_DMA], [1.0], [1.5])


class TestAgent:
    def test_paper_hyperparameters_default(self):
        agent = QLearningAgent()
        assert agent.epsilon == pytest.approx(0.5)
        assert agent.alpha == pytest.approx(0.25)

    def test_linear_decay(self):
        agent = QLearningAgent()
        agent.set_training_progress(0.5)
        assert agent.epsilon == pytest.approx(0.25)
        assert agent.alpha == pytest.approx(0.125)
        agent.set_training_progress(1.0)
        assert agent.epsilon == 0.0

    def test_freeze_stops_learning(self):
        agent = QLearningAgent()
        agent.freeze()
        agent.update(STATE0, CoherenceMode.COH_DMA, 1.0)
        assert agent.qtable.value(STATE0, CoherenceMode.COH_DMA) == 0.0
        assert agent.updates == 0

    def test_unfreeze_restores_hyperparameters(self):
        agent = QLearningAgent()
        agent.freeze()
        agent.unfreeze()
        assert agent.epsilon == pytest.approx(0.5)
        assert agent.learning_enabled

    def test_exploitation_prefers_learned_action(self):
        agent = QLearningAgent(rng=SeededRNG(1))
        agent.update(STATE0, CoherenceMode.LLC_COH_DMA, 1.0)
        agent.freeze()
        assert agent.select_action(STATE0) is CoherenceMode.LLC_COH_DMA

    def test_exploration_reaches_all_actions(self):
        agent = QLearningAgent(AgentConfig(initial_epsilon=1.0), rng=SeededRNG(2))
        chosen = {agent.select_action(STATE0) for _ in range(60)}
        assert chosen == set(COHERENCE_MODES)

    def test_select_respects_allowed(self):
        agent = QLearningAgent(AgentConfig(initial_epsilon=1.0), rng=SeededRNG(3))
        allowed = [CoherenceMode.NON_COH_DMA, CoherenceMode.COH_DMA]
        assert all(agent.select_action(STATE0, allowed) in allowed for _ in range(20))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(PolicyError):
            AgentConfig(initial_epsilon=1.5)

    def test_summary_counters(self):
        agent = QLearningAgent(rng=SeededRNG(4))
        agent.select_action(STATE0)
        agent.update(STATE0, CoherenceMode.COH_DMA, 0.5)
        summary = agent.summary()
        assert summary["decisions"] == 1
        assert summary["updates"] == 1


class TestFixedPolicies:
    def test_fixed_policy_returns_mode(self):
        policy = FixedPolicy(CoherenceMode.LLC_COH_DMA)
        mode = policy.select_mode(make_snapshot(), make_request(), list(COHERENCE_MODES))
        assert mode is CoherenceMode.LLC_COH_DMA
        assert policy.name == "fixed-llc-coh-dma"

    def test_fixed_full_coh_falls_back_without_private_cache(self):
        policy = FixedPolicy(CoherenceMode.FULL_COH)
        supported = [m for m in COHERENCE_MODES if m is not CoherenceMode.FULL_COH]
        assert policy.select_mode(make_snapshot(), make_request(), supported) is CoherenceMode.COH_DMA

    def test_fixed_hetero_uses_per_accelerator_mode(self):
        policy = FixedHeterogeneousPolicy({"FFT": CoherenceMode.FULL_COH})
        mode = policy.select_mode(make_snapshot(), make_request("FFT" and 16 * KB), list(COHERENCE_MODES))
        assert mode is CoherenceMode.FULL_COH

    def test_fixed_hetero_default_mode(self):
        policy = FixedHeterogeneousPolicy({}, default_mode=CoherenceMode.LLC_COH_DMA)
        mode = policy.select_mode(make_snapshot(), make_request(), list(COHERENCE_MODES))
        assert mode is CoherenceMode.LLC_COH_DMA

    def test_random_policy_covers_supported_modes(self):
        policy = RandomPolicy(SeededRNG(5))
        modes = {
            policy.select_mode(make_snapshot(), make_request(), list(COHERENCE_MODES))
            for _ in range(50)
        }
        assert modes == set(COHERENCE_MODES)

    def test_random_policy_empty_supported_raises(self):
        with pytest.raises(PolicyError):
            RandomPolicy(SeededRNG(5)).select_mode(make_snapshot(), make_request(), [])


class TestManualPolicy:
    def choose(self, footprint, **snapshot_overrides):
        policy = ManualPolicy()
        snapshot = make_snapshot(target_footprint_bytes=footprint, **snapshot_overrides)
        return policy.select_mode(snapshot, make_request(max(footprint, 1)), list(COHERENCE_MODES))

    def test_extra_small_goes_fully_coherent(self):
        assert self.choose(2 * KB) is CoherenceMode.FULL_COH

    def test_l2_sized_depends_on_active_modes(self):
        assert self.choose(24 * KB) is CoherenceMode.COH_DMA
        busy = {m.label: 0 for m in CoherenceMode}
        busy[CoherenceMode.COH_DMA.label] = 2
        assert self.choose(24 * KB, active_per_mode=busy) is CoherenceMode.FULL_COH

    def test_llc_overflow_goes_non_coherent(self):
        assert self.choose(2 * MB) is CoherenceMode.NON_COH_DMA
        assert (
            self.choose(300 * KB, active_footprint_bytes=1 * MB)
            is CoherenceMode.NON_COH_DMA
        )

    def test_mid_size_prefers_coherent_dma(self):
        assert self.choose(200 * KB) is CoherenceMode.COH_DMA

    def test_mid_size_avoids_non_coherent_crowd(self):
        busy = {m.label: 0 for m in CoherenceMode}
        busy[CoherenceMode.NON_COH_DMA.label] = 2
        assert self.choose(200 * KB, active_per_mode=busy) is CoherenceMode.LLC_COH_DMA


class TestCohmeleonPolicy:
    def test_learning_updates_qtable(self):
        policy = CohmeleonPolicy(rng=SeededRNG(6))
        request = make_request()
        snapshot = make_snapshot()
        mode = policy.select_mode(snapshot, request, list(COHERENCE_MODES))
        policy.observe_result(request, mode, snapshot, make_result())
        assert policy.agent.updates == 1
        assert len(policy.decisions) == 1
        assert policy.decisions[0].reward > 0.0

    def test_freeze_and_unfreeze(self):
        policy = CohmeleonPolicy(rng=SeededRNG(7))
        policy.freeze()
        assert policy.agent.epsilon == 0.0
        policy.unfreeze()
        assert policy.agent.epsilon == pytest.approx(0.5)

    def test_decision_breakdown_counts(self):
        policy = CohmeleonPolicy(rng=SeededRNG(8))
        request = make_request()
        snapshot = make_snapshot()
        for _ in range(10):
            policy.select_mode(snapshot, request, list(COHERENCE_MODES))
        breakdown = policy.decision_breakdown()
        assert sum(breakdown.values()) == 10

    def test_clear_history_keeps_qtable(self):
        policy = CohmeleonPolicy(rng=SeededRNG(9))
        request = make_request()
        snapshot = make_snapshot()
        mode = policy.select_mode(snapshot, request, list(COHERENCE_MODES))
        policy.observe_result(request, mode, snapshot, make_result())
        policy.clear_history()
        assert policy.decisions == []
        assert policy.qtable.coverage() > 0.0

    def test_overhead_larger_than_fixed_policies(self):
        assert CohmeleonPolicy.overhead_cycles > FixedPolicy.overhead_cycles


class TestPolicyFactory:
    def test_make_all_standard_kinds(self):
        for kind in (
            "fixed-non-coh-dma",
            "fixed-llc-coh-dma",
            "fixed-coh-dma",
            "fixed-full-coh",
            "fixed-hetero",
            "rand",
            "manual",
            "cohmeleon",
        ):
            policy = make_policy(kind, rng=SeededRNG(0))
            assert policy.name in (kind, f"{kind}")

    def test_unknown_kind_raises(self):
        with pytest.raises(PolicyError):
            make_policy("oracle")


class TestProfiling:
    def entries(self):
        return [
            ProfileEntry("FFT", CoherenceMode.NON_COH_DMA, 16 * KB, 2000.0, 100.0),
            ProfileEntry("FFT", CoherenceMode.COH_DMA, 16 * KB, 1000.0, 0.0),
            ProfileEntry("FFT", CoherenceMode.NON_COH_DMA, 4 * MB, 10000.0, 500.0),
            ProfileEntry("FFT", CoherenceMode.COH_DMA, 4 * MB, 30000.0, 600.0),
        ]

    def test_choose_mode_balances_footprints(self):
        # COH_DMA wins small (2x), NON_COH wins large (3x): NON_COH has the
        # better geometric mean across the two footprints.
        assert choose_mode_for_accelerator(self.entries()) is CoherenceMode.NON_COH_DMA

    def test_choose_fixed_heterogeneous_per_accelerator(self):
        entries = self.entries() + [
            ProfileEntry("GEMM", CoherenceMode.FULL_COH, 16 * KB, 500.0, 0.0),
            ProfileEntry("GEMM", CoherenceMode.NON_COH_DMA, 16 * KB, 1500.0, 10.0),
        ]
        modes = choose_fixed_heterogeneous(entries)
        assert modes["GEMM"] is CoherenceMode.FULL_COH

    def test_empty_profile_raises(self):
        with pytest.raises(PolicyError):
            choose_mode_for_accelerator([])

    def test_profile_summary_contains_all_modes_seen(self):
        summary = profile_summary(self.entries())
        assert set(summary["FFT"]) == {"non-coh-dma", "coh-dma"}
