"""Shared fixtures for the test suite.

The fixtures build deliberately small SoCs and workloads so that the unit
and integration tests run quickly while still exercising the same code
paths as the full experiment harnesses.
"""

from __future__ import annotations

import pytest

from repro.accelerators.library import ACCELERATOR_LIBRARY, accelerator_by_name
from repro.core.policies import FixedPolicy
from repro.runtime.api import EspRuntime
from repro.soc.coherence import CoherenceMode
from repro.soc.config import SoCConfig, TimingConfig
from repro.soc.soc import Soc
from repro.units import KB, MB
from repro.utils.backend import CORE_BACKENDS, core_backend


@pytest.fixture(params=CORE_BACKENDS)
def core_backend_name(request):
    """Parametrize the requesting test over every core backend.

    Depending on this fixture (directly, or via a module-level autouse
    fixture — see ``tests/test_qlearning.py`` / ``tests/test_engine.py``)
    runs the test once per ``REPRO_CORE_BACKEND`` value, with the backend
    selected for the duration of the test.
    """
    with core_backend(request.param):
        yield request.param


@pytest.fixture
def tiny_config() -> SoCConfig:
    """A small SoC used by most unit tests: 3 accelerators, 2 memory tiles."""
    return SoCConfig(
        name="TestSoC",
        num_accelerator_tiles=3,
        noc_rows=3,
        noc_cols=3,
        num_cpus=2,
        num_mem_tiles=2,
        llc_partition_bytes=128 * KB,
        l2_bytes=16 * KB,
        dram_partition_bytes=64 * MB,
    )


@pytest.fixture
def tiny_soc(tiny_config: SoCConfig) -> Soc:
    """A freshly built small SoC."""
    return Soc(tiny_config)


@pytest.fixture
def tiny_runtime(tiny_soc: Soc) -> EspRuntime:
    """Runtime bound to three library accelerators, fixed coherent-DMA policy."""
    runtime = EspRuntime(tiny_soc, FixedPolicy(CoherenceMode.COH_DMA))
    runtime.bind_library(
        [accelerator_by_name("FFT"), accelerator_by_name("GEMM"), accelerator_by_name("SPMV")]
    )
    return runtime


@pytest.fixture
def library_accelerators():
    """The full accelerator library."""
    return list(ACCELERATOR_LIBRARY)


@pytest.fixture
def default_timing() -> TimingConfig:
    """The default timing model."""
    return TimingConfig()
