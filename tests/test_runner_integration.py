"""Integration tests: running applications end to end on the SoC model."""

from __future__ import annotations

import pytest

from repro import build_system
from repro.accelerators.library import accelerator_by_name
from repro.core.policies import CohmeleonPolicy, FixedPolicy, ManualPolicy, RandomPolicy
from repro.soc.coherence import CoherenceMode
from repro.units import KB
from repro.utils.rng import SeededRNG
from repro.workloads.runner import run_application, run_phase
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec


def small_app(names, loops=1, footprints=(8 * KB, 32 * KB)):
    threads = tuple(
        ThreadSpec(
            thread_id=f"t{i}",
            accelerator_chain=(names[i % len(names)],),
            footprint_bytes=footprints[i % len(footprints)],
            loop_count=loops,
            cpu_index=i % 2,
        )
        for i in range(len(names))
    )
    return ApplicationSpec(
        name="integration",
        phases=(
            PhaseSpec(name="phase-a", threads=threads[:2]),
            PhaseSpec(name="phase-b", threads=threads),
        ),
    )


@pytest.fixture
def small_system(tiny_config):
    accelerators = [
        accelerator_by_name("FFT"),
        accelerator_by_name("Sort"),
        accelerator_by_name("SPMV"),
    ]
    def build(policy):
        from repro.runtime.api import EspRuntime
        from repro.soc.soc import Soc

        soc = Soc(tiny_config)
        runtime = EspRuntime(soc, policy)
        runtime.bind_library(accelerators)
        return soc, runtime

    return build


class TestRunApplication:
    def test_all_invocations_complete(self, small_system):
        soc, runtime = small_system(FixedPolicy(CoherenceMode.COH_DMA))
        app = small_app(["FFT", "Sort", "SPMV"], loops=2)
        result = run_application(soc, runtime, app)
        assert len(result.phases) == 2
        assert result.phases[0].invocation_count == 2 * 2  # 2 threads x 2 loops
        assert result.phases[1].invocation_count == 3 * 2  # 3 threads x 2 loops
        assert result.total_execution_cycles > 0

    def test_phase_times_are_monotone_in_engine_time(self, small_system):
        soc, runtime = small_system(FixedPolicy(CoherenceMode.NON_COH_DMA))
        result = run_application(soc, runtime, small_app(["FFT", "Sort"]))
        for phase in result.phases:
            assert phase.execution_cycles > 0

    def test_ddr_accesses_zero_for_cached_small_workloads(self, small_system):
        soc, runtime = small_system(FixedPolicy(CoherenceMode.COH_DMA))
        result = run_application(soc, runtime, small_app(["FFT", "Sort"]))
        assert result.total_ddr_accesses == 0

    def test_non_coherent_produces_ddr_traffic(self, small_system):
        soc, runtime = small_system(FixedPolicy(CoherenceMode.NON_COH_DMA))
        result = run_application(soc, runtime, small_app(["FFT", "Sort"]))
        assert result.total_ddr_accesses > 0

    def test_reset_between_runs_reproduces_results(self, small_system):
        soc, runtime = small_system(FixedPolicy(CoherenceMode.LLC_COH_DMA))
        app = small_app(["FFT", "Sort", "SPMV"])
        first = run_application(soc, runtime, app)
        second = run_application(soc, runtime, app)
        assert first.total_execution_cycles == pytest.approx(second.total_execution_cycles)
        assert first.total_ddr_accesses == second.total_ddr_accesses

    def test_policy_name_recorded(self, small_system):
        soc, runtime = small_system(ManualPolicy())
        result = run_application(soc, runtime, small_app(["FFT"]))
        assert result.policy_name == "manual"

    def test_phase_lookup_by_name(self, small_system):
        soc, runtime = small_system(FixedPolicy(CoherenceMode.COH_DMA))
        result = run_application(soc, runtime, small_app(["FFT", "Sort"]))
        assert result.phase_by_name("phase-a").name == "phase-a"
        with pytest.raises(KeyError):
            result.phase_by_name("missing")

    def test_run_phase_standalone(self, small_system):
        soc, runtime = small_system(FixedPolicy(CoherenceMode.COH_DMA))
        phase = small_app(["FFT", "Sort"]).phases[0]
        result = run_phase(soc, runtime, phase)
        assert result.invocation_count == len(phase.threads)


class TestPolicyBehaviourEndToEnd:
    """Behavioural checks of the paper's qualitative claims on a small SoC."""

    def test_cached_modes_beat_non_coherent_for_warm_small_data(self, small_system):
        app = small_app(["FFT", "Sort"], loops=2, footprints=(8 * KB, 12 * KB))
        times = {}
        for mode in (
            CoherenceMode.NON_COH_DMA,
            CoherenceMode.LLC_COH_DMA,
            CoherenceMode.COH_DMA,
            CoherenceMode.FULL_COH,
        ):
            soc, runtime = small_system(FixedPolicy(mode))
            result = run_application(soc, runtime, app)
            times[mode] = result.total_execution_cycles
        best_cached = min(
            times[CoherenceMode.LLC_COH_DMA],
            times[CoherenceMode.COH_DMA],
            times[CoherenceMode.FULL_COH],
        )
        assert best_cached < times[CoherenceMode.NON_COH_DMA]

    def test_random_policy_uses_multiple_modes(self, small_system):
        soc, runtime = small_system(RandomPolicy(SeededRNG(3)))
        app = small_app(["FFT", "Sort", "SPMV"], loops=3)
        result = run_application(soc, runtime, app)
        modes = {invocation.mode for invocation in result.invocations}
        assert len(modes) >= 2

    def test_cohmeleon_learns_online_and_improves_memory_traffic(self, small_system):
        app = small_app(["FFT", "Sort", "SPMV"], loops=3, footprints=(8 * KB, 16 * KB))
        policy = CohmeleonPolicy(rng=SeededRNG(11))
        soc, runtime = small_system(policy)
        for iteration in range(6):
            policy.set_training_progress(iteration / 6)
            run_application(soc, runtime, app)
        policy.freeze()
        learned = run_application(soc, runtime, app)

        soc_ref, runtime_ref = small_system(FixedPolicy(CoherenceMode.NON_COH_DMA))
        reference = run_application(soc_ref, runtime_ref, app)

        assert policy.qtable.coverage() > 0.0
        # The learned policy should not use more off-chip accesses than the
        # always-non-coherent baseline on warm, cache-resident workloads.
        assert learned.total_ddr_accesses <= reference.total_ddr_accesses

    def test_manual_policy_competitive_with_best_fixed(self, small_system):
        app = small_app(["FFT", "Sort"], loops=2, footprints=(8 * KB, 16 * KB))
        results = {}
        for label, policy in (
            ("manual", ManualPolicy()),
            ("non-coh", FixedPolicy(CoherenceMode.NON_COH_DMA)),
            ("coh-dma", FixedPolicy(CoherenceMode.COH_DMA)),
        ):
            soc, runtime = small_system(policy)
            results[label] = run_application(soc, runtime, app).total_execution_cycles
        best_fixed = min(results["non-coh"], results["coh-dma"])
        # On this deliberately tiny SoC the manual heuristic cannot always
        # match the best fixed policy, but it must stay in the same
        # ballpark (the paper's claim holds on the full-size platforms).
        assert results["manual"] <= best_fixed * 1.35


class TestBuildSystem:
    def test_build_system_with_preset_name(self):
        soc, runtime = build_system("SoC1", policy=FixedPolicy(CoherenceMode.COH_DMA))
        assert soc.config.name == "SoC1"
        assert len(runtime.bindings) == soc.config.num_accelerator_tiles

    def test_build_system_default_policy_is_cohmeleon(self):
        _, runtime = build_system("SoC6")
        assert runtime.policy.name == "cohmeleon"

    def test_build_system_custom_accelerators(self):
        accelerators = [accelerator_by_name("FFT")] * 3
        _, runtime = build_system("SoC1", accelerators=accelerators)
        assert len(runtime.bindings_for("FFT")) == 3
