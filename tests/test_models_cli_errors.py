"""Error-path contract of the ``python -m repro.models`` CLI.

The ``eval`` (and ``serve``) failure modes a user actually hits — an
empty or missing registry, an unknown ``--scenario`` target, a tampered
artifact failing its digest gate — must exit with code 2 and a single
``error: ...`` line on stderr, never a traceback.  Same subprocess
pattern as ``tests/test_scenario_cli_errors.py``; the artifacts are
built directly (seeded Q-table updates, no training sweep) so the whole
module stays fast.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from serving_harness import make_artifact

from repro.models.registry import ModelRegistry

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_models_cli(*args: str) -> subprocess.CompletedProcess:
    """Run ``python -m repro.models <args>`` as a user would."""
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    return subprocess.run(
        [sys.executable, "-m", "repro.models", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def assert_clean_error(completed: subprocess.CompletedProcess, *fragments: str):
    """One ``error:`` line on stderr, no traceback, exit code 2."""
    assert completed.returncode == 2, (
        f"expected exit code 2, got {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert "Traceback" not in completed.stderr
    assert "Traceback" not in completed.stdout
    error_lines = [
        line for line in completed.stderr.splitlines() if line.startswith("error: ")
    ]
    assert len(error_lines) == 1, f"stderr:\n{completed.stderr}"
    for fragment in fragments:
        assert fragment in error_lines[0], f"{fragment!r} not in {error_lines[0]!r}"


@pytest.fixture
def toy_registry(tmp_path) -> ModelRegistry:
    """A registry holding one deterministic toy artifact named ``toy``."""
    registry = ModelRegistry(tmp_path / "models")
    registry.root.mkdir(parents=True)
    registry.save(make_artifact(name="toy"))
    return registry


@pytest.mark.slow
class TestEvalErrors:
    """``eval`` validates its inputs before any simulation starts."""

    def test_eval_with_missing_registry_dir(self, tmp_path):
        completed = run_models_cli(
            "eval",
            "ghost",
            "--no-cache",
            "--models-dir",
            str(tmp_path / "never-created"),
        )
        assert_clean_error(completed, "no model named", "ghost")

    def test_eval_unknown_model_in_existing_registry(self, toy_registry):
        completed = run_models_cli(
            "eval", "ghost", "--no-cache", "--models-dir", str(toy_registry.root)
        )
        assert_clean_error(completed, "ghost", "toy")

    def test_eval_unknown_scenario_override(self, toy_registry):
        completed = run_models_cli(
            "eval",
            "toy",
            "--scenario",
            "no-such-scenario",
            "--no-cache",
            "--models-dir",
            str(toy_registry.root),
        )
        assert_clean_error(completed, "no-such-scenario")

    def test_eval_digest_mismatch_after_tampering(self, toy_registry):
        path = toy_registry.path_for("toy")
        document = json.loads(path.read_text())
        document["payload"]["provenance"]["seed"] = 424242
        path.write_text(json.dumps(document))
        completed = run_models_cli(
            "eval", "toy", "--no-cache", "--models-dir", str(toy_registry.root)
        )
        assert_clean_error(completed, "digest")

    def test_eval_truncated_artifact_is_a_clean_error(self, toy_registry):
        path = toy_registry.path_for("toy")
        path.write_text(path.read_text()[: 100])
        completed = run_models_cli(
            "eval", "toy", "--no-cache", "--models-dir", str(toy_registry.root)
        )
        assert_clean_error(completed, "not valid JSON")


@pytest.mark.slow
class TestDescribeAndServeErrors:
    """The read-only verbs share the same clean-error contract."""

    def test_describe_unknown_model(self, tmp_path):
        completed = run_models_cli(
            "describe", "ghost", "--models-dir", str(tmp_path)
        )
        assert_clean_error(completed, "ghost")

    def test_serve_unknown_model(self, tmp_path):
        completed = run_models_cli(
            "serve", "ghost", "--models-dir", str(tmp_path)
        )
        assert_clean_error(completed, "no model named", "ghost")

    def test_serving_cli_serve_unknown_model(self, tmp_path):
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.serving",
                "serve",
                "ghost",
                "--models-dir",
                str(tmp_path),
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert_clean_error(completed, "no model named", "ghost")

    def test_serving_cli_loadtest_unreachable_server(self):
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.serving",
                "loadtest",
                "--port",
                "1",
                "--clients",
                "1",
                "--requests",
                "1",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        # No server listens on port 1: a clean error, not a traceback.
        assert_clean_error(completed, "cannot reach the server")
