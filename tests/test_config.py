"""Unit tests for SoC configuration and the Table 4 presets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.soc.config import (
    SOC0,
    SOC3,
    SoCConfig,
    TimingConfig,
    available_presets,
    soc_preset,
)
from repro.units import KB, MB


class TestTimingConfig:
    def test_defaults_validate(self):
        TimingConfig().validate()

    def test_negative_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(dram_latency_cycles=-1).validate()

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(noc_bytes_per_cycle=0).validate()


class TestSoCConfig:
    def test_valid_config_builds(self, tiny_config):
        assert tiny_config.total_llc_bytes == 2 * tiny_config.llc_partition_bytes

    def test_too_many_tiles_rejected(self):
        with pytest.raises(ConfigurationError):
            SoCConfig(
                name="overfull",
                num_accelerator_tiles=10,
                noc_rows=2,
                noc_cols=2,
                num_cpus=1,
                num_mem_tiles=1,
                llc_partition_bytes=128 * KB,
                l2_bytes=16 * KB,
            )

    def test_invalid_cacheless_index_rejected(self):
        with pytest.raises(ConfigurationError):
            SoCConfig(
                name="bad",
                num_accelerator_tiles=2,
                noc_rows=3,
                noc_cols=3,
                num_cpus=1,
                num_mem_tiles=1,
                llc_partition_bytes=128 * KB,
                l2_bytes=16 * KB,
                accelerators_without_cache=(5,),
            )

    def test_accelerator_has_cache(self):
        assert SOC3.accelerator_has_cache(0)
        assert not SOC3.accelerator_has_cache(12)

    def test_with_timing_override(self, tiny_config):
        modified = tiny_config.with_timing(dram_latency_cycles=50.0)
        assert modified.timing.dram_latency_cycles == 50.0
        assert tiny_config.timing.dram_latency_cycles != 50.0

    def test_with_line_size(self, tiny_config):
        coarse = tiny_config.with_line_size(256)
        assert coarse.cache_line_bytes == 256

    def test_describe_matches_table4_fields(self):
        summary = SOC0.describe()
        assert summary["accelerators"] == 12
        assert summary["noc"] == "5x5"
        assert summary["cpus"] == 4
        assert summary["ddrs"] == 4
        assert summary["llc_partition_kb"] == 512
        assert summary["total_llc_kb"] == 2048
        assert summary["l2_kb"] == 64


class TestPresets:
    def test_all_table4_presets_exist(self):
        names = available_presets()
        for expected in ("SoC0", "SoC1", "SoC2", "SoC3", "SoC4", "SoC5", "SoC6"):
            assert expected in names

    def test_preset_lookup(self):
        assert soc_preset("SoC0") is SOC0

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError):
            soc_preset("SoC99")

    @pytest.mark.parametrize(
        "name,accelerators,cpus,ddrs,llc_partition_kb,total_llc_kb,l2_kb",
        [
            ("SoC0", 12, 4, 4, 512, 2048, 64),
            ("SoC1", 7, 2, 4, 256, 1024, 32),
            ("SoC2", 9, 4, 2, 512, 1024, 32),
            ("SoC3", 16, 4, 4, 256, 1024, 64),
            ("SoC4", 11, 2, 4, 256, 1024, 32),
            ("SoC5", 8, 1, 4, 256, 1024, 32),
            ("SoC6", 9, 1, 2, 256, 512, 32),
        ],
    )
    def test_table4_parameters(
        self, name, accelerators, cpus, ddrs, llc_partition_kb, total_llc_kb, l2_kb
    ):
        config = soc_preset(name)
        assert config.num_accelerator_tiles == accelerators
        assert config.num_cpus == cpus
        assert config.num_mem_tiles == ddrs
        assert config.llc_partition_bytes == llc_partition_kb * KB
        assert config.total_llc_bytes == total_llc_kb * KB
        assert config.l2_bytes == l2_kb * KB

    def test_soc3_has_five_cacheless_accelerators(self):
        assert len(SOC3.accelerators_without_cache) == 5

    def test_motivation_soc_matches_section3(self):
        config = soc_preset("Motivation")
        assert config.l2_bytes == 32 * KB
        assert config.num_mem_tiles == 2
        assert config.total_llc_bytes == 1 * MB
