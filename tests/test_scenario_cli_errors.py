"""Error-path contract of the ``python -m repro.scenarios`` CLI.

Every user mistake — an unknown scenario name, a malformed ``--pretrained``
artifact, an invalid generation spec, a matrix with no models — must exit
non-zero with a single clear ``error: ...`` line on stderr and **no
traceback**.  These run as real subprocesses (the same way a user hits the
errors), so they also pin down the exit codes shell scripts and CI lanes
branch on.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_cli(*args: str, cwd=None) -> subprocess.CompletedProcess:
    """Run ``python -m repro.scenarios <args>`` as a user would."""
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    return subprocess.run(
        [sys.executable, "-m", "repro.scenarios", *args],
        cwd=cwd or REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def assert_clean_error(completed: subprocess.CompletedProcess, *fragments: str):
    """One ``error:`` line on stderr, no traceback, non-zero exit."""
    assert completed.returncode == 2, (
        f"expected exit code 2, got {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert "Traceback" not in completed.stderr
    assert "Traceback" not in completed.stdout
    error_lines = [
        line for line in completed.stderr.splitlines() if line.startswith("error: ")
    ]
    assert len(error_lines) == 1, f"stderr:\n{completed.stderr}"
    for fragment in fragments:
        assert fragment in error_lines[0], (
            f"{fragment!r} not in {error_lines[0]!r}"
        )


@pytest.mark.slow
class TestUnknownScenario:
    """Misspelled scenario names fail cleanly in every subcommand."""

    def test_describe_unknown_scenario(self):
        assert_clean_error(
            run_cli("describe", "no-such-scenario"), "no-such-scenario"
        )

    def test_run_unknown_scenario(self):
        assert_clean_error(
            run_cli("run", "no-such-scenario", "--no-cache"), "no-such-scenario"
        )

    def test_run_missing_scenario_file(self, tmp_path):
        assert_clean_error(
            run_cli("run", str(tmp_path / "missing.toml"), "--no-cache"),
            "missing.toml",
        )


@pytest.mark.slow
class TestMalformedPretrained:
    """Broken --pretrained artifacts fail before any simulation starts."""

    def test_pretrained_name_not_in_registry(self, tmp_path):
        completed = run_cli(
            "run",
            "quickstart",
            "--no-cache",
            "--pretrained",
            "no-such-model",
            "--models-dir",
            str(tmp_path),
        )
        assert_clean_error(completed, "no-such-model")

    def test_pretrained_file_is_not_an_artifact(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "not-an-artifact"}))
        completed = run_cli(
            "run", "quickstart", "--no-cache", "--pretrained", str(bogus)
        )
        assert_clean_error(completed)

    def test_pretrained_digest_tamper_is_detected(self, tmp_path):
        # Train a real artifact, then corrupt its digest-covered payload.
        env = {
            **os.environ,
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "REPRO_MODELS_DIR": str(tmp_path),
        }
        trained = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.models",
                "train",
                "quickstart",
                "--name",
                "tampered",
                "--training-iterations",
                "1",
                "--no-cache",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert trained.returncode == 0, trained.stderr
        artifact_path = tmp_path / "tampered.json"
        document = json.loads(artifact_path.read_text())
        document["payload"]["provenance"]["seed"] = 424242
        artifact_path.write_text(json.dumps(document))
        completed = run_cli(
            "run",
            "quickstart",
            "--no-cache",
            "--pretrained",
            "tampered",
            "--models-dir",
            str(tmp_path),
        )
        assert_clean_error(completed, "digest")


@pytest.mark.slow
class TestInvalidGenerationSpec:
    """Broken generation specs name the offending key, without tracebacks."""

    def test_generate_unknown_spec_key(self, tmp_path):
        spec = tmp_path / "spec.toml"
        spec.write_text("[topology]\ntilez = 3\n")
        assert_clean_error(run_cli("generate", "--spec", str(spec)), "tilez")

    def test_generate_empty_range(self, tmp_path):
        spec = tmp_path / "spec.toml"
        spec.write_text("[workload]\nphases = [4, 1]\n")
        assert_clean_error(
            run_cli("generate", "--spec", str(spec)), "[workload].phases"
        )

    def test_generate_invalid_toml(self, tmp_path):
        spec = tmp_path / "spec.toml"
        spec.write_text("[generation\n")
        assert_clean_error(run_cli("generate", "--spec", str(spec)), "invalid TOML")

    def test_generate_missing_spec_file(self, tmp_path):
        assert_clean_error(
            run_cli("generate", "--spec", str(tmp_path / "nope.toml")), "cannot read"
        )

    def test_generate_unknown_accelerator(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"workload": {"accelerators": ["Warp9"]}}))
        assert_clean_error(run_cli("generate", "--spec", str(spec)), "Warp9")


@pytest.mark.slow
class TestMatrixErrors:
    """The matrix subcommand validates its inputs before sweeping."""

    def test_matrix_without_models(self):
        assert_clean_error(
            run_cli("matrix", "--scenario", "quickstart", "--no-cache"),
            "--models",
        )

    def test_matrix_with_empty_registry(self, tmp_path):
        completed = run_cli(
            "matrix", "--all-models", "--models-dir", str(tmp_path), "--no-cache"
        )
        assert_clean_error(completed, "no models registered")

    def test_matrix_resume_without_cache(self, tmp_path):
        completed = run_cli(
            "matrix",
            "--all-models",
            "--models-dir",
            str(tmp_path),
            "--scenario",
            "quickstart",
            "--no-cache",
            "--resume",
        )
        assert_clean_error(completed, "--resume")
