"""Unit tests for the runtime layer: status tracking, attribution, executor,
and the ESP-like invocation API."""

from __future__ import annotations

import pytest

from repro.accelerators.invocation import InvocationRequest
from repro.accelerators.library import accelerator_by_name
from repro.core.policies import FixedPolicy, ManualPolicy
from repro.errors import ConfigurationError
from repro.runtime.api import EspRuntime
from repro.runtime.attribution import attribute_ddr_accesses, combine_footprints
from repro.runtime.status import ActiveInvocation, SystemStatus
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.units import KB


class TestSystemStatus:
    def make_status(self):
        return SystemStatus(l2_bytes=32 * KB, llc_partition_bytes=256 * KB, num_mem_tiles=2)

    def make_invocation(self, tile="acc0", mode=CoherenceMode.COH_DMA, footprint=64 * KB):
        return ActiveInvocation(
            tile_name=tile,
            accelerator_name="FFT",
            mode=mode,
            footprint_bytes=footprint,
            footprint_per_tile={0: footprint},
            start_time=0.0,
        )

    def test_register_and_unregister(self):
        status = self.make_status()
        status.register(self.make_invocation())
        assert status.is_tile_busy("acc0")
        assert status.active_count() == 1
        status.unregister("acc0")
        assert not status.is_tile_busy("acc0")

    def test_unregister_unknown_returns_none(self):
        assert self.make_status().unregister("ghost") is None

    def test_snapshot_counts_modes(self):
        status = self.make_status()
        status.register(self.make_invocation("acc0", CoherenceMode.NON_COH_DMA))
        status.register(self.make_invocation("acc1", CoherenceMode.FULL_COH))
        snapshot = status.snapshot(32 * KB, {0: 32 * KB})
        assert snapshot.active_count(CoherenceMode.NON_COH_DMA) == 1
        assert snapshot.active_count(CoherenceMode.FULL_COH) == 1
        assert snapshot.active_accelerators == 2
        assert snapshot.non_coh_per_target_tile == 1.0
        assert snapshot.llc_users_per_target_tile == 1.0

    def test_snapshot_tile_footprint_includes_target(self):
        status = self.make_status()
        status.register(self.make_invocation("acc0", footprint=128 * KB))
        snapshot = status.snapshot(64 * KB, {0: 64 * KB})
        assert snapshot.tile_footprint_bytes == pytest.approx(192 * KB)

    def test_snapshot_ignores_other_tiles(self):
        status = self.make_status()
        invocation = self.make_invocation("acc0")
        invocation.footprint_per_tile = {1: 64 * KB}
        status.register(invocation)
        snapshot = status.snapshot(32 * KB, {0: 32 * KB})
        assert snapshot.llc_users_per_target_tile == 0.0

    def test_snapshot_platform_capacities(self):
        snapshot = self.make_status().snapshot(1, {0: 1})
        assert snapshot.l2_bytes == 32 * KB
        assert snapshot.llc_total_bytes == 512 * KB

    def test_footprint_per_tile_totals(self):
        status = self.make_status()
        status.register(self.make_invocation("acc0"))
        status.register(self.make_invocation("acc1"))
        totals = status.footprint_per_tile()
        assert totals[0] == 128 * KB

    def test_reset(self):
        status = self.make_status()
        status.register(self.make_invocation())
        status.reset()
        assert status.active_count() == 0


class TestAttribution:
    def test_sole_accelerator_gets_everything(self):
        attributed = attribute_ddr_accesses({0: 100}, {0: 64}, {0: 64})
        assert attributed == pytest.approx(100.0)

    def test_share_proportional_to_footprint(self):
        attributed = attribute_ddr_accesses({0: 100}, {0: 25}, {0: 100})
        assert attributed == pytest.approx(25.0)

    def test_multiple_controllers_sum(self):
        attributed = attribute_ddr_accesses(
            {0: 100, 1: 50}, {0: 50, 1: 50}, {0: 100, 1: 50}
        )
        assert attributed == pytest.approx(100.0)

    def test_zero_delta_and_foreign_tiles_ignored(self):
        assert attribute_ddr_accesses({0: 0, 1: 40}, {0: 64}, {0: 64}) == 0.0

    def test_combine_footprints(self):
        combined = combine_footprints({0: 10, 1: 5}, {0: 3})
        assert combined == {0: 13, 1: 5}


class TestBindings:
    def test_bind_and_lookup(self, tiny_runtime):
        bindings = tiny_runtime.bindings_for("FFT")
        assert bindings[0].tile_name == "acc0"
        assert "GEMM" in tiny_runtime.bound_accelerator_names()

    def test_bind_too_many_raises(self, tiny_runtime):
        with pytest.raises(ConfigurationError):
            tiny_runtime.bind_accelerator(accelerator_by_name("MLP"))

    def test_bind_same_tile_twice_raises(self, tiny_soc):
        runtime = EspRuntime(tiny_soc, FixedPolicy(CoherenceMode.COH_DMA))
        runtime.bind_accelerator(accelerator_by_name("FFT"), tile_index=0)
        with pytest.raises(ConfigurationError):
            runtime.bind_accelerator(accelerator_by_name("GEMM"), tile_index=0)

    def test_unknown_accelerator_raises(self, tiny_runtime):
        with pytest.raises(ConfigurationError):
            tiny_runtime.bindings_for("Quantum")

    def test_supported_modes_depend_on_private_cache(self, tiny_runtime):
        binding = tiny_runtime.bindings_for("FFT")[0]
        assert CoherenceMode.FULL_COH in binding.supported_modes
        binding.has_private_cache = False
        assert CoherenceMode.FULL_COH not in binding.supported_modes
        assert len(binding.supported_modes) == 3


class TestInvocation:
    def run_one(self, runtime, accelerator="FFT", footprint=8 * KB):
        soc = runtime.soc
        buffer = soc.allocate_buffer(footprint)
        soc.warm_buffer(buffer)
        holder = {}

        def proc():
            holder["result"] = yield from runtime.invoke_by_name(
                accelerator, buffer, footprint
            )

        soc.engine.spawn("test", proc())
        soc.engine.run()
        return holder["result"]

    def test_invocation_produces_result(self, tiny_runtime):
        result = self.run_one(tiny_runtime)
        assert result.total_cycles > 0
        assert result.accelerator_cycles > 0
        assert result.mode is CoherenceMode.COH_DMA
        assert result.accelerator_name == "FFT"
        assert tiny_runtime.results == [result]

    def test_invocation_records_policy_overhead(self, tiny_runtime):
        result = self.run_one(tiny_runtime)
        assert result.policy_overhead_cycles == FixedPolicy.overhead_cycles

    def test_total_includes_driver_overhead(self, tiny_runtime):
        result = self.run_one(tiny_runtime)
        assert result.total_cycles >= tiny_runtime.soc.config.timing.driver_base_cycles

    def test_status_cleared_after_completion(self, tiny_runtime):
        self.run_one(tiny_runtime)
        assert tiny_runtime.status.active_count() == 0

    def test_two_threads_share_one_tile_serially(self, tiny_soc):
        runtime = EspRuntime(tiny_soc, FixedPolicy(CoherenceMode.NON_COH_DMA))
        runtime.bind_library([accelerator_by_name("FFT")])
        buffer = tiny_soc.allocate_buffer(8 * KB)
        results = []

        def proc(tag):
            result = yield from runtime.invoke_by_name("FFT", buffer, 8 * KB, thread_id=tag)
            results.append(result)

        tiny_soc.engine.spawn("t0", proc("t0"))
        tiny_soc.engine.spawn("t1", proc("t1"))
        tiny_soc.engine.run()
        assert len(results) == 2
        first, second = sorted(results, key=lambda r: r.start_time)
        # The second invocation cannot start before the first finishes since
        # both need the only FFT tile.
        assert second.start_time >= first.finish_time - 1e-6

    def test_invoke_unbound_tile_raises(self, tiny_soc):
        runtime = EspRuntime(tiny_soc, FixedPolicy(CoherenceMode.COH_DMA))
        buffer = tiny_soc.allocate_buffer(4 * KB)
        request = InvocationRequest(
            accelerator=accelerator_by_name("FFT"),
            tile_name="acc0",
            buffer=buffer,
            footprint_bytes=4 * KB,
        )
        with pytest.raises(ConfigurationError):
            list(runtime.invoke(request))

    def test_manual_policy_end_to_end(self, tiny_soc):
        runtime = EspRuntime(tiny_soc, ManualPolicy())
        runtime.bind_library([accelerator_by_name("FFT")])
        result = TestInvocation().run_one(runtime, footprint=4 * KB)
        assert result.mode in COHERENCE_MODES

    def test_ddr_attribution_zero_for_warm_cached_invocation(self, tiny_runtime):
        result = self.run_one(tiny_runtime, footprint=4 * KB)
        # Warm small data under coherent DMA should cause (almost) no
        # off-chip accesses.
        assert result.ddr_accesses == pytest.approx(0.0, abs=1.0)

    def test_clear_results(self, tiny_runtime):
        self.run_one(tiny_runtime)
        tiny_runtime.clear_results()
        assert tiny_runtime.results == []
