"""Tests for :mod:`repro.experiments.report` and :mod:`repro.experiments.summary`.

Previously untested: golden-output tests pin the exact table text rendered
from canned results (so formatting regressions are caught byte-for-byte),
and the headline aggregation is checked against hand-computed numbers from
a canned Figure 9 comparison.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ExperimentError
from repro.experiments.common import PolicyEvaluation
from repro.experiments.report import report_headline, report_mapping, report_socs
from repro.experiments.socs import SocComparisonPoint, SocComparisonResult
from repro.experiments.summary import HeadlineSummary, summarize_headline

#: A canned evaluation in the exact JSON form the sweep cache stores.
CANNED_EVALUATION = {
    "policy_name": "cohmeleon",
    "result": {
        "application_name": "canned-app",
        "policy_name": "cohmeleon",
        "phases": [
            {"name": "light", "execution_cycles": 1000.0, "ddr_accesses": 40, "invocations": []},
            {"name": "heavy", "execution_cycles": 3000.0, "ddr_accesses": 160, "invocations": []},
        ],
    },
    "training_results": [],
}


def canned_points():
    """Two SoCs where Cohmeleon beats the reference by known ratios."""
    return [
        SocComparisonPoint("SoC-A", "fixed-non-coh-dma", 1.0, 1.0),
        SocComparisonPoint("SoC-A", "cohmeleon", 0.8, 0.5),
        SocComparisonPoint("SoC-B", "fixed-non-coh-dma", 1.0, 1.0),
        SocComparisonPoint("SoC-B", "cohmeleon", 0.5, 0.25),
    ]


# ----------------------------------------------------------------------
# PolicyEvaluation (canned JSON form)
# ----------------------------------------------------------------------

def test_policy_evaluation_round_trip():
    """from_dict(to_dict(x)) reproduces the canned evaluation exactly."""
    evaluation = PolicyEvaluation.from_dict(CANNED_EVALUATION)
    assert evaluation.policy_name == "cohmeleon"
    assert evaluation.to_dict() == CANNED_EVALUATION


def test_policy_evaluation_per_phase_tables():
    """The per-phase helper properties read the canned phases."""
    evaluation = PolicyEvaluation.from_dict(CANNED_EVALUATION)
    assert evaluation.per_phase_exec == {"light": 1000.0, "heavy": 3000.0}
    assert evaluation.per_phase_ddr == {"light": 40.0, "heavy": 160.0}
    assert evaluation.result.total_execution_cycles == 4000.0
    assert evaluation.result.total_ddr_accesses == 200


# ----------------------------------------------------------------------
# Golden-output formatting
# ----------------------------------------------------------------------

GOLDEN_SOCS = (
    "Figure 9 — additional SoC configurations\n"
    "SoC   | policy            | norm exec time | norm off-chip accesses\n"
    "------+-------------------+----------------+-----------------------\n"
    "SoC-A | fixed-non-coh-dma | 1.000          | 1.000                 \n"
    "SoC-A | cohmeleon         | 0.800          | 0.500                 \n"
    "SoC-B | fixed-non-coh-dma | 1.000          | 1.000                 \n"
    "SoC-B | cohmeleon         | 0.500          | 0.250                 "
)


def test_report_socs_golden():
    """report_socs renders the canned comparison byte-for-byte."""
    result = SocComparisonResult(points=canned_points(), evaluations={})
    assert report_socs(result) == GOLDEN_SOCS


GOLDEN_HEADLINE = (
    "Section 6 — headline summary\n"
    "metric                                                  | value  \n"
    "--------------------------------------------------------+--------\n"
    "average speedup vs fixed policies (%)                   | 62.500 \n"
    "average off-chip access reduction vs fixed policies (%) | 62.500 \n"
    "execution time vs manual heuristic (ratio)              | 0.667  \n"
    "off-chip accesses vs manual heuristic (ratio)           | 0.456  \n"
    "speedup on SoC-A (%)                                    | 25.000 \n"
    "speedup on SoC-B (%)                                    | 100.000"
)


def test_report_headline_golden():
    """report_headline renders a canned summary byte-for-byte."""
    summary = HeadlineSummary(
        speedup_vs_fixed=0.625,
        mem_reduction_vs_fixed=0.625,
        exec_vs_manual=0.6666666,
        mem_vs_manual=0.4564355,
        per_soc_speedup={"SoC-A": 0.25, "SoC-B": 1.0},
        per_soc_mem_reduction={"SoC-A": 0.5, "SoC-B": 0.75},
    )
    assert report_headline(summary) == GOLDEN_HEADLINE


GOLDEN_MAPPING = (
    "demo\n"
    "key | value\n"
    "----+------\n"
    "a   | 1.500\n"
    "b   | 2.000"
)


def test_report_mapping_golden():
    """The generic two-column report sorts keys and formats floats."""
    assert report_mapping("demo", {"b": 2.0, "a": 1.5}) == GOLDEN_MAPPING


# ----------------------------------------------------------------------
# Headline aggregation
# ----------------------------------------------------------------------

def test_summarize_headline_hand_computed():
    """The headline numbers match a hand-computed canned comparison."""
    points = canned_points() + [
        SocComparisonPoint("SoC-A", "manual", 0.9, 0.6),
        SocComparisonPoint("SoC-B", "manual", 1.0, 1.0),
    ]
    summary = summarize_headline(SocComparisonResult(points=points, evaluations={}))
    # Per SoC: geomean speedup over the only fixed policy present.
    assert summary.per_soc_speedup["SoC-A"] == pytest.approx(1.0 / 0.8 - 1.0)
    assert summary.per_soc_speedup["SoC-B"] == pytest.approx(1.0)
    assert summary.speedup_vs_fixed == pytest.approx((0.25 + 1.0) / 2.0)
    assert summary.per_soc_mem_reduction == pytest.approx({"SoC-A": 0.5, "SoC-B": 0.75})
    assert summary.mem_reduction_vs_fixed == pytest.approx(0.625)
    # Against the manual heuristic: geometric means of the per-SoC ratios.
    assert summary.exec_vs_manual == pytest.approx(math.sqrt((0.8 / 0.9) * 0.5))
    assert summary.mem_vs_manual == pytest.approx(math.sqrt((0.5 / 0.6) * 0.25))


def test_summarize_headline_requires_points():
    """An empty comparison is an explicit error, not NaNs."""
    with pytest.raises(ExperimentError):
        summarize_headline(SocComparisonResult(points=[], evaluations={}))


def test_summarize_headline_requires_subject_policy():
    """A SoC without the subject policy's point is an explicit error."""
    points = [SocComparisonPoint("SoC-A", "fixed-non-coh-dma", 1.0, 1.0)]
    with pytest.raises(ExperimentError):
        summarize_headline(SocComparisonResult(points=points, evaluations={}))
