"""Shared helpers for the serving test modules.

Builds small deterministic trained-policy artifacts without running any
simulation (seeded direct Q-table updates), plus the in-process
server-and-client scaffolding the serving tests drive.  Not a test module
itself (no ``test_`` prefix, so pytest never collects it).
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies import CohmeleonPolicy
from repro.core.state import NUM_STATES
from repro.models.artifact import PolicyArtifact, build_provenance
from repro.models.registry import ModelRegistry
from repro.serving.http import ServingServer
from repro.serving.service import PolicyService
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.utils.rng import SeededRNG


def make_artifact(
    name: str = "served",
    seed: int = 11,
    updates: int = 500,
    bias_mode: Optional[CoherenceMode] = None,
) -> PolicyArtifact:
    """Build a deterministic trained artifact without simulating anything.

    With ``bias_mode`` the table is constructed so that **every** state's
    greedy decision is that mode (its Q-value is set to 1.0 everywhere,
    all others stay 0.0) — two artifacts biased to different modes give
    fully distinguishable decision vectors, which is what the torn-model
    tests need.  Otherwise the table is filled with ``updates`` seeded
    random updates.
    """
    policy = CohmeleonPolicy(rng=SeededRNG(seed))
    table = policy.agent.qtable
    if bias_mode is not None:
        for state in range(NUM_STATES):
            table.update(state, bias_mode, 1.0, 1.0)
    else:
        rng = SeededRNG(seed * 1000 + 13)
        for _ in range(updates):
            table.update(
                rng.randint(0, NUM_STATES - 1),
                COHERENCE_MODES[rng.randint(0, len(COHERENCE_MODES) - 1)],
                rng.uniform(-1.0, 1.0),
                0.1,
            )
    policy.freeze()
    return PolicyArtifact.from_policy(
        policy, name, build_provenance("toy-scenario", "0" * 64, seed, 0)
    )


def make_registry(root, artifact: Optional[PolicyArtifact] = None) -> ModelRegistry:
    """A registry rooted at ``root`` holding ``artifact`` (built if omitted)."""
    registry = ModelRegistry(root)
    registry.root.mkdir(parents=True, exist_ok=True)
    registry.save(artifact if artifact is not None else make_artifact())
    return registry


def make_service(
    registry: ModelRegistry, name: str = "served", **kwargs
) -> PolicyService:
    """A :class:`PolicyService` over ``registry`` (kwargs pass through)."""
    return PolicyService(registry, name, **kwargs)


def make_server(service: PolicyService, reload_interval: float = 0.0) -> ServingServer:
    """An unstarted loopback server (ephemeral port) over ``service``."""
    return ServingServer(service, reload_interval=reload_interval)
