"""Property-based tests (hypothesis) for the core data structures.

These check structural invariants that must hold for *any* input: cache
capacity and LRU behaviour, allocator segment consistency, Q-table update
contraction, reward boundedness, state-index bijectivity, and the
discrete-event engine's time monotonicity.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qtable import QTable
from repro.core.reward import RewardTracker, RewardWeights
from repro.core.state import NUM_STATES, CoherenceState
from repro.sim.engine import Engine
from repro.sim.resources import BandwidthResource
from repro.soc.address import AddressMap, Allocator
from repro.soc.cache import SetAssociativeCache
from repro.soc.coherence import COHERENCE_MODES
from repro.units import MB

from tests.test_state_reward import make_result


# ----------------------------------------------------------------------
# Cache invariants
# ----------------------------------------------------------------------

@st.composite
def cache_and_accesses(draw):
    size = draw(st.sampled_from([1024, 4096, 16384]))
    ways = draw(st.sampled_from([1, 2, 4, 8]))
    accesses = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 20),
                st.booleans(),
            ),
            min_size=1,
            max_size=200,
        )
    )
    return size, ways, accesses


@given(cache_and_accesses())
@settings(max_examples=60, deadline=None)
def test_cache_never_exceeds_capacity_and_counts_are_consistent(data):
    size, ways, accesses = data
    cache = SetAssociativeCache("prop", size_bytes=size, line_bytes=64, ways=ways)
    capacity_lines = cache.num_sets * cache.ways
    for address, write in accesses:
        cache.access_line(address, write=write)
        assert cache.valid_lines() <= capacity_lines
        assert cache.dirty_lines() <= cache.valid_lines()
    assert cache.stats.hits + cache.stats.misses == len(accesses)


@given(cache_and_accesses())
@settings(max_examples=40, deadline=None)
def test_cache_flush_removes_everything_and_reports_dirty_lines(data):
    size, ways, accesses = data
    cache = SetAssociativeCache("prop", size_bytes=size, line_bytes=64, ways=ways)
    for address, write in accesses:
        cache.access_line(address, write=write)
    dirty_before = cache.dirty_lines()
    valid_before = cache.valid_lines()
    writebacks, invalidations = cache.flush_all()
    assert writebacks == dirty_before
    assert invalidations == valid_before
    assert cache.valid_lines() == 0


@given(
    st.integers(min_value=0, max_value=1 << 18),
    st.integers(min_value=1, max_value=8192),
)
@settings(max_examples=60, deadline=None)
def test_access_range_touches_exactly_the_covered_lines(start, nbytes):
    cache = SetAssociativeCache("prop", size_bytes=64 * 1024, line_bytes=64, ways=8)
    result = cache.access_range(start, nbytes, write=False)
    first_line = (start // 64) * 64
    last_line = ((start + nbytes - 1) // 64) * 64
    expected_lines = (last_line - first_line) // 64 + 1
    assert result.lines == expected_lines
    assert result.hits + result.misses == result.lines


# ----------------------------------------------------------------------
# Allocator invariants
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=3 * MB), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_allocator_segments_are_disjoint_and_cover_requested_size(sizes):
    allocator = Allocator(AddressMap(num_mem_tiles=4, partition_bytes=64 * MB))
    intervals = []
    for index, size in enumerate(sizes):
        buffer = allocator.allocate(size, name=f"b{index}")
        assert sum(segment.size for segment in buffer.segments) >= buffer.size
        for segment in buffer.segments:
            assert 0 <= segment.mem_tile < 4
            intervals.append((segment.start, segment.end))
    intervals.sort()
    for (start_a, end_a), (start_b, end_b) in zip(intervals, intervals[1:]):
        assert end_a <= start_b, "allocated segments overlap"


@given(
    st.integers(min_value=1, max_value=2 * MB),
    st.integers(min_value=0, max_value=2 * MB),
    st.integers(min_value=1, max_value=2 * MB),
)
@settings(max_examples=60, deadline=None)
def test_buffer_slice_preserves_size_and_bounds(buffer_size, offset, length):
    allocator = Allocator(AddressMap(num_mem_tiles=2, partition_bytes=64 * MB))
    buffer = allocator.allocate(buffer_size)
    offset = min(offset, buffer.size - 1)
    length = min(length, buffer.size - offset)
    if length <= 0:
        return
    segments = buffer.slice(offset, length)
    assert sum(segment.size for segment in segments) == length
    allowed = {(s.start, s.end) for s in buffer.segments}
    for segment in segments:
        assert any(start <= segment.start and segment.end <= end for start, end in allowed)


# ----------------------------------------------------------------------
# Q-table and reward invariants
# ----------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=NUM_STATES - 1),
            st.sampled_from(list(COHERENCE_MODES)),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_qtable_values_stay_within_reward_bounds(updates):
    table = QTable()
    for state, mode, reward, alpha in updates:
        table.update(state, mode, reward, alpha)
    values = table.values
    assert values.min() >= 0.0
    assert values.max() <= 1.0


@given(st.integers(min_value=0, max_value=NUM_STATES - 1))
@settings(max_examples=100, deadline=None)
def test_state_index_bijection(index):
    state = CoherenceState.from_index(index)
    assert state.index == index
    assert all(0 <= value <= 2 for value in state.as_tuple())


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=1e7, allow_nan=False),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        ),
        min_size=1,
        max_size=50,
    ),
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    ),
)
@settings(max_examples=50, deadline=None)
def test_reward_is_always_in_unit_interval(observations, raw_weights):
    exec_w, comm_w, mem_w = raw_weights
    if exec_w + comm_w + mem_w == 0.0:
        exec_w = 1.0
    tracker = RewardTracker(RewardWeights(exec_w, comm_w, mem_w))
    for cycles, comm_ratio, mem in observations:
        components = tracker.evaluate(
            make_result(cycles=cycles, comm=comm_ratio, mem=mem)
        )
        assert 0.0 <= components.r_exec <= 1.0 + 1e-9
        assert 0.0 <= components.r_comm <= 1.0 + 1e-9
        assert -1e-9 <= components.r_mem <= 1.0 + 1e-9
        assert -1e-9 <= components.total <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# Engine and resource invariants
# ----------------------------------------------------------------------

@given(
    st.lists(
        st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=10),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=50, deadline=None)
def test_engine_time_is_monotone_and_all_processes_finish(delay_lists):
    engine = Engine()
    observed = []

    def proc(delays):
        for delay in delays:
            now = yield delay
            observed.append(now)

    for index, delays in enumerate(delay_lists):
        engine.spawn(f"p{index}", proc(delays))
    engine.run()
    assert engine.all_finished()
    assert observed == sorted(observed)
    assert engine.now >= max(sum(delays) for delays in delay_lists) - 1e-9


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            st.integers(min_value=0, max_value=100_000),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_resource_completions_never_precede_requests(requests):
    resource = BandwidthResource("prop", bytes_per_cycle=4.0, latency=10.0)
    previous_finish = 0.0
    for now, nbytes in sorted(requests, key=lambda item: item[0]):
        finish = resource.serve(now, nbytes)
        assert finish >= now + 10.0 - 1e-9
        assert finish >= previous_finish - 1e-9
        previous_finish = finish
