"""Differential tests: the vectorized core is bit-identical to the reference.

Every test here runs the same experiment under ``REPRO_CORE_BACKEND=
reference`` and ``=vectorized`` (via ``tests/differential.py``) and
asserts the observable results are *equal* — Q-tables entry-for-entry and
serialisation-for-serialisation, engine schedules event-for-event, cache
contents in recency order, scenario sweeps payload-digest-for-payload-
digest, and perf benchmarks checksum-for-checksum.  Randomised inputs
come from hypothesis (episode schedules, engine plans, cache op
sequences) and from the PR 6 procedural scenario generator, so the
contract is exercised far outside the committed grids.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from differential import (
    assert_backends_agree,
    cache_state,
    payload_digest,
    run_on_backends,
)
from repro.core.agent import AgentConfig, QLearningAgent
from repro.core.qtable import QTable
from repro.core.state import NUM_STATES
from repro.experiments.socs import run_soc_comparison
from repro.experiments.sweep import ResultCache, SweepRunner
from repro.perf.bench import run_benchmark
from repro.scenarios.generate import (
    GenerationSpec,
    TopologySpec,
    WorkloadSpec,
    generate_scenario,
)
from repro.scenarios.run import run_scenario
from repro.sim.engine import Engine, ResumeAt
from repro.soc.cache import SetAssociativeCache
from repro.soc.coherence import COHERENCE_MODES
from repro.utils.backend import CORE_BACKENDS
from repro.utils.rng import SeededRNG

# ----------------------------------------------------------------------
# Q-table / agent episodes
# ----------------------------------------------------------------------

#: One TD update: (state, mode index, reward, alpha).
update_strategy = st.tuples(
    st.integers(min_value=0, max_value=NUM_STATES - 1),
    st.integers(min_value=0, max_value=len(COHERENCE_MODES) - 1),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False),
)

episode_strategy = st.lists(update_strategy, min_size=1, max_size=120)


def _train_table(episode):
    """Apply an update episode to a fresh table; return its serialisation."""
    table = QTable()
    for state, mode_idx, reward, alpha in episode:
        table.update(state, COHERENCE_MODES[mode_idx], reward, alpha)
    return table.to_dict()


class TestQTableDifferential:
    """Training episodes produce identical tables on both backends."""

    @given(episode=episode_strategy)
    @settings(max_examples=60, deadline=None)
    def test_update_episode_serialises_identically(self, episode):
        assert_backends_agree(lambda: _train_table(episode))

    @given(episode=episode_strategy)
    @settings(max_examples=60, deadline=None)
    def test_batched_updates_match_per_step(self, episode):
        # Satellite contract: update_batch replays the exact per-step
        # recurrence in arrival order on EVERY backend — a reordered or
        # algebraically folded batch would change float rounding and fail.
        def batched_equals_stepped():
            stepped = _train_table(episode)
            table = QTable()
            table.update_batch(
                [state for state, _, _, _ in episode],
                [COHERENCE_MODES[mode_idx] for _, mode_idx, _, _ in episode],
                [reward for _, _, reward, _ in episode],
                [alpha for _, _, _, alpha in episode],
            )
            assert table.to_dict() == stepped
            return stepped

        assert_backends_agree(batched_equals_stepped)

    @given(episode=episode_strategy)
    @settings(max_examples=60, deadline=None)
    def test_greedy_decisions_and_tie_draws_agree(self, episode):
        # The tie rule consumes RNG draws, so agreement must cover both the
        # chosen modes and the exact post-decision RNG state.
        def decide_everywhere():
            table = QTable.from_dict(_train_table(episode))
            rng = SeededRNG(11)
            choices = [table.best_mode(state, rng=rng).label for state in range(NUM_STATES)]
            batch = [mode.label for mode in table.best_modes(list(range(NUM_STATES)))]
            deterministic = [table.best_mode(state).label for state in range(NUM_STATES)]
            assert batch == deterministic
            return {"choices": choices, "batch": batch, "rng": rng.export_state()}

        assert_backends_agree(decide_everywhere)

    @given(
        episode=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=NUM_STATES - 1),
                st.floats(
                    min_value=-10.0, max_value=10.0,
                    allow_nan=False, allow_infinity=False,
                ),
            ),
            min_size=1,
            max_size=80,
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_agent_episode_with_exploration_agrees(self, episode, seed):
        # Full epsilon-greedy loop: exploration draws, tie draws, decayed
        # updates — the exact path CohmeleonPolicy drives in a simulation.
        def run_agent():
            agent = QLearningAgent(AgentConfig(), rng=SeededRNG(seed))
            total = len(episode)
            for step, (state, reward) in enumerate(episode):
                agent.set_training_progress(step / total)
                mode = agent.select_action(state)
                agent.update(state, mode, reward)
            return {
                "table": agent.qtable.to_dict(),
                "summary": agent.summary(),
                "rng": agent.rng.export_state(),
            }

        assert_backends_agree(run_agent, digest=True)


# ----------------------------------------------------------------------
# Engine schedules
# ----------------------------------------------------------------------

#: One process step: ("delay", d) yields a relative delay, ("at", d) an
#: absolute ResumeAt d cycles past the process's current time (the same
#: scripted-process idiom as tests/test_engine.py).
step_strategy = st.tuples(
    st.sampled_from(["delay", "at"]),
    st.integers(min_value=0, max_value=40),
)

plans_strategy = st.lists(
    st.lists(step_strategy, min_size=1, max_size=6), min_size=1, max_size=6
)


def _scripted_process(log, tag, steps):
    """Replay ``steps``, logging ``(tag, resume time)`` after each yield."""
    now = 0.0
    for kind, value in steps:
        if kind == "delay":
            now = yield value
        else:
            now = yield ResumeAt(now + value)
        log.append((tag, now))


def _run_plans(plans, cuts=()):
    """Run scripted plans (optionally chunked at ``cuts``); return the trace."""
    engine = Engine()
    log = []
    for index, steps in enumerate(plans):
        engine.spawn(f"p{index}", _scripted_process(log, f"p{index}", steps))
    for cut in sorted(cuts):
        engine.run(until=cut)
    engine.run()
    return {
        "log": log,
        "now": engine.now,
        "events": engine.events_processed,
        "finished": engine.all_finished(),
    }


class TestEngineDifferential:
    """The cohort loop replays the reference loop's schedule exactly."""

    @given(plans=plans_strategy)
    @settings(max_examples=60, deadline=None)
    def test_plans_replay_identically(self, plans):
        assert_backends_agree(lambda: _run_plans(plans))

    @given(
        plans=plans_strategy,
        cuts=st.lists(st.integers(min_value=0, max_value=250), max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunked_runs_replay_identically(self, plans, cuts):
        # run(until=) pushes the first too-late event back with its original
        # sequence number; the cohort loop must preserve that tie-order
        # contract across pauses exactly like the reference loop.
        assert_backends_agree(lambda: _run_plans(plans, cuts))

    def test_zero_delay_rearms_join_the_live_cohort_in_order(self):
        # Processes that re-arm with `yield 0` stay at the current
        # timestamp: the cohort loop must execute them (in spawn order)
        # within the same drain, exactly as the reference pop-loop does.
        def run():
            engine = Engine()
            log = []

            def bouncer(tag, bounces):
                for bounce in range(bounces):
                    log.append((tag, bounce, engine.now))
                    yield 0
                yield 7
                log.append((tag, "done", engine.now))

            engine.spawn("a", bouncer("a", 3))
            engine.spawn("b", bouncer("b", 2))
            engine.run()
            return {"log": log, "events": engine.events_processed, "now": engine.now}

        result = assert_backends_agree(run)
        assert result["now"] == 7.0


# ----------------------------------------------------------------------
# Cache op sequences
# ----------------------------------------------------------------------

_LINE = 64
_SPAN = 256 * _LINE  # address window the ops draw from (thrashes 2-way sets)

_addr = st.integers(min_value=0, max_value=_SPAN)
_nbytes = st.integers(min_value=1, max_value=24 * _LINE)

cache_op_strategy = st.one_of(
    st.tuples(st.just("access_range"), _addr, _nbytes, st.booleans(), st.booleans()),
    st.tuples(st.just("access_line_run"), _addr, _nbytes, st.booleans()),
    st.tuples(
        st.just("access_lines"),
        st.lists(
            _addr.map(lambda a: (a // _LINE) * _LINE), min_size=1, max_size=12
        ),
        st.booleans(),
    ),
    st.tuples(st.just("install_range"), _addr, _nbytes, st.booleans()),
    st.tuples(st.just("access_line"), _addr, st.booleans(), st.booleans()),
    st.tuples(st.just("flush_range"), _addr, _nbytes),
    st.tuples(st.just("invalidate_line"), _addr),
    st.tuples(st.just("flush_all")),
)


def _apply_cache_ops(ops):
    """Apply an op sequence to a small cache; return results + final state."""
    cache = SetAssociativeCache("diff", size_bytes=8 * 1024, line_bytes=_LINE, ways=2)
    outcomes = []
    for op in ops:
        kind = op[0]
        if kind == "access_range":
            result = cache.access_range(op[1], op[2], write=op[3], allocate=op[4])
            outcomes.append(
                (result.lines, result.hits, result.misses,
                 tuple(result.evicted_dirty), result.evicted_clean)
            )
        elif kind == "access_line_run":
            hits, misses, miss_lines, evicted_dirty = cache.access_line_run(
                op[1], op[2], write=op[3]
            )
            outcomes.append((hits, misses, tuple(miss_lines), tuple(evicted_dirty)))
        elif kind == "access_lines":
            outcomes.append(cache.access_lines(op[1], write=op[2]))
        elif kind == "install_range":
            outcomes.append(cache.install_range(op[1], op[2], dirty=op[3]))
        elif kind == "access_line":
            outcomes.append(cache.access_line(op[1], write=op[2], allocate=op[3]))
        elif kind == "flush_range":
            outcomes.append(cache.flush_range(op[1], op[2]))
        elif kind == "invalidate_line":
            outcomes.append(cache.invalidate_line(op[1]))
        else:
            outcomes.append(cache.flush_all())
    return {"outcomes": outcomes, "state": cache_state(cache)}


class TestCacheDifferential:
    """Cache walks agree on results, statistics, and eviction order."""

    @given(ops=st.lists(cache_op_strategy, min_size=1, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_op_sequences_agree(self, ops):
        assert_backends_agree(lambda: _apply_cache_ops(ops))

    def test_eviction_order_is_lru_in_walk_order(self):
        # Deterministic spot check: overfilling one set evicts the oldest
        # lines first, in walk order, on both backends.
        def run():
            cache = SetAssociativeCache("lru", 4 * _LINE, _LINE, ways=2)
            assert cache.num_sets == 2
            # Lines 0,2,4,6 map to set 0; fill, then overflow twice.
            for addr in (0, 2 * _LINE):
                cache.access_line(addr, write=True)
            result = cache.access_range(4 * _LINE, 4 * _LINE, write=False)
            return (tuple(result.evicted_dirty), result.evicted_clean,
                    cache_state(cache))

        evicted_dirty, _evicted_clean, _state = assert_backends_agree(run)
        assert evicted_dirty == (0, 2 * _LINE)


# ----------------------------------------------------------------------
# Generated scenarios and figure grids (end-to-end payload digests)
# ----------------------------------------------------------------------

def _generated_scenario(seed, tiles=(2, 2), phases=(1, 1)):
    """A milliseconds-fast generated scenario (PR 6 procedural generator)."""
    spec = GenerationSpec(
        name_prefix="diff",
        seed=seed,
        topology=TopologySpec(tiles=tiles, cpus=(1, 1), mem_tiles=(1, 1)),
        workload=WorkloadSpec(
            phases=phases, threads=(1, 2), chain=(1, 1), loops=(1, 1)
        ),
        training_iterations=1,
    )
    return generate_scenario(spec).scenario()


def _scenario_payload(scenario, runner=None):
    """Run a scenario and return its JSON payloads, keyed by policy."""
    result = run_scenario(
        scenario, policy_kinds=["fixed-non-coh-dma", "cohmeleon"], runner=runner
    )
    return {kind: ev.to_dict() for kind, ev in result.evaluations.items()}


class TestScenarioDifferential:
    """Generated-scenario sweeps are payload-digest-equal across backends."""

    @pytest.mark.parametrize("seed", [3, 17, 2026])
    def test_generated_scenario_digests_agree(self, seed):
        assert_backends_agree(
            lambda: _scenario_payload(_generated_scenario(seed)), digest=True
        )

    def test_core_and_execution_backends_commute(self, tmp_path):
        # The core backend must be invariant across sweep execution
        # backends too: serial and 2-worker thread runs, under each core
        # backend, all produce one payload digest.
        scenario = _generated_scenario(99)
        digests = set()
        for core in CORE_BACKENDS:
            serial = run_on_backends(lambda: _scenario_payload(scenario))[core]
            runner = SweepRunner(
                workers=2,
                backend="thread",
                cache=ResultCache(tmp_path / f"cache-{core}"),
            )
            threaded = run_on_backends(
                lambda: _scenario_payload(scenario, runner=runner)
            )[core]
            digests.add(payload_digest(serial))
            digests.add(payload_digest(threaded))
        assert len(digests) == 1

    @pytest.mark.slow
    def test_process_execution_backend_agrees(self, tmp_path):
        # Worker processes inherit REPRO_CORE_BACKEND from the environment
        # set by core_backend(); the digests must not move.
        scenario = _generated_scenario(7)

        def run_with_processes():
            runner = SweepRunner(workers=2, backend="process")
            return _scenario_payload(scenario, runner=runner)

        serial_digest = payload_digest(
            assert_backends_agree(lambda: _scenario_payload(scenario), digest=True)
        )
        process_digest = payload_digest(
            assert_backends_agree(run_with_processes, digest=True)
        )
        assert serial_digest == process_digest

    @pytest.mark.slow
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None)
    def test_random_generated_scenarios_agree(self, seed):
        # The nightly fleet: arbitrary generated scenarios, not just the
        # committed ones.
        assert_backends_agree(
            lambda: _scenario_payload(_generated_scenario(seed)), digest=True
        )


class TestFigureGridDifferential:
    """The quick figure grids and perf benchmarks agree across backends."""

    @pytest.mark.parametrize("name", ["engine_events", "qlearning_step"])
    def test_quick_benchmarks_checksum_agree(self, name):
        results = run_on_backends(lambda: run_benchmark(name, quick=True))
        work = {backend: result.work for backend, result in results.items()}
        checksums = {backend: result.checksum for backend, result in results.items()}
        assert len(set(work.values())) == 1, work
        assert len(set(checksums.values())) == 1, checksums

    @pytest.mark.slow
    def test_fig9_quick_grid_agrees(self):
        # The acceptance benchmark: a reduced Figure 9 sweep, end-to-end
        # through executor, datapath, caches, engine, and the Q-learning
        # policy, must be payload-digest-equal across backends.
        def run_grid():
            comparison = run_soc_comparison(
                labels=["SoC1", "SoC6"],
                policy_kinds=["fixed-non-coh-dma", "fixed-coh-dma", "cohmeleon"],
                training_iterations=1,
            )
            return {
                label: {kind: ev.to_dict() for kind, ev in by_kind.items()}
                for label, by_kind in comparison.evaluations.items()
            }

        assert_backends_agree(run_grid, digest=True)
