"""Round-trip and validation tests for the scenario TOML/JSON loader.

The same document loaded from TOML and from JSON must materialize
identically, and every malformed file must raise
:class:`ConfigurationError` naming the offending key.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.loader import load_scenario_file, load_scenario_mapping, parse_bytes
from repro.units import KB, MB

requires_toml = pytest.mark.skipif(
    sys.version_info < (3, 11), reason="tomllib needs Python >= 3.11"
)

#: A full-featured scenario document (the JSON/TOML round-trip subject).
DOCUMENT = {
    "scenario": {
        "name": "loader-demo",
        "title": "Loader demo",
        "description": "Round-trip subject.",
        "tags": ["demo"],
        "policies": ["fixed-non-coh-dma", "manual"],
        "seed": 5,
        "training_iterations": 1,
        "line_bytes": 256,
    },
    "soc": {"preset": "SoC1", "overrides": {"llc_partition_bytes": "128 KB"}},
    "accelerators": [
        {"name": "FFT", "count": 2},
        {
            "name": "Streamer",
            "traffic": {
                "access_pattern": "streaming",
                "burst_bytes": "4 KB",
                "compute_cycles_per_byte": 0.4,
            },
        },
    ],
    "application": {
        "phases": [
            {
                "name": "main",
                "threads": [
                    {"id": "t0", "chain": ["FFT", "Streamer"], "footprint": "96 KB", "loops": 2},
                    {"id": "t1", "chain": ["FFT"], "size_class": "L"},
                ],
            }
        ]
    },
}

TOML_TEXT = """
[scenario]
name = "loader-demo"
title = "Loader demo"
description = "Round-trip subject."
tags = ["demo"]
policies = ["fixed-non-coh-dma", "manual"]
seed = 5
training_iterations = 1
line_bytes = 256

[soc]
preset = "SoC1"
[soc.overrides]
llc_partition_bytes = "128 KB"

[[accelerators]]
name = "FFT"
count = 2

[[accelerators]]
name = "Streamer"
[accelerators.traffic]
access_pattern = "streaming"
burst_bytes = "4 KB"
compute_cycles_per_byte = 0.4

[[application.phases]]
name = "main"
[[application.phases.threads]]
id = "t0"
chain = ["FFT", "Streamer"]
footprint = "96 KB"
loops = 2
[[application.phases.threads]]
id = "t1"
chain = ["FFT"]
size_class = "L"
"""


def _strip_source(description):
    description = dict(description)
    description.pop("source")
    return description


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------

def test_mapping_loads_and_materializes():
    """The canonical document builds a runnable scenario."""
    scenario = load_scenario_mapping(DOCUMENT)
    assert scenario.name == "loader-demo"
    assert scenario.policy_kinds == ("fixed-non-coh-dma", "manual")
    assert scenario.default_seed == 5
    setup = scenario.build_setup()
    assert setup.soc_config.name == "SoC1"
    assert setup.soc_config.llc_partition_bytes == 128 * KB
    assert setup.soc_config.cache_line_bytes == 256  # [scenario].line_bytes
    assert [d.name for d in setup.accelerators] == ["FFT", "FFT", "Streamer"]
    train, test = scenario.applications(setup)
    assert train.name == "loader-demo-0"
    assert test.name == "loader-demo-1"
    # t0 has a concrete footprint; t1's size class resolves per instance.
    assert train.phases[0].threads[0].footprint_bytes == 96 * KB
    assert test.phases[0].threads[0].footprint_bytes == 96 * KB
    assert train.phases[0].threads[1].footprint_bytes != (
        test.phases[0].threads[1].footprint_bytes
    )


def test_json_file_round_trip(tmp_path):
    """Writing the document as JSON and loading it reproduces the mapping."""
    path = tmp_path / "demo.json"
    path.write_text(json.dumps(DOCUMENT))
    from_file = load_scenario_file(path)
    from_mapping = load_scenario_mapping(DOCUMENT)
    assert from_file.source == str(path)
    assert _strip_source(from_file.describe()) == _strip_source(from_mapping.describe())


@requires_toml
def test_toml_json_equivalence(tmp_path):
    """The TOML and JSON renderings of the document materialize identically."""
    toml_path = tmp_path / "demo.toml"
    toml_path.write_text(TOML_TEXT)
    json_path = tmp_path / "demo.json"
    json_path.write_text(json.dumps(DOCUMENT))
    toml_scenario = load_scenario_file(toml_path)
    json_scenario = load_scenario_file(json_path)
    assert _strip_source(toml_scenario.describe()) == _strip_source(
        json_scenario.describe()
    )


def test_loaded_scenario_is_deterministic():
    """Two loads of the same document build identical applications."""
    first = load_scenario_mapping(DOCUMENT)
    second = load_scenario_mapping(DOCUMENT)
    setup_a = first.build_setup()
    setup_b = second.build_setup()
    assert setup_a.soc_config == setup_b.soc_config
    assert first.applications(setup_a) == second.applications(setup_b)


def test_generator_application_variant(tmp_path):
    """A [application.generator] scenario produces generated instances."""
    document = {
        "scenario": {"name": "gen-demo", "policies": ["fixed-non-coh-dma"]},
        "soc": {"preset": "SoC2"},
        "accelerators": [{"name": "FFT"}, {"name": "GEMM"}, {"name": "SPMV"}],
        "application": {
            "generator": {"num_phases": 2, "min_threads": 2, "max_threads": 3}
        },
    }
    scenario = load_scenario_mapping(document)
    setup = scenario.build_setup()
    train, test = scenario.applications(setup)
    assert len(train.phases) == 2
    assert train != test
    names = {n for p in train.phases for t in p.threads for n in t.accelerator_chain}
    assert names <= {"FFT", "GEMM", "SPMV"}


def test_inline_soc_definition():
    """[soc] accepts a full inline platform instead of a preset."""
    document = {
        "scenario": {"name": "inline-soc"},
        "soc": {
            "accelerator_tiles": 2,
            "noc_rows": 3,
            "noc_cols": 3,
            "cpus": 1,
            "mem_tiles": 1,
            "llc_partition": "256 KB",
            "l2": "16 KB",
        },
        "accelerators": [{"name": "FFT"}, {"name": "GEMM"}],
        "application": {
            "phases": [
                {
                    "name": "p0",
                    "threads": [{"chain": ["FFT"], "footprint": 32 * KB}],
                }
            ]
        },
    }
    config = load_scenario_mapping(document).build_config()
    assert config.name == "inline-soc"
    assert config.num_accelerator_tiles == 2
    assert config.llc_partition_bytes == 256 * KB


# ----------------------------------------------------------------------
# parse_bytes
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "value,expected",
    [(4096, 4096), ("64 KB", 64 * KB), ("2MB", 2 * MB), ("1.5 KB", 1536), ("10", 10)],
)
def test_parse_bytes_accepts(value, expected):
    """Byte counts parse from ints and unit-suffixed strings."""
    assert parse_bytes(value, "test") == expected


@pytest.mark.parametrize("value", ["64 XB", "lots", None, 1.5, True, [64]])
def test_parse_bytes_rejects(value):
    """Malformed byte counts raise and name the key."""
    with pytest.raises(ConfigurationError, match="some.key"):
        parse_bytes(value, "some.key")


# ----------------------------------------------------------------------
# Bad documents: the error names the offending key
# ----------------------------------------------------------------------

def _mutate(**replacements):
    document = json.loads(json.dumps(DOCUMENT))  # deep copy
    for dotted, value in replacements.items():
        target = document
        *parents, last = dotted.split(".")
        for key in parents:
            target = target[key]
        if value is _DELETE:
            del target[last]
        else:
            target[last] = value
    return document


_DELETE = object()


@pytest.mark.parametrize(
    "mutation,expected_in_message",
    [
        ({"scenario.name": _DELETE}, "missing required key 'name'"),
        ({"scenario.bogus": 1}, "'bogus'"),
        ({"scenario.policies": ["warp-speed"]}, "warp-speed"),
        ({"scenario.seed": "seven"}, "[scenario].seed"),
        ({"soc.preset": "SoC99"}, "[soc].preset"),
        ({"soc.overrides": {"noc_diagonal": 1}}, "noc_diagonal"),
        ({"soc.overrides": {"llc_partition_bytes": "many"}}, "llc_partition_bytes"),
        ({"accelerators": []}, "at least one accelerator"),
        ({"accelerators": [{"name": "WarpDrive"}]}, "[[accelerators]][0].name"),
        ({"accelerators": [{"name": "FFT", "count": 0}]}, "count"),
        ({"application.phases": []}, "at least one phase"),
        (
            {"application.generator": {"num_phases": 1}},
            "exactly one of 'generator' or 'phases'",
        ),
    ],
)
def test_bad_documents_name_the_offending_key(mutation, expected_in_message):
    """Every schema violation raises ConfigurationError naming the key."""
    with pytest.raises(ConfigurationError) as excinfo:
        load_scenario_mapping(_mutate(**mutation))
    assert expected_in_message in str(excinfo.value)


def test_bad_thread_spec_both_footprint_and_size_class():
    """A thread cannot give both a footprint and a size class."""
    document = _mutate()
    document["application"]["phases"][0]["threads"][0]["size_class"] = "M"
    with pytest.raises(ConfigurationError, match="not both"):
        load_scenario_mapping(document)


def test_bad_thread_spec_unknown_size_class():
    """An unknown size class names the thread key."""
    document = _mutate()
    thread = document["application"]["phases"][0]["threads"][1]
    thread["size_class"] = "XXL"
    with pytest.raises(ConfigurationError, match="size_class"):
        load_scenario_mapping(document)


def test_bad_traffic_pattern_named():
    """An unknown traffic access pattern names the key."""
    document = _mutate()
    document["accelerators"][1]["traffic"]["access_pattern"] = "zigzag"
    with pytest.raises(ConfigurationError, match="access_pattern"):
        load_scenario_mapping(document)


# ----------------------------------------------------------------------
# Bad files
# ----------------------------------------------------------------------

def test_unsupported_extension(tmp_path):
    """Only .toml and .json files load."""
    path = tmp_path / "demo.yaml"
    path.write_text("scenario: {}")
    with pytest.raises(ConfigurationError, match="unsupported extension"):
        load_scenario_file(path)


def test_invalid_json_reports_the_file(tmp_path):
    """Syntactically invalid JSON raises with the file path."""
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ConfigurationError, match="broken.json"):
        load_scenario_file(path)


@requires_toml
def test_invalid_toml_reports_the_file(tmp_path):
    """Syntactically invalid TOML raises with the file path."""
    path = tmp_path / "broken.toml"
    path.write_text("[scenario\nname=")
    with pytest.raises(ConfigurationError, match="broken.toml"):
        load_scenario_file(path)


def test_missing_file(tmp_path):
    """A nonexistent path raises ConfigurationError, not OSError."""
    with pytest.raises(ConfigurationError, match="cannot read"):
        load_scenario_file(tmp_path / "nope.json")
