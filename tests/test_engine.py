"""Unit tests for the discrete-event engine.

The whole module runs once per core backend (reference pop-loop and
vectorized cohort loop, see the autouse fixture below), so every ordering
and resume invariant is asserted against both run loops.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine, ResumeAt


@pytest.fixture(autouse=True)
def _backend_matrix(core_backend_name):
    """Run every test in this module under each core backend."""


def delay_process(log, tag, delays):
    for delay in delays:
        now = yield delay
        log.append((tag, now))


class TestEngineBasics:
    def test_single_process_advances_time(self):
        engine = Engine()
        log = []
        engine.spawn("p", delay_process(log, "p", [5, 10]))
        engine.run()
        assert log == [("p", 5.0), ("p", 15.0)]
        assert engine.now == 15.0

    def test_processes_interleave_in_time_order(self):
        engine = Engine()
        log = []
        engine.spawn("slow", delay_process(log, "slow", [10]))
        engine.spawn("fast", delay_process(log, "fast", [3]))
        engine.run()
        assert [tag for tag, _ in log] == ["fast", "slow"]

    def test_start_delay_offsets_process(self):
        engine = Engine()
        log = []
        engine.spawn("late", delay_process(log, "late", [1]), start_delay=100)
        engine.run()
        assert log == [("late", 101.0)]

    def test_resume_at_absolute_time(self):
        engine = Engine()
        log = []

        def proc():
            now = yield ResumeAt(42.0)
            log.append(now)

        engine.spawn("abs", proc())
        engine.run()
        assert log == [42.0]

    def test_resume_at_in_past_is_clamped_or_rejected(self):
        engine = Engine()

        def proc():
            yield 10
            yield ResumeAt(5.0)

        engine.spawn("bad", proc())
        with pytest.raises(SimulationError):
            engine.run()

    def test_on_complete_callback_fires(self):
        engine = Engine()
        completed = []

        def proc():
            yield 1

        engine.spawn("p", proc(), on_complete=lambda process: completed.append(process.name))
        engine.run()
        assert completed == ["p"]

    def test_all_finished(self):
        engine = Engine()
        engine.spawn("p", delay_process([], "p", [1]))
        assert not engine.all_finished()
        engine.run()
        assert engine.all_finished()


class TestEngineErrors:
    def test_negative_delay_rejected(self):
        engine = Engine()

        def proc():
            yield -1

        engine.spawn("neg", proc())
        with pytest.raises(SimulationError):
            engine.run()

    def test_unsupported_yield_value_rejected(self):
        engine = Engine()

        def proc():
            yield "not a delay"

        engine.spawn("bad", proc())
        with pytest.raises(SimulationError):
            engine.run()

    def test_negative_start_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.spawn("p", delay_process([], "p", [1]), start_delay=-1)

    def test_event_budget_guards_against_livelock(self):
        engine = Engine()

        def forever():
            while True:
                yield 1

        engine.spawn("loop", forever())
        with pytest.raises(SimulationError):
            engine.run(max_events=100)


# ----------------------------------------------------------------------
# Property-based tests: event ordering under delay/ResumeAt mixes, and
# run(until=...) resume semantics.
# ----------------------------------------------------------------------

#: One process step: ("delay", d) yields a relative delay, ("at", d) yields
#: an absolute ResumeAt d cycles past the process's current time.  Both
#: resume the process exactly d cycles later, so its timeline is computable
#: independently of how the engine interleaves it with other processes.
step_strategy = st.tuples(
    st.sampled_from(["delay", "at"]),
    st.integers(min_value=0, max_value=50),
)

plans_strategy = st.lists(
    st.lists(step_strategy, min_size=1, max_size=6), min_size=1, max_size=6
)


def _scripted_process(log, tag, steps):
    now = 0.0
    for kind, value in steps:
        if kind == "delay":
            now = yield value
        else:
            now = yield ResumeAt(now + value)
        log.append((tag, now))


def _expected_times(steps):
    times, now = [], 0.0
    for _kind, value in steps:
        now += value
        times.append(now)
    return times


def _run_scripted(engine, plans):
    log = []
    for index, steps in enumerate(plans):
        engine.spawn(f"p{index}", _scripted_process(log, f"p{index}", steps))
    return log


class TestEngineOrderingProperties:
    @given(plans=plans_strategy)
    @settings(max_examples=80, deadline=None)
    def test_resumes_are_globally_time_ordered(self, plans):
        engine = Engine()
        log = _run_scripted(engine, plans)
        engine.run()
        times = [now for _tag, now in log]
        assert times == sorted(times)
        assert engine.all_finished()
        if times:
            assert engine.now == max(times)

    @given(plans=plans_strategy)
    @settings(max_examples=80, deadline=None)
    def test_each_process_follows_its_own_timeline(self, plans):
        # Delays and ResumeAt are interchangeable ways to move d cycles
        # forward, and interleaving with other processes never shifts a
        # process's resume times.
        engine = Engine()
        log = _run_scripted(engine, plans)
        engine.run()
        for index, steps in enumerate(plans):
            observed = [now for tag, now in log if tag == f"p{index}"]
            assert observed == _expected_times(steps)

    @given(
        plans=plans_strategy,
        cuts=st.lists(st.integers(min_value=0, max_value=320), max_size=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_chunked_run_until_matches_single_run(self, plans, cuts):
        # Pausing at arbitrary times with run(until=...) and resuming must
        # produce exactly the interleaving of an uninterrupted run().
        straight_engine = Engine()
        straight_log = _run_scripted(straight_engine, plans)
        straight_engine.run()

        chunked_engine = Engine()
        chunked_log = _run_scripted(chunked_engine, plans)
        for cut in sorted(cuts):
            chunked_engine.run(until=cut)
            assert chunked_engine.now <= max(cut, straight_engine.now)
        chunked_engine.run()

        assert chunked_log == straight_log
        assert chunked_engine.all_finished()
        assert chunked_engine.pending_events == 0


class TestEngineRunUntil:
    def test_run_until_pauses_and_resumes(self):
        engine = Engine()
        log = []
        engine.spawn("p", delay_process(log, "p", [10, 10]))
        engine.run(until=5)
        assert log == []
        assert engine.now == 5.0
        engine.run()
        assert [now for _, now in log] == [10.0, 20.0]

    def test_pending_events_counter(self):
        engine = Engine()
        engine.spawn("a", delay_process([], "a", [1]))
        engine.spawn("b", delay_process([], "b", [1]))
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0

    def test_yield_from_subgenerator_returns_value(self):
        engine = Engine()
        results = []

        def inner():
            yield 5
            return "done"

        def outer():
            value = yield from inner()
            results.append(value)

        engine.spawn("outer", outer())
        engine.run()
        assert results == ["done"]
