"""Tests for the experiment harnesses (scaled-down runs).

These tests exercise every figure/table harness end to end with reduced
parameters, checking both the plumbing (shapes, normalisation, reports) and
the paper's qualitative claims where they are cheap to verify.
"""

from __future__ import annotations

import pytest

from repro.accelerators.descriptor import AccessPattern
from repro.accelerators.library import accelerator_by_name
from repro.core.policies import CohmeleonPolicy, FixedPolicy
from repro.errors import ExperimentError
from repro.experiments import report
from repro.experiments.breakdown import (
    breakdown_from_invocations,
    run_breakdown_experiment,
    workload_size_distribution,
)
from repro.experiments.common import (
    STANDARD_POLICY_KINDS,
    ExperimentSetup,
    build_runtime,
    evaluate_policies,
    make_standard_policies,
    motivation_setup,
    traffic_setup,
)
from repro.experiments.isolation import (
    ISOLATION_SIZES,
    best_mode_per_workload,
    fixed_hetero_modes,
    measure_isolated,
    normalize_isolation,
    profile_accelerators,
    run_isolation_experiment,
)
from repro.experiments.overhead import overhead_table, run_overhead_experiment
from repro.experiments.parallel import (
    degradation_summary,
    normalize_parallel,
    parallel_setup,
    run_parallel_experiment,
)
from repro.experiments.phases import figure5_application, run_phase_analysis, training_application
from repro.experiments.reward_dse import run_reward_dse
from repro.experiments.socs import figure9_setup, run_soc_comparison
from repro.experiments.summary import summarize_headline
from repro.experiments.training import run_training_study
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.units import KB, MB
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec


@pytest.fixture(scope="module")
def quick_setup():
    """A small traffic-generator setup reused by several experiment tests."""
    return traffic_setup("SoC1", seed=5)


def quick_app(setup, threads=2, footprint=32 * KB, loops=1):
    names = [descriptor.name for descriptor in setup.accelerators]
    phase = PhaseSpec(
        name="quick",
        threads=tuple(
            ThreadSpec(
                thread_id=f"t{i}",
                accelerator_chain=(names[i % len(names)],),
                footprint_bytes=footprint,
                loop_count=loops,
            )
            for i in range(threads)
        ),
    )
    return ApplicationSpec(name="quick-app", phases=(phase,))


class TestCommon:
    def test_setup_validation(self, quick_setup):
        with pytest.raises(ExperimentError):
            ExperimentSetup(
                name="bad",
                soc_config=quick_setup.soc_config,
                accelerators=[],
            )

    def test_build_runtime_binds_all(self, quick_setup):
        soc, runtime = build_runtime(quick_setup, FixedPolicy(CoherenceMode.COH_DMA))
        assert len(runtime.bindings) == len(quick_setup.accelerators)

    def test_make_standard_policies_order_and_names(self):
        policies = make_standard_policies(STANDARD_POLICY_KINDS, seed=0)
        assert list(policies) == list(STANDARD_POLICY_KINDS)

    def test_traffic_setup_pattern_restriction(self):
        setup = traffic_setup("SoC1", pattern=AccessPattern.STREAMING, seed=1)
        assert all(
            descriptor.access_pattern is AccessPattern.STREAMING
            for descriptor in setup.accelerators
        )

    def test_motivation_setup_uses_full_library(self):
        setup = motivation_setup()
        assert len(setup.accelerators) == 12

    def test_evaluate_policies_trains_cohmeleon(self, quick_setup):
        policies = {
            "fixed-non-coh-dma": FixedPolicy(CoherenceMode.NON_COH_DMA),
            "cohmeleon": CohmeleonPolicy(),
        }
        test_app = quick_app(quick_setup)
        train_app = quick_app(quick_setup, threads=3)
        evaluations = evaluate_policies(
            quick_setup, policies, test_app, training_app=train_app, training_iterations=2
        )
        assert evaluations["cohmeleon"].training_results
        assert not evaluations["cohmeleon"].result.invocations == []
        # Evaluation runs on a copy: the caller's policy keeps its initial
        # exploration schedule instead of coming back frozen.
        assert policies["cohmeleon"].agent.epsilon > 0.0
        assert policies["cohmeleon"].agent.learning_enabled

    def test_evaluate_policies_calls_are_independent(self, quick_setup):
        # Regression test: evaluate_policies used to train/freeze/clear the
        # caller's CohmeleonPolicy object in place, so a second evaluation of
        # the same spec started from the first one's learned state.  Two
        # evaluations of the same spec must now produce identical results.
        policies = {
            "rand": make_standard_policies(("rand",), seed=3)["rand"],
            "cohmeleon": CohmeleonPolicy(),
        }
        test_app = quick_app(quick_setup)
        train_app = quick_app(quick_setup, threads=3)
        first = evaluate_policies(
            quick_setup, policies, test_app, training_app=train_app, training_iterations=2
        )
        second = evaluate_policies(
            quick_setup, policies, test_app, training_app=train_app, training_iterations=2
        )
        assert {name: ev.to_dict() for name, ev in first.items()} == {
            name: ev.to_dict() for name, ev in second.items()
        }


class TestIsolationExperiment:
    @pytest.fixture(scope="class")
    def measurements(self):
        setup = motivation_setup(line_bytes=256)
        accelerators = [accelerator_by_name("FFT"), accelerator_by_name("SPMV")]
        sizes = {"Small": 16 * KB, "Large": 2 * MB}
        return run_isolation_experiment(setup, accelerators=accelerators, sizes=sizes)

    def test_sweep_covers_all_combinations(self, measurements):
        assert len(measurements) == 2 * 2 * 4

    def test_isolation_sizes_match_paper(self):
        assert ISOLATION_SIZES["Small"] == 16 * KB
        assert ISOLATION_SIZES["Medium"] == 256 * KB
        assert ISOLATION_SIZES["Large"] == 4 * MB

    def test_normalisation_reference_is_one(self, measurements):
        table = normalize_isolation(measurements)
        for row in table.values():
            assert row["non-coh-dma"]["exec"] == pytest.approx(1.0)

    def test_warm_small_workloads_have_zero_offchip_in_cached_modes(self, measurements):
        table = normalize_isolation(measurements)
        for (accelerator, size), row in table.items():
            if size == "Small":
                assert row["coh-dma"]["mem"] == pytest.approx(0.0)
                assert row["llc-coh-dma"]["mem"] == pytest.approx(0.0)

    def test_cached_modes_faster_for_warm_small_workloads(self, measurements):
        # For warm Small workloads the best cache-using mode beats the
        # non-coherent mode, which pays flushes and off-chip round trips.
        table = normalize_isolation(measurements)
        for (accelerator, size), row in table.items():
            if size == "Small":
                best_cached = min(
                    row["llc-coh-dma"]["exec"],
                    row["coh-dma"]["exec"],
                    row["full-coh"]["exec"],
                )
                assert best_cached < 1.0

    def test_best_mode_varies_with_workload(self, measurements):
        best = best_mode_per_workload(measurements)
        assert len(set(best.values())) >= 2

    def test_measure_isolated_rejects_bad_footprint(self):
        setup = motivation_setup(line_bytes=256)
        with pytest.raises(ExperimentError):
            measure_isolated(setup, accelerator_by_name("FFT"), 0, CoherenceMode.COH_DMA)

    def test_report_renders(self, measurements):
        text = report.report_isolation(measurements)
        assert "Figure 2" in text and "non-coh-dma time" in text


class TestProfiling:
    def test_fixed_hetero_modes_cover_all_accelerators(self):
        setup = motivation_setup(
            accelerators=[accelerator_by_name("FFT"), accelerator_by_name("GEMM")],
            line_bytes=256,
        )
        modes = fixed_hetero_modes(setup)
        assert set(modes) == {"FFT", "GEMM"}
        assert all(mode in COHERENCE_MODES for mode in modes.values())

    def test_profile_entries_have_positive_measurements(self):
        setup = motivation_setup(
            accelerators=[accelerator_by_name("Sort")], line_bytes=256
        )
        profile = profile_accelerators(setup, footprints=[16 * KB, 256 * KB])
        assert all(entry.total_cycles > 0 for entry in profile)
        assert len(profile) == 2 * 4


class TestParallelExperiment:
    @pytest.fixture(scope="class")
    def measurements(self):
        return run_parallel_experiment(
            parallel_setup(line_bytes=256),
            counts=(1, 4, 12),
            invocations_per_thread=2,
        )

    def test_matrix_shape(self, measurements):
        assert len(measurements) == 3 * 4

    def test_normalisation_reference(self, measurements):
        table = normalize_parallel(measurements)
        assert table[1]["non-coh-dma"]["exec"] == pytest.approx(1.0)

    def test_execution_time_degrades_with_concurrency(self, measurements):
        table = normalize_parallel(measurements)
        for mode in COHERENCE_MODES:
            assert table[12][mode.label]["exec"] > table[1][mode.label]["exec"]

    def test_coherent_dma_degrades_more_than_non_coherent(self, measurements):
        summary = degradation_summary(measurements)
        assert summary["coh-dma"] > summary["non-coh-dma"]

    def test_cached_modes_have_zero_offchip_at_low_concurrency(self, measurements):
        table = normalize_parallel(measurements)
        assert table[1]["coh-dma"]["mem"] == pytest.approx(0.0)

    def test_missing_reference_raises(self, measurements):
        filtered = [m for m in measurements if m.active_accelerators != 1]
        with pytest.raises(ExperimentError):
            normalize_parallel(filtered)

    def test_report_renders(self, measurements):
        text = report.report_parallel(measurements)
        assert "Figure 3" in text


class TestPhaseAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self):
        setup = traffic_setup("SoC1", seed=7)
        return run_phase_analysis(
            setup=setup,
            policy_kinds=("fixed-non-coh-dma", "fixed-coh-dma", "manual", "cohmeleon"),
            training_iterations=2,
            loops_per_thread=1,
            seed=7,
        )

    def test_four_phases_reported(self, analysis):
        assert len(analysis.phase_names) == 4
        assert set(analysis.table) == set(analysis.phase_names)

    def test_reference_policy_normalised_to_one(self, analysis):
        for phase in analysis.phase_names:
            assert analysis.table[phase]["fixed-non-coh-dma"]["exec"] == pytest.approx(1.0)

    def test_all_policies_present_per_phase(self, analysis):
        for phase in analysis.phase_names:
            assert set(analysis.table[phase]) == {
                "fixed-non-coh-dma",
                "fixed-coh-dma",
                "manual",
                "cohmeleon",
            }

    def test_figure5_application_structure(self):
        setup = traffic_setup("SoC1", seed=7)
        app = figure5_application(setup, seed=7)
        thread_counts = [len(phase.threads) for phase in app.phases]
        assert thread_counts == [6, 3, 10, 4]

    def test_training_application_is_diverse(self):
        setup = traffic_setup("SoC1", seed=7)
        app = training_application(setup, seed=8)
        assert app.total_invocations >= 20

    def test_report_renders(self, analysis):
        text = report.report_phases(analysis)
        assert "Figure 5" in text


class TestRewardDse:
    def test_dse_produces_points_for_all_weightings(self, quick_setup):
        result = run_reward_dse(
            setup=quick_setup,
            weightings=((67.5, 7.5, 25.0), (2.5, 2.5, 95.0)),
            training_iterations=1,
            baseline_kinds=("fixed-non-coh-dma", "manual"),
            test_app=quick_app(quick_setup, threads=3),
            seed=9,
        )
        assert len(result.cohmeleon_points()) == 2
        assert len(result.baseline_points()) == 2
        assert result.pareto_front()
        text = report.report_reward_dse(result)
        assert "Figure 6" in text

    def test_empty_weightings_rejected(self, quick_setup):
        with pytest.raises(ExperimentError):
            run_reward_dse(setup=quick_setup, weightings=())


class TestBreakdown:
    def test_breakdown_frequencies_sum_to_one(self, quick_setup):
        result = run_breakdown_experiment(
            setup=quick_setup, training_iterations=1, seed=3
        )
        for breakdown in result.breakdowns.values():
            for frequencies in breakdown.frequencies.values():
                assert sum(frequencies.values()) == pytest.approx(1.0)
        assert "manual" in result.breakdowns and "cohmeleon" in result.breakdowns
        text = report.report_breakdown(result)
        assert "Figure 7" in text

    def test_breakdown_from_invocations_requires_data(self, quick_setup):
        with pytest.raises(ExperimentError):
            breakdown_from_invocations("p", [], quick_setup)

    def test_workload_size_distribution(self, quick_setup):
        soc, runtime = build_runtime(quick_setup, FixedPolicy(CoherenceMode.COH_DMA))
        from repro.workloads.runner import run_application

        result = run_application(soc, runtime, quick_app(quick_setup, threads=2))
        distribution = workload_size_distribution(result.invocations, quick_setup)
        assert sum(distribution.values()) == len(result.invocations)


class TestTrainingStudy:
    def test_curves_have_expected_lengths(self, quick_setup):
        result = run_training_study(
            setup=quick_setup,
            budgets=(2,),
            seed=5,
            test_app=quick_app(quick_setup, threads=2),
            train_app=quick_app(quick_setup, threads=3),
        )
        curve = result.curves[2]
        assert len(curve.points) == 3  # iteration 0 (untrained) + 2
        assert curve.initial_point().iteration == 0
        assert result.convergence_iteration(2) <= 2
        text = report.report_training(result)
        assert "Figure 8" in text

    def test_empty_budgets_rejected(self, quick_setup):
        with pytest.raises(ExperimentError):
            run_training_study(setup=quick_setup, budgets=())


class TestSocComparisonAndSummary:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_soc_comparison(
            labels=("SoC1", "SoC6"),
            policy_kinds=("fixed-non-coh-dma", "fixed-coh-dma", "manual", "cohmeleon"),
            training_iterations=1,
            seed=2,
        )

    def test_points_for_every_soc_and_policy(self, comparison):
        assert len(comparison.points) == 2 * 4
        assert set(comparison.for_soc("SoC1")) == {
            "fixed-non-coh-dma",
            "fixed-coh-dma",
            "manual",
            "cohmeleon",
        }

    def test_reference_normalised_to_one(self, comparison):
        for soc_label in ("SoC1", "SoC6"):
            point = comparison.for_soc(soc_label)["fixed-non-coh-dma"]
            assert point.norm_exec == pytest.approx(1.0)

    def test_summary_computes_headline_numbers(self, comparison):
        summary = summarize_headline(
            comparison, fixed_policies=("fixed-non-coh-dma", "fixed-coh-dma")
        )
        assert summary.per_soc_speedup
        assert -1.0 < summary.speedup_vs_fixed < 10.0
        assert 0.0 <= summary.mem_reduction_vs_fixed <= 1.0
        text = report.report_headline(summary)
        assert "headline" in text

    def test_figure9_setup_labels(self):
        assert figure9_setup("SoC0-Streaming").name.startswith("SoC0")
        assert figure9_setup("SoC5").name == "SoC5"
        with pytest.raises(ExperimentError):
            figure9_setup("SoC42")

    def test_report_renders(self, comparison):
        text = report.report_socs(comparison)
        assert "Figure 9" in text


class TestOverhead:
    def test_overhead_decreases_with_footprint(self):
        setup = motivation_setup(
            accelerators=[accelerator_by_name("FFT")], line_bytes=256
        )
        measurements = run_overhead_experiment(
            setup=setup,
            footprints=(16 * KB, 1 * MB),
            accelerators=[accelerator_by_name("FFT")],
            invocations_per_point=2,
        )
        assert measurements[0].overhead_fraction > measurements[-1].overhead_fraction
        table = overhead_table(measurements)
        assert "16KB" in table and "1MB" in table
        text = report.report_overhead(measurements)
        assert "overhead" in text.lower()

    def test_invalid_invocation_count(self):
        with pytest.raises(ExperimentError):
            run_overhead_experiment(invocations_per_point=0)
