"""Unit tests for the mesh NoC and the tile floorplanner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.soc.config import soc_preset
from repro.soc.noc import MeshNoC, TileCoordinate
from repro.soc.tiles import TileType, build_floorplan


class TestTileCoordinate:
    def test_manhattan_distance(self):
        assert TileCoordinate(0, 0).hops_to(TileCoordinate(2, 3)) == 5
        assert TileCoordinate(1, 1).hops_to(TileCoordinate(1, 1)) == 0


class TestMeshNoC:
    def make_noc(self):
        noc = MeshNoC(rows=3, cols=3, hop_cycles=1.0, link_bytes_per_cycle=8.0)
        noc.place_tile("acc0", TileCoordinate(1, 1))
        noc.place_tile("mem0", TileCoordinate(0, 0))
        noc.register_memory_tile(0, "mem0")
        return noc

    def test_hops_and_latency(self):
        noc = self.make_noc()
        assert noc.hops("acc0", "mem0") == 2
        assert noc.route_latency("acc0", "mem0") == pytest.approx(2.0)

    def test_transfer_charges_link_and_latency(self):
        noc = self.make_noc()
        finish = noc.transfer(0.0, "acc0", 0, "mem0", 80)
        assert finish == pytest.approx(80 / 8.0 + 2.0)

    def test_transfers_queue_on_shared_link(self):
        noc = self.make_noc()
        first = noc.transfer(0.0, "acc0", 0, "mem0", 800)
        second = noc.transfer(0.0, "acc0", 0, "mem0", 800)
        assert second > first

    def test_unplaced_tile_raises(self):
        noc = self.make_noc()
        with pytest.raises(ConfigurationError):
            noc.hops("ghost", "mem0")

    def test_unregistered_memory_tile_raises(self):
        noc = self.make_noc()
        with pytest.raises(ConfigurationError):
            noc.memory_link(3)

    def test_placement_outside_mesh_rejected(self):
        noc = MeshNoC(2, 2, 1.0, 4.0)
        with pytest.raises(ConfigurationError):
            noc.place_tile("far", TileCoordinate(5, 0))

    def test_link_stats_and_reset(self):
        noc = self.make_noc()
        noc.transfer(0.0, "acc0", 0, "mem0", 64)
        stats = noc.link_stats()
        assert stats[0]["requests"] == 1
        noc.reset()
        assert noc.link_stats()[0]["requests"] == 0

    def test_invalid_mesh_dimensions(self):
        with pytest.raises(ConfigurationError):
            MeshNoC(0, 3, 1.0, 1.0)


class TestFloorplan:
    def test_every_tile_gets_unique_position(self, tiny_config):
        tiles, by_name = build_floorplan(tiny_config)
        positions = [tile.position for tile in tiles]
        assert len(positions) == len(set(positions))
        assert set(by_name) == {tile.name for tile in tiles}

    def test_tile_counts_match_config(self, tiny_config):
        tiles, _ = build_floorplan(tiny_config)
        counts = {}
        for tile in tiles:
            counts[tile.tile_type] = counts.get(tile.tile_type, 0) + 1
        assert counts[TileType.ACCELERATOR] == tiny_config.num_accelerator_tiles
        assert counts[TileType.CPU] == tiny_config.num_cpus
        assert counts[TileType.MEMORY] == tiny_config.num_mem_tiles

    def test_cpu_tiles_have_private_caches(self, tiny_config):
        tiles, _ = build_floorplan(tiny_config)
        for tile in tiles:
            if tile.tile_type is TileType.CPU:
                assert tile.has_private_cache

    def test_soc3_cacheless_accelerators_reflected(self):
        config = soc_preset("SoC3")
        _, by_name = build_floorplan(config)
        assert not by_name["acc12"].has_private_cache
        assert by_name["acc0"].has_private_cache

    def test_all_presets_floorplan_without_conflict(self):
        for name in ("SoC0", "SoC1", "SoC2", "SoC3", "SoC4", "SoC5", "SoC6"):
            tiles, _ = build_floorplan(soc_preset(name))
            positions = [tile.position for tile in tiles]
            assert len(positions) == len(set(positions))
