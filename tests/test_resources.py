"""Unit tests for the shared-resource contention model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.resources import BandwidthResource


class TestServiceTime:
    def test_uncontended_service_time(self):
        resource = BandwidthResource("r", bytes_per_cycle=4.0, latency=10.0)
        assert resource.service_time(40) == pytest.approx(20.0)

    def test_zero_bytes_only_latency(self):
        resource = BandwidthResource("r", bytes_per_cycle=4.0, latency=7.0)
        assert resource.service_time(0) == pytest.approx(7.0)


class TestServe:
    def test_first_request_starts_immediately(self):
        resource = BandwidthResource("r", bytes_per_cycle=4.0, latency=0.0)
        finish = resource.serve(now=100.0, nbytes=400)
        assert finish == pytest.approx(200.0)

    def test_back_to_back_requests_queue(self):
        resource = BandwidthResource("r", bytes_per_cycle=4.0)
        first = resource.serve(0.0, 400)
        second = resource.serve(0.0, 400)
        assert second == pytest.approx(first + 100.0)

    def test_request_after_idle_does_not_queue(self):
        resource = BandwidthResource("r", bytes_per_cycle=4.0)
        resource.serve(0.0, 40)
        finish = resource.serve(1000.0, 40)
        assert finish == pytest.approx(1010.0)

    def test_extra_latency_delays_completion_not_pipeline(self):
        resource = BandwidthResource("r", bytes_per_cycle=4.0)
        first = resource.serve(0.0, 40, extra_latency=500.0)
        assert first == pytest.approx(510.0)
        # The pipeline frees at 10 cycles, so a second request is not pushed
        # behind the extra latency.
        second = resource.serve(0.0, 40)
        assert second == pytest.approx(20.0)

    def test_negative_bytes_rejected(self):
        resource = BandwidthResource("r", bytes_per_cycle=1.0)
        with pytest.raises(SimulationError):
            resource.serve(0.0, -1)

    def test_stats_accumulate(self):
        resource = BandwidthResource("r", bytes_per_cycle=2.0, latency=1.0)
        resource.serve(0.0, 10)
        resource.serve(0.0, 10)
        assert resource.stats.requests == 2
        assert resource.stats.bytes_served == 20
        assert resource.stats.queue_cycles > 0

    def test_utilization_bounded(self):
        resource = BandwidthResource("r", bytes_per_cycle=1.0)
        resource.serve(0.0, 100)
        assert 0.0 < resource.utilization(200.0) <= 1.0
        assert resource.utilization(0.0) == 0.0

    def test_reset_clears_state(self):
        resource = BandwidthResource("r", bytes_per_cycle=1.0)
        resource.serve(0.0, 100)
        resource.reset()
        assert resource.next_free == 0.0
        assert resource.stats.requests == 0


class TestValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthResource("bad", bytes_per_cycle=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthResource("bad", bytes_per_cycle=1.0, latency=-1.0)
