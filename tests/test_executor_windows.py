"""Property-based tests for the executor's stream-window helpers.

``_stream_windows`` splits an accelerator's virtual input/output stream into
per-iteration windows; ``_wrap_region`` maps a window of the (repeating)
virtual stream onto a finite buffer region.  The DMA traffic the executor
generates is exactly the union of these pieces, so their invariants — the
windows partition the stream, the wrap pieces cover exactly ``nbytes`` —
guarantee no byte is transferred twice or skipped.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.executor import InvocationExecutor, _stream_windows, _wrap_region


class TestStreamWindows:
    @given(
        total=st.integers(min_value=0, max_value=1 << 24),
        iterations=st.integers(min_value=1, max_value=2 * InvocationExecutor.MAX_ITERATIONS),
    )
    @settings(max_examples=200, deadline=None)
    def test_windows_partition_the_stream(self, total, iterations):
        windows = _stream_windows(total, iterations)
        assert len(windows) == iterations
        assert all(size >= 0 for _start, size in windows)
        assert sum(size for _start, size in windows) == total
        # Consecutive windows tile the stream without gaps or overlap.
        cursor = 0
        for start, size in windows:
            if size > 0:
                assert start == cursor
                cursor = start + size
        assert cursor == total

    @given(total=st.integers(min_value=1, max_value=1 << 24))
    @settings(max_examples=100, deadline=None)
    def test_single_iteration_is_the_whole_stream(self, total):
        assert _stream_windows(total, 1) == [(0, total)]

    @given(
        total=st.integers(min_value=0, max_value=1 << 20),
        iterations=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_window_sizes_are_balanced(self, total, iterations):
        # round()-based splitting keeps every window within one byte of the
        # ideal total/iterations share.
        windows = _stream_windows(total, iterations)
        ideal = total / iterations
        assert all(abs(size - ideal) <= 1.0 for _start, size in windows)


class TestWrapRegion:
    @given(
        offset=st.integers(min_value=0, max_value=1 << 24),
        nbytes=st.integers(min_value=1, max_value=1 << 20),
        region=st.integers(min_value=1, max_value=1 << 16),
    )
    @settings(max_examples=200, deadline=None)
    def test_pieces_cover_exactly_nbytes(self, offset, nbytes, region):
        pieces = _wrap_region(offset, nbytes, region)
        assert sum(size for _cursor, size in pieces) == nbytes
        assert all(size > 0 for _cursor, size in pieces)

    @given(
        offset=st.integers(min_value=0, max_value=1 << 24),
        nbytes=st.integers(min_value=1, max_value=1 << 20),
        region=st.integers(min_value=1, max_value=1 << 16),
    )
    @settings(max_examples=200, deadline=None)
    def test_pieces_stay_inside_the_region(self, offset, nbytes, region):
        pieces = _wrap_region(offset, nbytes, region)
        for cursor, size in pieces:
            assert 0 <= cursor < region
            assert cursor + size <= region

    @given(
        offset=st.integers(min_value=0, max_value=1 << 24),
        nbytes=st.integers(min_value=1, max_value=1 << 20),
        region=st.integers(min_value=1, max_value=1 << 16),
    )
    @settings(max_examples=200, deadline=None)
    def test_first_piece_starts_at_wrapped_offset_then_zero(self, offset, nbytes, region):
        pieces = _wrap_region(offset, nbytes, region)
        assert pieces[0][0] == offset % region
        # Every subsequent piece restarts at the region origin (the wrap).
        assert all(cursor == 0 for cursor, _size in pieces[1:])
        # Only the first and last pieces may be partial; middle pieces span
        # the whole region.
        assert all(size == region for _cursor, size in pieces[1:-1])

    @given(
        offset=st.integers(min_value=0, max_value=1 << 16),
        nbytes=st.integers(max_value=0, min_value=-(1 << 10)),
        region=st.integers(min_value=1, max_value=1 << 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_empty_window_yields_no_pieces(self, offset, nbytes, region):
        assert _wrap_region(offset, nbytes, region) == []

    def test_degenerate_region_yields_no_pieces(self):
        assert _wrap_region(5, 10, 0) == []
        assert _wrap_region(5, 10, -1) == []
