"""Unit tests for repro.units."""

from __future__ import annotations

import pytest

from repro.units import (
    CACHE_LINE_BYTES,
    GB,
    KB,
    MB,
    align_down,
    align_up,
    bytes_to_lines,
    human_bytes,
)


class TestConstants:
    def test_size_constants_are_consistent(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_cache_line_is_64_bytes(self):
        assert CACHE_LINE_BYTES == 64


class TestBytesToLines:
    def test_exact_multiple(self):
        assert bytes_to_lines(128, 64) == 2

    def test_rounds_up_partial_lines(self):
        assert bytes_to_lines(65, 64) == 2
        assert bytes_to_lines(1, 64) == 1

    def test_zero_and_negative_sizes(self):
        assert bytes_to_lines(0) == 0
        assert bytes_to_lines(-10) == 0

    def test_custom_line_size(self):
        assert bytes_to_lines(1024, 256) == 4


class TestAlignment:
    def test_align_up(self):
        assert align_up(100, 64) == 128
        assert align_up(128, 64) == 128
        assert align_up(0, 64) == 0

    def test_align_down(self):
        assert align_down(100, 64) == 64
        assert align_down(128, 64) == 128

    def test_alignment_must_be_positive(self):
        with pytest.raises(ValueError):
            align_up(10, 0)
        with pytest.raises(ValueError):
            align_down(10, -4)


class TestHumanBytes:
    def test_byte_range(self):
        assert human_bytes(512) == "512.0B"

    def test_kilobyte_range(self):
        assert human_bytes(16 * KB) == "16.0KB"

    def test_megabyte_range(self):
        assert human_bytes(4 * MB) == "4.0MB"

    def test_gigabyte_range(self):
        assert human_bytes(2 * GB) == "2.0GB"
