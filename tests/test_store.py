"""Tests of :mod:`repro.store` — the unified on-disk document read side.

One reader per format, one error taxonomy (:class:`DocumentError`), one
implementation of the manifest crash-tolerance rule.  The regression
spine here is the truncated-final-line case: a sweep killed mid-append
must leave a manifest that still loads — through the store reader *and*
through every legacy entry point that now delegates to it
(``SweepManifest.load``, ``merge-shards`` discovery).
"""

from __future__ import annotations

import hashlib
import json

import pytest

from serving_harness import make_artifact

from repro.errors import (
    ConfigurationError,
    DocumentError,
    ModelError,
    ReproError,
    SweepError,
)
from repro.experiments.sweep.manifest import SweepManifest
from repro.perf.report import load_report
from repro.store import (
    CacheEntry,
    canonical_digest,
    canonical_text,
    decode_jsonl_line,
    document_sha256,
    load_bench_report,
    load_cache_entry,
    load_model_artifact,
    load_sweep_manifest,
    load_transfer_matrix,
    read_document,
)
from repro.utils.host import host_metadata


def write_manifest(path, *, jobs=2, results=1, version=1, trailing=""):
    """Write a synthetic sweep manifest with ``results`` completions."""
    header = {
        "kind": "header",
        "version": version,
        "spec": "quick",
        "jobs": [
            {"key": f"job-{i}", "fingerprint": f"fp-{i}"} for i in range(jobs)
        ],
        "shard": None,
        "grid_digest": "recorded",
    }
    lines = [json.dumps(header)]
    for i in range(results):
        lines.append(
            json.dumps(
                {
                    "kind": "result",
                    "fingerprint": f"fp-{i}",
                    "key": f"job-{i}",
                    "digest": f"digest-{i}",
                }
            )
        )
    path.write_text("\n".join(lines) + "\n" + trailing)
    return path


# ----------------------------------------------------------------------
# Shared IO primitives
# ----------------------------------------------------------------------
class TestIo:
    """Canonical digests, raw-file digests, and the JSONL line rule."""

    def test_canonical_digest_is_order_invariant(self):
        assert canonical_digest({"a": 1, "b": 2}) == canonical_digest(
            {"b": 2, "a": 1}
        )
        assert canonical_text({"b": 2, "a": 1}) == '{"a":1,"b":2}'

    def test_document_sha256_is_the_raw_file_digest(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_bytes(b'{"x": 1}\n')
        assert document_sha256(path) == hashlib.sha256(b'{"x": 1}\n').hexdigest()

    def test_document_sha256_missing_file(self, tmp_path):
        with pytest.raises(DocumentError, match="cannot read document"):
            document_sha256(tmp_path / "ghost.json")

    def test_decode_jsonl_line_tolerates_garbage(self):
        assert decode_jsonl_line('{"kind": "result"}') == {"kind": "result"}
        assert decode_jsonl_line("") is None
        assert decode_jsonl_line("   ") is None
        assert decode_jsonl_line('{"kind": "resu') is None

    def test_read_document_errors_are_typed(self, tmp_path):
        with pytest.raises(DocumentError, match="does not exist"):
            read_document(tmp_path / "ghost.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(DocumentError, match="not valid JSON"):
            read_document(bad)


# ----------------------------------------------------------------------
# Sweep manifests (the crash-tolerance regression spine)
# ----------------------------------------------------------------------
class TestManifestReader:
    """The single implementation of the manifest trailing-line rule."""

    def test_loads_header_and_results(self, tmp_path):
        path = write_manifest(tmp_path / "m.manifest.jsonl", jobs=3, results=2)
        document = load_sweep_manifest(path)
        assert document.spec_name == "quick"
        assert document.completed == {"fp-0": "digest-0", "fp-1": "digest-1"}
        assert document.recorded_grid_digest == "recorded"
        assert document.progress() == {"total": 3, "completed": 2, "pending": 1}

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        """Regression: a sweep killed mid-append must not corrupt the run."""
        path = write_manifest(
            tmp_path / "m.manifest.jsonl",
            jobs=2,
            results=1,
            trailing='{"kind": "result", "fingerprint": "fp-1", "dig',
        )
        document = load_sweep_manifest(path)
        # The truncated record is dropped; everything before it survives.
        assert document.completed == {"fp-0": "digest-0"}
        assert document.progress()["pending"] == 1

    def test_legacy_entry_point_shares_the_rule(self, tmp_path):
        """``SweepManifest.load`` reads through the same store reader."""
        path = write_manifest(
            tmp_path / "m.manifest.jsonl",
            jobs=2,
            results=1,
            trailing='{"kind": "resu',
        )
        manifest = SweepManifest.load(path)
        assert manifest.completed == {"fp-0": "digest-0"}

    @pytest.mark.parametrize(
        "breakage, match",
        [
            (lambda p: p.write_text(""), "is empty"),
            (lambda p: p.write_text('{"kind": "x"}\n'), "header line"),
            (
                lambda p: write_manifest(p, version=99),
                "has version 99",
            ),
            (
                lambda p: p.write_text(
                    '{"kind": "header", "version": 1, "spec": "s"}\n'
                ),
                "malformed header",
            ),
        ],
    )
    def test_structural_failures_raise_document_error(
        self, tmp_path, breakage, match
    ):
        path = tmp_path / "m.manifest.jsonl"
        breakage(path)
        with pytest.raises(DocumentError, match=match):
            load_sweep_manifest(path)
        # ...and the legacy entry point maps them to the sweep domain
        # with the identical message.
        with pytest.raises(SweepError, match=match):
            SweepManifest.load(path)


# ----------------------------------------------------------------------
# Result-cache entries
# ----------------------------------------------------------------------
class TestCacheEntryReader:
    """The strict (accounting) reader over ResultCache entry files."""

    def test_round_trip_and_recomputed_digest(self, tmp_path):
        payload = {"metric": 1.5}
        entry_doc = {"fingerprint": "f" * 8, "key": "job-a", "payload": payload}
        path = tmp_path / f"{'f' * 8}.json"
        path.write_text(json.dumps(entry_doc))
        entry = load_cache_entry(path)
        assert isinstance(entry, CacheEntry)
        assert entry.key == "job-a"
        assert entry.digest == canonical_digest(payload)

    def test_fingerprint_filename_mismatch(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(
            json.dumps({"fingerprint": "f" * 8, "key": "a", "payload": {}})
        )
        with pytest.raises(DocumentError, match="does not match its filename"):
            load_cache_entry(path)

    def test_missing_payload_is_malformed(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"fingerprint": "x"}))
        with pytest.raises(DocumentError, match="no payload object"):
            load_cache_entry(path)


# ----------------------------------------------------------------------
# BENCH reports
# ----------------------------------------------------------------------
class TestBenchReader:
    """Schema gating shared with ``repro.perf.load_report``."""

    def test_valid_report_loads(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(
            json.dumps({"schema": "repro-perf/1", "benchmarks": {}})
        )
        assert load_bench_report(path)["schema"] == "repro-perf/1"

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": "other", "benchmarks": {}}))
        with pytest.raises(DocumentError, match="does not carry schema"):
            load_bench_report(path)

    def test_perf_load_report_delegates_with_identical_messages(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": "other", "benchmarks": {}}))
        with pytest.raises(DocumentError) as store_error:
            load_bench_report(path)
        with pytest.raises(ConfigurationError) as perf_error:
            load_report(path)
        assert str(perf_error.value) == str(store_error.value)


# ----------------------------------------------------------------------
# Model artifacts and transfer matrices
# ----------------------------------------------------------------------
class TestArtifactAndMatrixReaders:
    """The digest-gated artifact reader and the first matrix reader."""

    def test_model_error_is_a_document_error(self):
        assert issubclass(ModelError, DocumentError)
        assert issubclass(DocumentError, ReproError)

    def test_load_model_artifact_verifies_digest(self, tmp_path):
        artifact = make_artifact(name="toy")
        path = artifact.save(tmp_path / "toy.json")
        assert load_model_artifact(path).digest == artifact.digest
        tampered = json.loads(path.read_text())
        tampered["payload"]["provenance"]["seed"] = 424242
        path.write_text(json.dumps(tampered))
        with pytest.raises(DocumentError, match="digest"):
            load_model_artifact(path)

    def test_load_transfer_matrix_validates_format(self, tmp_path):
        good = tmp_path / "matrix.json"
        good.write_text(
            json.dumps(
                {
                    "format": "cohmeleon-transfer-matrix",
                    "version": 1,
                    "cells": [],
                }
            )
        )
        assert load_transfer_matrix(good)["cells"] == []
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "other", "version": 1}))
        with pytest.raises(DocumentError, match="not a transfer matrix"):
            load_transfer_matrix(bad)
        old = tmp_path / "old.json"
        old.write_text(
            json.dumps(
                {"format": "cohmeleon-transfer-matrix", "version": 99, "cells": []}
            )
        )
        with pytest.raises(DocumentError, match="version 99"):
            load_transfer_matrix(old)


# ----------------------------------------------------------------------
# Host metadata (the uniform BENCH host block)
# ----------------------------------------------------------------------
class TestHostMetadata:
    """Every BENCH writer stamps the same host block from one helper."""

    def test_fields_and_determinism(self):
        block = host_metadata()
        assert set(block) == {"cpu_count", "platform", "python", "repro_version"}
        assert block == host_metadata()

    def test_perf_reports_carry_the_block(self):
        from repro.perf.report import make_report

        report = make_report([], "quick")
        assert report["host"] == host_metadata()

    def test_load_reports_carry_the_block(self):
        from repro.serving.loadtest import LoadReport

        report = LoadReport(
            clients=1,
            requests_per_client=1,
            batch=1,
            seed=1,
            decisions=1,
            duration_s=1.0,
            decisions_per_s=1.0,
            latency_ms={"p50": 1.0},
        )
        assert report.to_dict()["host"] == host_metadata()
