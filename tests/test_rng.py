"""Unit tests for repro.utils.rng."""

from __future__ import annotations

import pytest

from repro.utils.rng import SeededRNG, derive_seed, optional_rng


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(42, "policy", 1) == derive_seed(42, "policy", 1)

    def test_different_labels_different_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_base_different_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_seed_is_non_negative_63_bit(self):
        seed = derive_seed(123, "label")
        assert 0 <= seed < 2**63


class TestSeededRNG:
    def test_reproducible_sequences(self):
        a = SeededRNG(7)
        b = SeededRNG(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert SeededRNG(1).random() != SeededRNG(2).random()

    def test_spawn_is_deterministic_and_independent(self):
        parent = SeededRNG(3)
        child_a = parent.spawn("x")
        child_b = SeededRNG(3).spawn("x")
        assert child_a.random() == child_b.random()
        assert parent.spawn("x").seed != parent.spawn("y").seed

    def test_randint_bounds(self):
        rng = SeededRNG(0)
        values = [rng.randint(2, 5) for _ in range(50)]
        assert all(2 <= v <= 5 for v in values)

    def test_uniform_bounds(self):
        rng = SeededRNG(0)
        values = [rng.uniform(-1.0, 1.0) for _ in range(50)]
        assert all(-1.0 <= v <= 1.0 for v in values)

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            SeededRNG(0).choice([])

    def test_choice_returns_member(self):
        rng = SeededRNG(0)
        options = ["a", "b", "c"]
        assert all(rng.choice(options) in options for _ in range(20))

    def test_weighted_choice_respects_zero_weight(self):
        rng = SeededRNG(0)
        values = [rng.weighted_choice(["x", "y"], [1.0, 0.0]) for _ in range(20)]
        assert set(values) == {"x"}

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            SeededRNG(0).weighted_choice(["a"], [1.0, 2.0])

    def test_maybe_extremes(self):
        rng = SeededRNG(0)
        assert not any(rng.maybe(0.0) for _ in range(20))
        assert all(rng.maybe(1.0) for _ in range(20))

    def test_sample_returns_distinct_items(self):
        rng = SeededRNG(0)
        sample = rng.sample(range(10), 4)
        assert len(sample) == 4
        assert len(set(sample)) == 4

    def test_shuffle_preserves_elements(self):
        rng = SeededRNG(0)
        items = list(range(10))
        rng.shuffle(items)
        assert sorted(items) == list(range(10))


class TestOptionalRng:
    def test_passthrough(self):
        rng = SeededRNG(5)
        assert optional_rng(rng) is rng

    def test_default(self):
        assert optional_rng(None, default_seed=9).seed == 9
