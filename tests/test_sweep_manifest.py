"""Manifest and resume tests, including the kill-and-resume crash contract.

The acceptance property: an interrupted sweep resumed with ``--resume``
produces results bit-identical to an uninterrupted run, re-executing only
the jobs the manifest does not record as complete.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.errors import SweepError
from repro.experiments.sweep import (
    Job,
    ResultCache,
    SweepManifest,
    SweepRunner,
    SweepSpec,
    grid_digest,
    payload_digest,
)

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _mul_job(params, rng):
    """Cheap deterministic job used by the unit-level tests."""
    return {"product": params["a"] * params["b"], "draw": rng.randint(0, 10**9)}


def _grid(n=6, name="grid", seed=3) -> SweepSpec:
    return SweepSpec(
        name=name,
        jobs=[
            Job(key=f"j{i}", fn=_mul_job, params={"a": i, "b": i + 1}, seed=seed)
            for i in range(n)
        ],
    )


class TestManifestFile:
    def test_open_writes_header_and_mark_done_appends(self, tmp_path):
        spec = _grid(n=3)
        manifest = SweepManifest.open(tmp_path, spec)
        lines = manifest.path.read_text().splitlines()
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["spec"] == "grid"
        assert [entry["key"] for entry in header["jobs"]] == spec.keys()

        payload = spec.jobs[0].execute()
        digest = manifest.mark_done(spec.jobs[0], payload)
        assert digest == payload_digest(payload)
        record = json.loads(manifest.path.read_text().splitlines()[1])
        assert record == {
            "kind": "result",
            "key": "j0",
            "fingerprint": spec.jobs[0].fingerprint(),
            "digest": digest,
        }

    def test_load_round_trips(self, tmp_path):
        spec = _grid(n=4)
        manifest = SweepManifest.open(tmp_path, spec)
        for job in spec.jobs[:2]:
            manifest.mark_done(job, job.execute())
        loaded = SweepManifest.load(manifest.path)
        assert loaded.spec_name == "grid"
        assert loaded.grid == manifest.grid
        assert loaded.grid_digest == manifest.grid_digest
        assert loaded.completed == manifest.completed
        assert [key for key, _ in loaded.pending()] == ["j2", "j3"]

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        spec = _grid(n=3)
        manifest = SweepManifest.open(tmp_path, spec)
        for job in spec.jobs[:2]:
            manifest.mark_done(job, job.execute())
        # Simulate a crash mid-write: chop the last record in half.
        text = manifest.path.read_text()
        manifest.path.write_text(text[: len(text) - 40])
        loaded = SweepManifest.load(manifest.path)
        assert set(loaded.completed) == {spec.jobs[0].fingerprint()}

    def test_grid_digest_is_order_insensitive(self):
        spec = _grid(n=5)
        grid = [(job.key, job.fingerprint()) for job in spec.jobs]
        assert grid_digest(grid) == grid_digest(list(reversed(grid)))
        other = _grid(n=5, seed=4)
        assert grid_digest(grid) != grid_digest(
            [(job.key, job.fingerprint()) for job in other.jobs]
        )

    def test_open_without_resume_truncates(self, tmp_path):
        spec = _grid(n=3)
        manifest = SweepManifest.open(tmp_path, spec)
        manifest.mark_done(spec.jobs[0], spec.jobs[0].execute())
        fresh = SweepManifest.open(tmp_path, spec, resume=False)
        assert fresh.completed == {}
        assert len(fresh.path.read_text().splitlines()) == 1

    def test_resume_against_a_different_grid_is_refused(self, tmp_path):
        spec = _grid(n=3)
        SweepManifest.open(tmp_path, spec)
        changed = _grid(n=3, seed=8)
        # Different seeds -> different fingerprints but the same file name
        # would only collide if the digest prefix matched; force the clash
        # by renaming the old manifest onto the new spec's path.
        old_path = SweepManifest.path_for(tmp_path, spec)
        new_path = SweepManifest.path_for(tmp_path, changed)
        os.replace(old_path, new_path)
        with pytest.raises(SweepError, match="different grid"):
            SweepManifest.open(tmp_path, changed, resume=True)


class TestRunnerResume:
    def test_resume_requires_cache_and_manifest_dir(self, tmp_path):
        with pytest.raises(SweepError, match="manifest_dir"):
            SweepRunner(resume=True, cache=ResultCache(tmp_path / "c"))
        with pytest.raises(SweepError, match="cache"):
            SweepRunner(resume=True, manifest_dir=tmp_path)

    def test_resume_skips_recorded_jobs_bit_identically(self, tmp_path):
        spec = _grid()
        cache = ResultCache(tmp_path / "cache")
        manifest_dir = tmp_path / "manifests"
        reference = SweepRunner(workers=1).run(spec)

        # Interrupted run: only the first three jobs completed.
        partial = SweepManifest.open(manifest_dir, spec)
        for job in spec.jobs[:3]:
            payload = job.execute()
            cache.put(job.fingerprint(), job.key, payload)
            partial.mark_done(job, payload)

        resumed = SweepRunner(
            workers=1, cache=cache, manifest_dir=manifest_dir, resume=True
        ).run(spec)
        assert resumed.resumed == 3
        assert resumed.executed == 3
        assert resumed.cache_hits == 0
        assert dict(resumed.payloads) == dict(reference.payloads)
        # The manifest now records the whole grid as complete.
        final = SweepManifest.load(SweepManifest.path_for(manifest_dir, spec))
        assert not final.pending()

    def test_resume_reexecutes_when_cached_payload_is_stale(self, tmp_path):
        spec = _grid(n=2)
        cache = ResultCache(tmp_path / "cache")
        manifest_dir = tmp_path / "manifests"
        manifest = SweepManifest.open(manifest_dir, spec)
        good = spec.jobs[0].execute()
        cache.put(spec.jobs[0].fingerprint(), "j0", good)
        manifest.mark_done(spec.jobs[0], good)
        # Corrupt the cached payload after the digest was recorded.
        cache.put(spec.jobs[0].fingerprint(), "j0", {"tampered": True})

        with pytest.warns(RuntimeWarning, match="missing or stale"):
            result = SweepRunner(
                workers=1, cache=cache, manifest_dir=manifest_dir, resume=True
            ).run(spec)
        assert result.resumed == 0
        assert result.executed == 2
        assert result["j0"] == good  # re-executed, deterministically identical

    def test_manifest_written_without_resume_too(self, tmp_path):
        spec = _grid(n=3)
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(workers=1, cache=cache, manifest_dir=tmp_path / "m").run(spec)
        manifest = SweepManifest.load(SweepManifest.path_for(tmp_path / "m", spec))
        assert not manifest.pending()

    def test_cache_hits_are_recorded_into_the_manifest(self, tmp_path):
        spec = _grid(n=3)
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(workers=1, cache=cache).run(spec)  # warm the cache only
        result = SweepRunner(
            workers=1, cache=cache, manifest_dir=tmp_path / "m"
        ).run(spec)
        assert result.cache_hits == 3 and result.executed == 0
        manifest = SweepManifest.load(SweepManifest.path_for(tmp_path / "m", spec))
        assert not manifest.pending()


_JOB_MODULE = '''
"""Sleepy sweep jobs importable by the crash-resume subprocesses."""
import time


def slow_job(params, rng):
    """Sleep, then return a deterministic payload."""
    time.sleep(params["sleep"])
    return {"i": params["i"], "draw": rng.randint(0, 10**9)}
'''

_DRIVER = '''
"""Run (or resume) the crash-resume sweep and print its outcome as JSON."""
import json
import sys

import crashjobs

from repro.experiments.sweep import Job, ResultCache, SweepRunner, SweepSpec

cache_dir, manifest_dir, mode = sys.argv[1], sys.argv[2], sys.argv[3]
spec = SweepSpec(
    "crashy",
    [
        Job(key=f"j{i}", fn=crashjobs.slow_job,
            params={"i": i, "sleep": 0.15}, seed=9)
        for i in range(12)
    ],
)
runner = SweepRunner(
    workers=1,
    cache=ResultCache(cache_dir),
    manifest_dir=manifest_dir,
    resume=(mode == "resume"),
)
result = runner.run(spec)
print(json.dumps({
    "executed": result.executed,
    "resumed": result.resumed,
    "cache_hits": result.cache_hits,
    "payloads": dict(result.payloads),
}))
'''


class TestCrashResume:
    """Kill a sweep mid-run, ``--resume`` it, compare to an unbroken run."""

    def _run_driver(self, tmp_path, cache, manifests, mode):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([SRC_DIR, str(tmp_path)])
        return subprocess.Popen(
            [sys.executable, str(tmp_path / "driver.py"), cache, manifests, mode],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_killed_sweep_resumes_bit_identically(self, tmp_path):
        (tmp_path / "crashjobs.py").write_text(_JOB_MODULE)
        (tmp_path / "driver.py").write_text(_DRIVER)
        cache = str(tmp_path / "cache")
        manifests = str(tmp_path / "manifests")

        # 1. Start the sweep and kill it once >= 3 jobs are checkpointed.
        victim = self._run_driver(tmp_path, cache, manifests, "fresh")
        manifest_path = None
        deadline = time.monotonic() + 60
        try:
            while time.monotonic() < deadline:
                if manifest_path is None:
                    candidates = list(Path(manifests).glob("*.manifest.jsonl"))
                    manifest_path = candidates[0] if candidates else None
                if manifest_path is not None and manifest_path.exists():
                    done = len(SweepManifest.load(manifest_path).completed)
                    if done >= 3:
                        break
                if victim.poll() is not None:  # pragma: no cover - too fast
                    pytest.skip("sweep finished before it could be killed")
                time.sleep(0.02)
            else:  # pragma: no cover - CI hang guard
                pytest.fail("sweep never checkpointed three jobs")
            victim.kill()
        finally:
            victim.wait(timeout=30)

        interrupted = SweepManifest.load(manifest_path)
        completed_before = len(interrupted.completed)
        assert 3 <= completed_before < 12

        # 2. Resume: only the unfinished jobs may execute.
        resume = self._run_driver(tmp_path, cache, manifests, "resume")
        out, err = resume.communicate(timeout=120)
        assert resume.returncode == 0, err
        resumed = json.loads(out)
        assert resumed["resumed"] == completed_before
        # A job killed between its cache write and its manifest record shows
        # up as a cache hit rather than a resume; either way it is not rerun.
        assert resumed["executed"] == 12 - completed_before - resumed["cache_hits"]

        # 3. An uninterrupted run in fresh directories is bit-identical.
        clean = self._run_driver(
            tmp_path, str(tmp_path / "cache2"), str(tmp_path / "manifests2"), "fresh"
        )
        out, err = clean.communicate(timeout=120)
        assert clean.returncode == 0, err
        reference = json.loads(out)
        assert resumed["payloads"] == reference["payloads"]
        assert json.dumps(resumed["payloads"], sort_keys=True) == json.dumps(
            reference["payloads"], sort_keys=True
        )
