"""Tests for the ``repro.perf`` harness: benchmarks, reports, gates, CLI.

The end-to-end benchmark is exercised by the CI bench lane (it would be
too slow here); these tests cover the cheap benchmarks and all of the
report/compare machinery the performance contract relies on.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.errors import ConfigurationError
from repro.perf import (
    BENCHMARK_NAMES,
    compare_reports,
    load_report,
    make_report,
    run_benchmark,
    run_benchmarks,
    write_report,
)
from repro.perf.cli import main
from repro.perf.compare import render_findings
from repro.perf.report import speedup_summary


class TestBenchmarks:
    def test_known_benchmark_names(self):
        assert set(BENCHMARK_NAMES) == {
            "engine_events",
            "memory_access",
            "noc_routing",
            "qlearning_step",
            "serving",
            "fig9_headline",
        }

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError):
            run_benchmark("warp_drive", quick=True)
        with pytest.raises(ConfigurationError):
            run_benchmarks(names=["warp_drive"], quick=True)

    @pytest.mark.parametrize("name", ["engine_events", "noc_routing", "memory_access"])
    def test_work_and_checksum_are_deterministic(self, name):
        first = run_benchmark(name, quick=True)
        second = run_benchmark(name, quick=True)
        assert first.work == second.work > 0
        assert first.checksum == second.checksum
        assert first.rate > 0

    def test_progress_callback_and_ordering(self):
        seen = []
        results = run_benchmarks(
            names=["noc_routing", "engine_events"],
            quick=True,
            progress=lambda name, result: seen.append(name),
        )
        # Canonical order, not request order.
        assert [r.name for r in results] == ["engine_events", "noc_routing"]
        assert seen == ["engine_events", "noc_routing"]


def _report(scale="quick", **rates):
    benchmarks = {
        name: {
            "wall_s": 1.0,
            "work": 100,
            "unit": "ops",
            "rate": rate,
            "checksum": f"cs-{name}",
        }
        for name, rate in rates.items()
    }
    return {
        "schema": "repro-perf/1",
        "scale": scale,
        "python": "3.11",
        "platform": "test",
        "benchmarks": benchmarks,
    }


class TestCompare:
    def test_identical_reports_pass(self):
        old = _report(a=100.0, b=50.0)
        findings = compare_reports(old, copy.deepcopy(old), tolerance=0.2)
        assert all(f.ok for f in findings)
        assert "ok" in render_findings(findings)

    def test_rate_regression_beyond_tolerance_fails(self):
        old = _report(a=100.0)
        new = _report(a=70.0)
        findings = compare_reports(old, new, tolerance=0.2)
        assert [f.ok for f in findings] == [False]
        assert findings[0].kind == "rate"

    def test_rate_regression_within_tolerance_passes(self):
        findings = compare_reports(_report(a=100.0), _report(a=85.0), tolerance=0.2)
        assert [f.ok for f in findings] == [True]

    def test_checksum_change_is_a_determinism_failure(self):
        old = _report(a=100.0)
        new = _report(a=100.0)
        new["benchmarks"]["a"]["checksum"] = "different"
        findings = compare_reports(old, new, tolerance=0.2)
        assert [f.kind for f in findings] == ["determinism"]
        assert not findings[0].ok
        # ... unless the determinism gate is explicitly waived.
        waived = compare_reports(old, new, tolerance=0.2, check_determinism=False)
        assert all(f.ok for f in waived)

    def test_work_count_drift_is_a_determinism_failure(self):
        # Work-count drift means the revisions simulated different things —
        # it must fail the gate even when the checksum happens to match and
        # the rate looks better.
        old = _report(a=100.0)
        new = _report(a=500.0)
        new["benchmarks"]["a"]["work"] = 101
        findings = compare_reports(old, new, tolerance=0.2)
        assert [f.kind for f in findings] == ["determinism"]
        assert not findings[0].ok
        assert "work 100 -> 101" in findings[0].message
        waived = compare_reports(old, new, tolerance=0.2, check_determinism=False)
        assert all(f.ok for f in waived)

    def test_determinism_failure_short_circuits_the_rate_gate(self):
        # A determinism failure makes timings incomparable: exactly one
        # finding per drifted benchmark, and no rate verdict for it.
        old = _report(a=100.0)
        new = _report(a=1.0)  # would also fail the rate gate
        new["benchmarks"]["a"]["work"] = 7
        findings = compare_reports(old, new, tolerance=0.2)
        assert [(f.kind, f.ok) for f in findings] == [("determinism", False)]

    def test_rate_improvement_passes_and_is_reported(self):
        # The rate gate is one-sided: only regressions fail, a speedup is
        # reported with its ratio.
        findings = compare_reports(_report(a=100.0), _report(a=300.0), tolerance=0.2)
        assert [f.ok for f in findings] == [True]
        assert "3.00x" in findings[0].message

    def test_missing_and_new_benchmarks(self):
        old = _report(a=100.0, gone=10.0)
        new = _report(a=100.0, fresh=1.0)
        by_name = {f.name: f for f in compare_reports(old, new, tolerance=0.2)}
        assert by_name["gone"].ok is False and by_name["gone"].kind == "missing"
        assert by_name["fresh"].ok is True and by_name["fresh"].kind == "new"

    def test_scale_mismatch_fails(self):
        findings = compare_reports(
            _report(scale="quick", a=1.0), _report(scale="default", a=1.0), tolerance=0.2
        )
        assert [f.kind for f in findings] == ["scale"]

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_reports(_report(a=1.0), _report(a=1.0), tolerance=1.5)


class TestReport:
    def test_round_trip_and_speedups(self, tmp_path):
        results = run_benchmarks(names=["engine_events"], quick=True)
        before = make_report(results, scale="quick")
        slower = copy.deepcopy(before)
        slower["benchmarks"]["engine_events"]["rate"] = (
            before["benchmarks"]["engine_events"]["rate"] / 2.0
        )
        report = make_report(results, scale="quick", before=slower)
        assert report["speedup_vs_before"]["engine_events"] == pytest.approx(2.0, rel=0.01)

        path = tmp_path / "report.json"
        write_report(report, path)
        assert load_report(path)["benchmarks"] == report["benchmarks"]

    def test_load_rejects_missing_and_invalid(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_report(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_report(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ConfigurationError):
            load_report(wrong)

    def test_speedup_summary_skips_unmatched(self):
        assert speedup_summary(_report(a=50.0), _report(a=100.0, b=1.0)) == {"a": 2.0}


class TestCli:
    def test_run_compare_profile_flow(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["run", "--quick", "--only", "engine_events", "--out", str(out)]) == 0
        assert out.is_file()
        assert main(["compare", str(out), str(out), "--tolerance", "0.2"]) == 0
        assert "all benchmarks within tolerance" in capsys.readouterr().out

        report = load_report(out)
        report["benchmarks"]["engine_events"]["rate"] = 1e-9
        slow = tmp_path / "slow.json"
        write_report(report, slow)
        assert main(["compare", str(out), str(slow), "--tolerance", "0.2"]) == 1

        assert main(["profile", "engine_events", "--quick", "--limit", "5"]) == 0
        assert "benchmark engine_events" in capsys.readouterr().out

    def test_run_with_before_embeds_speedups(self, tmp_path, capsys):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        assert main(["run", "--quick", "--only", "engine_events", "--out", str(before)]) == 0
        assert (
            main(
                [
                    "run",
                    "--quick",
                    "--only",
                    "engine_events",
                    "--out",
                    str(after),
                    "--before",
                    str(before),
                ]
            )
            == 0
        )
        report = load_report(after)
        assert "engine_events" in report["speedup_vs_before"]
        assert report["before"]["benchmarks"]["engine_events"]["checksum"] == (
            report["benchmarks"]["engine_events"]["checksum"]
        )

    def test_compare_missing_file_errors(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "a.json"), str(tmp_path / "b.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_compare_exit_codes_for_each_gate(self, tmp_path, capsys):
        # The CI gate consumes the exit code: 0 pass, 1 failed findings.
        base = tmp_path / "base.json"
        assert main(["run", "--quick", "--only", "engine_events", "--out", str(base)]) == 0
        report = load_report(base)

        drifted = copy.deepcopy(report)
        drifted["benchmarks"]["engine_events"]["work"] += 1
        drifted_path = tmp_path / "work-drift.json"
        write_report(drifted, drifted_path)
        assert main(["compare", str(base), str(drifted_path)]) == 1
        assert "simulation changed" in capsys.readouterr().out

        tampered = copy.deepcopy(report)
        tampered["benchmarks"]["engine_events"]["checksum"] = "0" * 16
        tampered_path = tmp_path / "checksum.json"
        write_report(tampered, tampered_path)
        assert main(["compare", str(base), str(tampered_path)]) == 1
        assert "simulation changed" in capsys.readouterr().out

        slower = copy.deepcopy(report)
        slower["benchmarks"]["engine_events"]["rate"] = (
            report["benchmarks"]["engine_events"]["rate"] * 0.01
        )
        slower_path = tmp_path / "rate.json"
        write_report(slower, slower_path)
        assert main(["compare", str(base), str(slower_path), "--tolerance", "0.5"]) == 1
        out = capsys.readouterr().out
        assert "rate regressed" in out

    def test_report_records_core_backend(self, tmp_path):
        # Reports name the core backend they ran under, so a baseline
        # regenerated under the wrong backend is visible in review.
        from repro.utils.backend import core_backend

        out = tmp_path / "bench.json"
        with core_backend("reference"):
            assert main(
                ["run", "--quick", "--only", "engine_events", "--out", str(out)]
            ) == 0
        assert load_report(out)["core_backend"] == "reference"
