"""Unit and integration tests of the :mod:`repro.serving` stack.

Covers the serving contract end to end, always through the real asyncio
HTTP transport (loopback, ephemeral ports): server lifecycle, single and
batched decision semantics against the offline Q-table, digest/version
provenance on every response, hot-reload behaviour, typed error envelopes
(no tracebacks over the wire), the stats/histogram surface, and
byte-identical decision payloads across both core backends.  The suite
has no dependency on an async test plugin — each test owns its event loop
via ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from serving_harness import make_artifact, make_registry, make_server, make_service

from repro import __version__
from repro.core.state import NUM_STATES, CoherenceState
from repro.serving import ERROR_STATUS, PROTOCOL_VERSION, ServingClient
from repro.serving.protocol import (
    RequestError,
    envelope_for_exception,
    error_envelope,
    parse_decide_request,
    parse_state,
)
from repro.soc.coherence import CoherenceMode
from repro.utils.backend import CORE_BACKENDS, core_backend


def with_server(test, registry=None, tmp_path=None, **service_kwargs):
    """Run async ``test(server, client, service)`` against a live server."""
    if registry is None:
        registry = make_registry(tmp_path / "models")
    service = make_service(registry, **service_kwargs)

    async def _run():
        async with make_server(service) as server:
            async with ServingClient(server.host, server.port) as client:
                return await test(server, client, service)

    return asyncio.run(_run())


# ----------------------------------------------------------------------
# Protocol-layer units (no sockets)
# ----------------------------------------------------------------------
class TestProtocol:
    """Wire-format parsing and the error-envelope vocabulary."""

    def test_parse_state_accepts_all_three_formats(self):
        state = CoherenceState.from_index(137)
        levels = [
            state.fully_coh_acc,
            state.non_coh_acc_per_tile,
            state.to_llc_per_tile,
            state.tile_footprint,
            state.acc_footprint,
        ]
        mapping = {
            "fully_coh_acc": state.fully_coh_acc,
            "non_coh_acc_per_tile": state.non_coh_acc_per_tile,
            "to_llc_per_tile": state.to_llc_per_tile,
            "tile_footprint": state.tile_footprint,
            "acc_footprint": state.acc_footprint,
        }
        assert parse_state(137) == 137
        assert parse_state(levels) == 137
        assert parse_state(mapping) == 137

    @pytest.mark.parametrize(
        "bad",
        [
            -1,
            NUM_STATES,
            True,
            "5",
            3.0,
            [0, 0, 0, 0],
            [0, 0, 0, 0, 3],
            [0, 0, 0, 0, True],
            {"fully_coh_acc": 1},
            None,
        ],
    )
    def test_parse_state_rejects_bad_values(self, bad):
        with pytest.raises(RequestError) as excinfo:
            parse_state(bad)
        assert excinfo.value.error_type == "invalid-request"

    def test_decide_request_needs_exactly_one_of_state_and_states(self):
        with pytest.raises(RequestError):
            parse_decide_request({}, max_batch=10)
        with pytest.raises(RequestError):
            parse_decide_request({"state": 1, "states": [1]}, max_batch=10)
        assert parse_decide_request({"state": 4}, max_batch=10) == ([4], True)
        assert parse_decide_request({"states": [4, 5]}, max_batch=10) == (
            [4, 5],
            False,
        )

    def test_decide_request_enforces_the_batch_limit(self):
        with pytest.raises(RequestError) as excinfo:
            parse_decide_request({"states": [0] * 11}, max_batch=10)
        assert "11" in str(excinfo.value)

    def test_envelopes_carry_matching_status(self):
        for error_type, status in ERROR_STATUS.items():
            envelope = error_envelope(error_type, "boom")
            assert envelope["error"]["status"] == status
            assert envelope["error"]["type"] == error_type

    def test_unexpected_exceptions_become_opaque_internal_errors(self):
        status, envelope = envelope_for_exception(KeyError("secret-detail"))
        assert status == 500
        assert "secret-detail" not in json.dumps(envelope)
        assert envelope["error"]["type"] == "internal-error"


# ----------------------------------------------------------------------
# Lifecycle and health
# ----------------------------------------------------------------------
class TestLifecycle:
    """Server start/stop and the health surface."""

    def test_healthz_reports_model_identity(self, tmp_path):
        registry = make_registry(tmp_path / "models")
        expected_digest = registry.load("served").digest

        async def test(server, client, service):
            status, document = await client.get("/healthz")
            assert status == 200
            assert document["status"] == "ok"
            assert document["model"] == "served"
            assert document["digest"] == expected_digest
            assert document["generation"] == 0
            assert document["repro_version"] == __version__
            assert document["protocol"] == PROTOCOL_VERSION
            assert document["scenario"] == "toy-scenario"
            assert document["uptime_s"] >= 0

        with_server(test, registry=registry)

    def test_server_binds_an_ephemeral_port_and_closes_cleanly(self, tmp_path):
        registry = make_registry(tmp_path / "models")
        service = make_service(registry)

        async def _run():
            server = make_server(service)
            await server.start()
            assert server.port != 0
            assert server.url == f"http://127.0.0.1:{server.port}"
            await server.close()
            # A second close is a no-op, and restart works.
            await server.close()
            await server.start()
            await server.close()

        asyncio.run(_run())

    def test_serve_forever_reuses_an_already_started_server(self, tmp_path):
        # The CLI starts the server eagerly (to print the resolved port in
        # its banner) and then hands it to serve_forever; that hand-off
        # must not attempt a second start.
        from repro.serving import serve_forever

        registry = make_registry(tmp_path / "models")
        service = make_service(registry)

        async def _run():
            server = make_server(service)
            await server.start()
            assert server.started
            forever = asyncio.ensure_future(serve_forever(server))
            try:
                async with ServingClient(server.host, server.port) as client:
                    status, document = await client.get("/healthz")
                assert status == 200
                assert document["status"] == "ok"
            finally:
                forever.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await forever
            # serve_forever closed the server on the way out.
            assert not server.started

        asyncio.run(_run())

    def test_missing_model_fails_at_construction(self, tmp_path):
        registry = make_registry(tmp_path / "models")
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            make_service(registry, name="absent")


# ----------------------------------------------------------------------
# Decision semantics
# ----------------------------------------------------------------------
class TestDecisions:
    """Single and batched decisions match the offline Q-table exactly."""

    def test_batch_matches_offline_best_modes_in_request_order(self, tmp_path):
        registry = make_registry(tmp_path / "models")
        artifact = registry.load("served")
        qtable = artifact.build_policy().agent.qtable
        states = [0, 17, 242, 5, 17, 100]
        expected = [mode.label for mode in qtable.best_modes(states)]

        async def test(server, client, service):
            status, document = await client.decide(states)
            assert status == 200
            assert document["decisions"] == expected
            assert document["count"] == len(states)
            assert "decision" not in document

        with_server(test, registry=registry)

    def test_wire_formats_are_equivalent(self, tmp_path):
        state = CoherenceState.from_index(200)
        as_levels = [
            state.fully_coh_acc,
            state.non_coh_acc_per_tile,
            state.to_llc_per_tile,
            state.tile_footprint,
            state.acc_footprint,
        ]
        as_mapping = {
            "fully_coh_acc": state.fully_coh_acc,
            "non_coh_acc_per_tile": state.non_coh_acc_per_tile,
            "to_llc_per_tile": state.to_llc_per_tile,
            "tile_footprint": state.tile_footprint,
            "acc_footprint": state.acc_footprint,
        }

        async def test(server, client, service):
            status, document = await client.decide([200, as_levels, as_mapping])
            assert status == 200
            assert len(set(document["decisions"])) == 1

        with_server(test, tmp_path=tmp_path)

    def test_single_state_echoes_a_decision_field(self, tmp_path):
        async def test(server, client, service):
            status, document = await client.post("/v1/decide", {"state": 7})
            assert status == 200
            assert document["count"] == 1
            assert document["decision"] == document["decisions"][0]

        with_server(test, tmp_path=tmp_path)

    def test_empty_batch_is_a_valid_noop(self, tmp_path):
        async def test(server, client, service):
            status, document = await client.decide([])
            assert status == 200
            assert document["decisions"] == []
            assert document["count"] == 0

        with_server(test, tmp_path=tmp_path)

    def test_biased_table_decides_its_mode_everywhere(self, tmp_path):
        artifact = make_artifact(bias_mode=CoherenceMode.FULL_COH)
        registry = make_registry(tmp_path / "models", artifact)

        async def test(server, client, service):
            status, document = await client.decide(list(range(NUM_STATES)))
            assert status == 200
            assert document["decisions"] == ["full-coh"] * NUM_STATES

        with_server(test, registry=registry)


# ----------------------------------------------------------------------
# Provenance and hot reload
# ----------------------------------------------------------------------
class TestProvenanceAndReload:
    """Responses are attributable; reloads are atomic and digest-gated."""

    def test_every_response_carries_digest_and_version(self, tmp_path):
        registry = make_registry(tmp_path / "models")
        expected_digest = registry.load("served").digest

        async def test(server, client, service):
            for path, document in [
                ("/v1/decide", {"state": 1}),
                ("/v1/decide", {"states": [1, 2]}),
            ]:
                status, response = await client.post(path, document)
                assert status == 200
                assert response["digest"] == expected_digest
                assert response["model"] == "served"
                assert response["repro_version"] == __version__
                assert response["generation"] == 0

        with_server(test, registry=registry)

    def test_reload_swaps_digest_and_bumps_generation(self, tmp_path):
        registry = make_registry(tmp_path / "models")
        first = registry.load("served").digest
        second_artifact = make_artifact(seed=99)
        assert second_artifact.digest != first

        async def test(server, client, service):
            registry.save(second_artifact, replace=True)
            status, document = await client.post("/v1/reload", {})
            assert status == 200
            assert document["reloaded"] is True
            assert document["digest"] == second_artifact.digest
            assert document["generation"] == 1
            status, decided = await client.post("/v1/decide", {"state": 0})
            assert decided["digest"] == second_artifact.digest
            assert decided["generation"] == 1

        with_server(test, registry=registry)

    def test_rewriting_the_same_digest_does_not_reload(self, tmp_path):
        registry = make_registry(tmp_path / "models")

        async def test(server, client, service):
            registry.save(make_artifact(), replace=True)  # same content
            status, document = await client.post("/v1/reload", {})
            assert status == 200
            assert document["reloaded"] is False
            assert document["generation"] == 0
            assert service.stats.reloads == 0

        with_server(test, registry=registry)

    def test_unchanged_file_is_a_cheap_noop(self, tmp_path):
        registry = make_registry(tmp_path / "models")

        async def test(server, client, service):
            status, document = await client.post("/v1/reload", {})
            assert document["reloaded"] is False

        with_server(test, registry=registry)

    def test_corrupt_replacement_keeps_the_old_model_serving(self, tmp_path):
        registry = make_registry(tmp_path / "models")
        original = registry.load("served").digest

        async def test(server, client, service):
            registry.path_for("served").write_text("{not json")
            status, document = await client.post("/v1/reload", {})
            assert status == ERROR_STATUS["model-error"]
            assert document["error"]["type"] == "model-error"
            # The previous model keeps serving, and the failure is counted.
            status, decided = await client.post("/v1/decide", {"state": 3})
            assert status == 200
            assert decided["digest"] == original
            assert service.stats.reload_errors == 1
            # Repairing the file recovers on the next check.
            registry.save(make_artifact(seed=5), replace=True)
            status, document = await client.post("/v1/reload", {})
            assert status == 200
            assert document["reloaded"] is True

        with_server(test, registry=registry)

    def test_background_reload_loop_picks_up_changes(self, tmp_path):
        registry = make_registry(tmp_path / "models")
        replacement = make_artifact(seed=99)

        async def _run():
            service = make_service(registry)
            server = make_server(service, reload_interval=0.05)
            async with server:
                async with ServingClient(server.host, server.port) as client:
                    registry.save(replacement, replace=True)
                    for _ in range(100):
                        await asyncio.sleep(0.05)
                        _, document = await client.get("/healthz")
                        if document["digest"] == replacement.digest:
                            break
                    else:
                        raise AssertionError("background reload never happened")
                    assert document["generation"] == 1

        asyncio.run(_run())


# ----------------------------------------------------------------------
# Error envelopes over the wire
# ----------------------------------------------------------------------
class TestErrorEnvelopes:
    """Every failure maps to a typed JSON envelope; never a traceback."""

    @pytest.mark.parametrize(
        "path,method,body,expected_type",
        [
            ("/v1/decide", "POST", {"states": [999]}, "invalid-request"),
            ("/v1/decide", "POST", {"wrong": 1}, "invalid-request"),
            ("/v1/decide", "POST", [], "invalid-request"),
            ("/v1/decide", "GET", None, "invalid-request"),
            ("/nope", "GET", None, "not-found"),
            ("/v1/whatif", "POST", {"scenario": "no-such"}, "not-found"),
            ("/v1/whatif", "POST", {"scenario": ""}, "invalid-request"),
            ("/v1/whatif", "POST", {"scenario": "quickstart", "policies": ["x"]},
             "invalid-request"),
            ("/v1/whatif", "POST", {"scenario": "quickstart", "bogus": 1},
             "invalid-request"),
            ("/v1/whatif", "POST", {"scenario": "quickstart", "max_events": -1},
             "invalid-request"),
        ],
    )
    def test_typed_envelopes(self, tmp_path, path, method, body, expected_type):
        async def test(server, client, service):
            status, document = await client.request(method, path, body)
            assert status == ERROR_STATUS[expected_type]
            error = document["error"]
            assert error["type"] == expected_type
            assert error["status"] == status
            assert "Traceback" not in json.dumps(document)
            assert service.stats.errors.get(expected_type, 0) >= 1

        with_server(test, tmp_path=tmp_path)

    def test_malformed_json_body_is_an_invalid_request(self, tmp_path):
        async def test(server, client, service):
            await client.connect()
            body = b"{this is not json"
            head = (
                f"POST /v1/decide HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode("latin-1")
            client._writer.write(head + body)
            await client._writer.drain()
            status, document = await client._read_response()
            assert status == 400
            assert document["error"]["type"] == "invalid-request"

        with_server(test, tmp_path=tmp_path)

    def test_oversized_batch_is_rejected_with_the_limit_named(self, tmp_path):
        async def test(server, client, service):
            status, document = await client.decide([0] * 9)
            assert status == 400
            assert "8" in document["error"]["message"]

        with_server(test, tmp_path=tmp_path, max_batch=8)

    def test_oversized_body_gets_a_413_envelope(self, tmp_path):
        async def test(server, client, service):
            await client.connect()
            head = (
                "POST /v1/decide HTTP/1.1\r\nHost: x\r\n"
                "Content-Length: 999999999\r\n\r\n"
            ).encode("latin-1")
            client._writer.write(head)
            await client._writer.drain()
            status, document = await client._read_response()
            assert status == 413
            assert document["error"]["type"] == "payload-too-large"

        with_server(test, tmp_path=tmp_path)

    def test_whatif_budget_exhaustion_is_a_simulation_error(self, tmp_path):
        async def test(server, client, service):
            status, document = await client.post(
                "/v1/whatif", {"scenario": "quickstart", "max_events": 10}
            )
            assert status == ERROR_STATUS["simulation-error"]
            assert document["error"]["type"] == "simulation-error"

        with_server(test, tmp_path=tmp_path)


# ----------------------------------------------------------------------
# What-if queries
# ----------------------------------------------------------------------
class TestWhatIf:
    """Bounded scenario evaluation against the served model."""

    def test_whatif_requires_a_trainable_artifact(self, tmp_path):
        # The toy harness artifact references a scenario that does not
        # exist, so what-if runs use an explicit real scenario name and
        # evaluate the served table on it.
        async def test(server, client, service):
            status, document = await client.post(
                "/v1/whatif", {"scenario": "quickstart"}
            )
            assert status == 200
            assert document["scenario"] == "quickstart"
            assert document["pretrained_digest"] == service.model.digest
            assert document["max_events"] == service.whatif_max_events
            assert set(document["policies"]) == {"cohmeleon"}
            entry = document["policies"]["cohmeleon"]
            assert entry["execution_cycles"] > 0
            assert entry["ddr_accesses"] > 0

        with_server(test, tmp_path=tmp_path, whatif_max_events=2_000_000)

    def test_requested_budget_is_capped_at_the_server_limit(self, tmp_path):
        async def test(server, client, service):
            status, document = await client.post(
                "/v1/whatif",
                {"scenario": "quickstart", "max_events": 10**9},
            )
            assert status == 200
            assert document["max_events"] == service.whatif_max_events

        with_server(test, tmp_path=tmp_path, whatif_max_events=2_000_000)

    def test_fixed_policy_whatif_does_not_touch_the_model(self, tmp_path):
        async def test(server, client, service):
            status, document = await client.post(
                "/v1/whatif",
                {"scenario": "quickstart", "policies": ["fixed-non-coh-dma"]},
            )
            assert status == 200
            assert document["pretrained_digest"] is None
            assert set(document["policies"]) == {"fixed-non-coh-dma"}

        with_server(test, tmp_path=tmp_path, whatif_max_events=2_000_000)


# ----------------------------------------------------------------------
# Stats surface
# ----------------------------------------------------------------------
class TestStats:
    """Request counts, decision totals, histograms."""

    def test_stats_counts_requests_decisions_and_batches(self, tmp_path):
        async def test(server, client, service):
            await client.decide([0, 1, 2])
            await client.decide([3])
            await client.post("/v1/decide", {"states": [999]})  # error
            status, document = await client.get("/stats")
            assert status == 200
            assert document["requests"]["POST /v1/decide"] == 3
            assert document["decisions_served"] == 4
            assert document["errors"]["invalid-request"] == 1
            assert document["latency"]["count"] == 3
            assert document["latency"]["p50_ms"] is not None
            assert document["latency"]["p99_ms"] is not None
            assert document["batch_sizes"]["count"] == 2

        with_server(test, tmp_path=tmp_path)

    def test_latency_histogram_percentiles_are_bucket_bounds(self):
        from repro.serving.service import LatencyHistogram

        histogram = LatencyHistogram()
        assert histogram.percentile(0.5) is None
        for _ in range(99):
            histogram.observe(0.2)
        histogram.observe(400.0)
        assert histogram.percentile(0.50) == 0.25
        assert histogram.percentile(0.99) == 0.25
        assert histogram.percentile(1.0) == 500.0
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 100


# ----------------------------------------------------------------------
# Core-backend interplay
# ----------------------------------------------------------------------
class TestBackendInterplay:
    """Decision payloads are byte-identical across core backends."""

    def test_decisions_match_offline_table_under_each_backend(
        self, tmp_path, core_backend_name
    ):
        registry = make_registry(tmp_path / "models", make_artifact(seed=23))
        qtable = registry.load("served").build_policy().agent.qtable
        assert qtable.backend == core_backend_name
        states = list(range(0, NUM_STATES, 3))
        expected = [mode.label for mode in qtable.best_modes(states)]

        async def test(server, client, service):
            assert service.model.qtable.backend == core_backend_name
            status, document = await client.decide(states)
            assert status == 200
            assert document["decisions"] == expected

        with_server(test, registry=registry)

    def test_decision_payloads_are_byte_identical_across_backends(self, tmp_path):
        states = list(range(NUM_STATES))
        payloads = {}
        for backend in CORE_BACKENDS:
            with core_backend(backend):
                registry = make_registry(
                    tmp_path / f"models-{backend}", make_artifact(seed=23)
                )

                async def test(server, client, service):
                    status, document = await client.decide(states)
                    assert status == 200
                    return document

                payloads[backend] = json.dumps(
                    with_server(test, registry=registry), sort_keys=True
                )
        reference, vectorized = (payloads[b] for b in CORE_BACKENDS)
        assert reference == vectorized
