"""Unit tests for workload sizes, specs, the generator, and case studies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.soc.config import soc_preset
from repro.utils.rng import SeededRNG
from repro.workloads.case_studies import (
    case_study_accelerators,
    case_study_application,
    case_study_setup,
    soc4_accelerators,
    soc5_accelerators,
    soc6_accelerators,
)
from repro.workloads.generator import ApplicationGenerator, GeneratorConfig
from repro.workloads.sizes import (
    WorkloadSizeClass,
    footprint_for_class,
    size_class_of,
)
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec, make_phase
from repro.units import KB


class TestWorkloadSizes:
    def test_classification_matches_paper_definitions(self):
        config = soc_preset("SoC1")  # 32 KB L2, 256 KB slice, 1 MB LLC
        assert size_class_of(16 * KB, config) is WorkloadSizeClass.SMALL
        assert size_class_of(128 * KB, config) is WorkloadSizeClass.MEDIUM
        assert size_class_of(512 * KB, config) is WorkloadSizeClass.LARGE
        assert size_class_of(2048 * KB, config) is WorkloadSizeClass.EXTRA_LARGE

    @pytest.mark.parametrize("size_class", list(WorkloadSizeClass))
    def test_footprint_for_class_roundtrips(self, size_class):
        config = soc_preset("SoC0")
        footprint = footprint_for_class(size_class, config)
        assert size_class_of(footprint, config) is size_class

    def test_randomised_footprints_stay_in_class(self):
        config = soc_preset("SoC2")
        rng = SeededRNG(1)
        for _ in range(20):
            footprint = footprint_for_class(WorkloadSizeClass.MEDIUM, config, rng=rng)
            assert size_class_of(footprint, config) is WorkloadSizeClass.MEDIUM

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            footprint_for_class(WorkloadSizeClass.SMALL, soc_preset("SoC0"), fraction=0.0)


class TestSpecs:
    def test_thread_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ThreadSpec("t", (), 1024)
        with pytest.raises(ConfigurationError):
            ThreadSpec("t", ("FFT",), 0)
        with pytest.raises(ConfigurationError):
            ThreadSpec("t", ("FFT",), 1024, loop_count=0)

    def test_thread_total_invocations(self):
        thread = ThreadSpec("t", ("FFT", "GEMM"), 1024, loop_count=3)
        assert thread.total_invocations == 6

    def test_phase_requires_unique_thread_ids(self):
        thread = ThreadSpec("dup", ("FFT",), 1024)
        with pytest.raises(ConfigurationError):
            PhaseSpec("p", (thread, thread))

    def test_phase_and_application_aggregates(self):
        phase = PhaseSpec(
            "p",
            (
                ThreadSpec("a", ("FFT",), 1024, loop_count=2),
                ThreadSpec("b", ("GEMM", "SPMV"), 2048),
            ),
        )
        app = ApplicationSpec("app", (phase,))
        assert phase.total_invocations == 4
        assert app.total_invocations == 4
        assert app.accelerators_used() == ["FFT", "GEMM", "SPMV"]
        assert app.phase_names() == ["p"]

    def test_empty_application_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplicationSpec("empty", ())

    def test_make_phase_aligns_inputs(self):
        phase = make_phase("p", [("FFT",), ("GEMM",)], [1024, 2048], [1, 2], num_cpus=2)
        assert len(phase.threads) == 2
        assert phase.threads[1].loop_count == 2
        with pytest.raises(ConfigurationError):
            make_phase("p", [("FFT",)], [1024, 2048], [1], num_cpus=1)


class TestGenerator:
    def make_generator(self, **config_overrides):
        return ApplicationGenerator(
            soc_config=soc_preset("SoC1"),
            accelerator_names=["FFT", "GEMM", "SPMV"],
            generator_config=GeneratorConfig(**config_overrides) if config_overrides else None,
            seed=11,
        )

    def test_deterministic_for_same_seed_and_instance(self):
        a = self.make_generator().generate(instance=0)
        b = self.make_generator().generate(instance=0)
        assert a.phases == b.phases

    def test_instances_differ(self):
        generator = self.make_generator()
        assert generator.generate(0).phases != generator.generate(1).phases

    def test_generate_pair_produces_distinct_apps(self):
        train, test = self.make_generator().generate_pair()
        assert train.phases != test.phases

    def test_thread_counts_respect_bounds(self):
        app = self.make_generator(num_phases=3, min_threads=2, max_threads=4).generate()
        for phase in app.phases:
            assert 2 <= len(phase.threads) <= 4

    def test_only_known_accelerators_used(self):
        app = self.make_generator().generate()
        assert set(app.accelerators_used()) <= {"FFT", "GEMM", "SPMV"}

    def test_invalid_generator_config(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(num_phases=0)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(min_threads=5, max_threads=2)

    def test_requires_accelerators(self):
        with pytest.raises(ConfigurationError):
            ApplicationGenerator(soc_preset("SoC1"), [], seed=0)


class TestCaseStudies:
    def test_accelerator_counts_fit_presets(self):
        assert len(soc4_accelerators()) == 11
        assert len(soc5_accelerators()) == 8
        assert len(soc6_accelerators()) == 9

    def test_soc5_composition_matches_paper(self):
        names = [a.name for a in soc5_accelerators()]
        assert names.count("FFT") == 2
        assert names.count("Viterbi") == 2
        assert names.count("Conv-2D") == 2
        assert names.count("GEMM") == 2

    def test_soc6_has_three_vision_pipelines(self):
        names = [a.name for a in soc6_accelerators()]
        assert names.count("Night-vision") == 3
        assert names.count("Autoencoder") == 3
        assert names.count("MLP") == 3

    @pytest.mark.parametrize("soc_name", ["SoC4", "SoC5", "SoC6"])
    def test_applications_only_use_available_accelerators(self, soc_name):
        accelerators = {a.name for a in case_study_accelerators(soc_name)}
        app = case_study_application(soc_name)
        assert set(app.accelerators_used()) <= accelerators

    def test_setup_bundles_config_and_app(self):
        config, accelerators, app = case_study_setup("SoC5")
        assert config.name == "SoC5"
        assert len(accelerators) <= config.num_accelerator_tiles
        assert app.total_invocations > 0

    def test_unknown_case_study_raises(self):
        with pytest.raises(ConfigurationError):
            case_study_accelerators("SoC0")
        with pytest.raises(ConfigurationError):
            case_study_application("SoC1")

    def test_instances_differ(self):
        assert case_study_application("SoC6", 0).phases != case_study_application("SoC6", 1).phases
