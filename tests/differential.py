"""Shared helpers for the reference-vs-vectorized differential harness.

The simulation core ships in two backends (``repro.utils.backend``):
``reference`` defines the semantics and ``vectorized`` is the fast
implementation.  They are bit-identical by contract.  The helpers here
run an arbitrary experiment under every backend and assert the results
agree — ``tests/test_core_differential.py`` builds the whole differential
suite on top of them, and other suites can reuse them for spot checks.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, TypeVar

from repro.utils.backend import CORE_BACKENDS, core_backend

T = TypeVar("T")


def payload_digest(payload: object) -> str:
    """Return the canonical sha256 digest of a JSON-able payload.

    The same canonical-JSON (sorted keys) digest convention as
    ``repro.perf`` checksums and the sweep manifest payload digests, so
    digests printed by failing differential tests can be compared against
    those artifacts directly.
    """
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def run_on_backends(fn: Callable[[], T]) -> Dict[str, T]:
    """Run ``fn`` once under every core backend; return ``{backend: result}``.

    ``fn`` must build every core object it uses *inside* the call (the
    backend is captured at object construction), and must be
    deterministic apart from the backend under test.
    """
    results: Dict[str, T] = {}
    for name in CORE_BACKENDS:
        with core_backend(name):
            results[name] = fn()
    return results


def assert_backends_agree(fn: Callable[[], T], digest: bool = False) -> T:
    """Run ``fn`` under every backend and assert all results are equal.

    Returns the reference result.  With ``digest=True`` the results are
    compared by :func:`payload_digest` — for deep JSON payloads where a
    structural diff would be unreadable, and to assert exactly what the
    perf/sweep contracts assert (payload-digest equality).
    """
    results = run_on_backends(fn)
    reference = results["reference"]
    if digest:
        expected = payload_digest(reference)
        for name, result in results.items():
            actual = payload_digest(result)
            assert actual == expected, (
                f"core backend {name!r} diverged from reference: "
                f"payload digest {actual} != {expected}"
            )
    else:
        for name, result in results.items():
            assert result == reference, (
                f"core backend {name!r} diverged from reference"
            )
    return reference


def cache_state(cache) -> Dict[str, object]:
    """Full observable state of a :class:`SetAssociativeCache`.

    Captures the per-set contents **in recency order** (LRU first — plain
    dicts and ``OrderedDict`` both expose it as iteration order), the
    resident/dirty counters, and the statistics, so comparing two states
    asserts eviction order as well as final contents.
    """
    return {
        "sets": [list(cache_set.items()) for cache_set in cache._sets],
        "valid_lines": cache.valid_lines(),
        "dirty_lines": cache.dirty_lines(),
        "stats": cache.stats.as_dict(),
    }
