"""Unit tests for the coherence-mode definitions."""

from __future__ import annotations

import pytest

from repro.errors import CoherenceError
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode, mode_from_label, mode_index


class TestModeProperties:
    def test_four_modes_exist(self):
        assert len(COHERENCE_MODES) == 4

    def test_non_coherent_requires_both_flushes(self):
        mode = CoherenceMode.NON_COH_DMA
        assert mode.requires_private_flush
        assert mode.requires_llc_flush
        assert not mode.uses_llc
        assert not mode.uses_private_cache

    def test_llc_coherent_requires_only_private_flush(self):
        mode = CoherenceMode.LLC_COH_DMA
        assert mode.requires_private_flush
        assert not mode.requires_llc_flush
        assert mode.uses_llc

    def test_coherent_dma_needs_no_flush_but_recalls(self):
        mode = CoherenceMode.COH_DMA
        assert not mode.requires_private_flush
        assert not mode.requires_llc_flush
        assert mode.hardware_recalls
        assert mode.uses_llc

    def test_fully_coherent_uses_private_cache(self):
        mode = CoherenceMode.FULL_COH
        assert mode.uses_private_cache
        assert mode.uses_llc
        assert not mode.requires_private_flush

    def test_labels_match_paper_naming(self):
        labels = [mode.label for mode in COHERENCE_MODES]
        assert labels == ["non-coh-dma", "llc-coh-dma", "coh-dma", "full-coh"]

    def test_str_is_label(self):
        assert str(CoherenceMode.COH_DMA) == "coh-dma"


class TestLookups:
    @pytest.mark.parametrize("mode", list(CoherenceMode))
    def test_label_roundtrip(self, mode):
        assert mode_from_label(mode.label) is mode

    def test_unknown_label_raises(self):
        with pytest.raises(CoherenceError):
            mode_from_label("half-coherent")

    def test_mode_index_is_canonical_order(self):
        for index, mode in enumerate(COHERENCE_MODES):
            assert mode_index(mode) == index
