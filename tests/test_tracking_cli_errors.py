"""Error-path contract of the ``python -m repro.tracking`` CLI.

Same convention as ``tests/test_models_cli_errors.py``: every failure a
user actually hits — an unconfigured or missing document directory, an
unknown run id, a corrupt manifest — must exit with code 2 and a single
``error: ...`` line on stderr, never a traceback.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_tracking_cli(*args: str) -> subprocess.CompletedProcess:
    """Run ``python -m repro.tracking <args>`` as a user would."""
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    return subprocess.run(
        [sys.executable, "-m", "repro.tracking", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def assert_clean_error(completed: subprocess.CompletedProcess, *fragments: str):
    """One ``error:`` line on stderr, no traceback, exit code 2."""
    assert completed.returncode == 2, (
        f"expected exit code 2, got {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert "Traceback" not in completed.stderr
    assert "Traceback" not in completed.stdout
    error_lines = [
        line for line in completed.stderr.splitlines() if line.startswith("error: ")
    ]
    assert len(error_lines) == 1, f"stderr:\n{completed.stderr}"
    for fragment in fragments:
        assert fragment in error_lines[0], f"{fragment!r} not in {error_lines[0]!r}"


@pytest.mark.slow
class TestTrackingCliErrors:
    """The read verbs validate their inputs before printing anything."""

    def test_runs_without_a_manifest_dir(self):
        completed = run_tracking_cli("runs")
        assert_clean_error(completed, "no manifest directory", "--manifest-dir")

    def test_runs_with_a_missing_manifest_dir(self, tmp_path):
        completed = run_tracking_cli(
            "runs", "--manifest-dir", str(tmp_path / "never-created")
        )
        assert_clean_error(completed, "manifest directory", "does not exist")

    def test_run_with_an_unknown_id(self, tmp_path):
        completed = run_tracking_cli("run", "ghost", "--manifest-dir", str(tmp_path))
        assert_clean_error(completed, "no run", "ghost")

    def test_run_with_a_corrupt_manifest(self, tmp_path):
        (tmp_path / "broken.manifest.jsonl").write_text(
            json.dumps({"kind": "header", "version": 99, "spec": "s"}) + "\n"
        )
        completed = run_tracking_cli(
            "run", "broken", "--manifest-dir", str(tmp_path)
        )
        assert_clean_error(completed, "version 99")

    def test_models_with_a_missing_registry(self, tmp_path):
        completed = run_tracking_cli(
            "models", "--models-dir", str(tmp_path / "never-created")
        )
        assert_clean_error(completed, "models directory", "does not exist")

    def test_bench_without_a_bench_dir(self):
        completed = run_tracking_cli("bench")
        assert_clean_error(completed, "no bench directory", "--bench-dir")
