"""Docstring enforcement for the public API surface (mirrors ruff D1).

CI's lint job runs ruff with the missing-docstring rules (D100-D104,
D106) over ``repro/__init__.py``, ``repro.core``, ``repro.models``,
``repro.scenarios``, ``repro.serving``, ``repro.sim``, ``repro.soc``,
``repro.perf``, ``repro.net``, ``repro.store``, and ``repro.tracking``;
this test applies the
same policy with the standard library's ``ast`` so the check also runs in
environments without ruff — every module, public class, and public
function/method in those trees must carry a docstring whose first line is
a non-empty summary.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Tuple

import pytest

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: The scoped public API surface (same paths as CI's ruff invocation).
SCOPED_FILES: List[Path] = sorted(
    [SRC / "__init__.py"]
    + list((SRC / "core").rglob("*.py"))
    + list((SRC / "models").rglob("*.py"))
    + list((SRC / "scenarios").rglob("*.py"))
    + list((SRC / "serving").rglob("*.py"))
    + list((SRC / "sim").rglob("*.py"))
    + list((SRC / "soc").rglob("*.py"))
    + list((SRC / "perf").rglob("*.py"))
    + list((SRC / "net").rglob("*.py"))
    + list((SRC / "store").rglob("*.py"))
    + list((SRC / "tracking").rglob("*.py"))
    + [SRC / "utils" / "host.py"]
    + list((SRC / "experiments" / "sweep" / "backends").rglob("*.py"))
    + list((SRC / "experiments" / "sweep" / "distributed").rglob("*.py"))
    + [
        SRC / "experiments" / "sweep" / "config.py",
        SRC / "experiments" / "sweep" / "manifest.py",
        SRC / "experiments" / "sweep" / "shard.py",
        SRC / "experiments" / "sweep" / "merge.py",
    ]
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk_definitions(
    node: ast.AST, inside_class: bool = False
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (kind, node) for public defs that the D1 rules cover."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            if _is_public(child.name):
                yield "class", child
                yield from _walk_definitions(child, inside_class=True)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(child.name):
                yield ("method" if inside_class else "function"), child
            # Nested defs inside functions are implementation details.
        elif isinstance(child, (ast.If, ast.Try)):
            yield from _walk_definitions(child, inside_class=inside_class)


def _missing_docstrings(path: Path) -> List[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: List[str] = []
    module_doc = ast.get_docstring(tree)
    if not module_doc or not module_doc.strip().splitlines()[0].strip():
        problems.append(f"{path}: missing module docstring")
    for kind, node in _walk_definitions(tree):
        doc = ast.get_docstring(node)  # type: ignore[arg-type]
        if not doc or not doc.strip().splitlines()[0].strip():
            problems.append(
                f"{path}:{node.lineno}: {kind} {node.name!r} "  # type: ignore[attr-defined]
                "is missing a docstring summary"
            )
    return problems


@pytest.mark.parametrize(
    "path", SCOPED_FILES, ids=[str(p.relative_to(SRC)) for p in SCOPED_FILES]
)
def test_public_api_is_documented(path: Path):
    """Every public def in the scoped modules has a docstring summary."""
    problems = _missing_docstrings(path)
    assert problems == [], "\n".join(problems)


def test_scope_covers_expected_modules():
    """The scoped surface includes the packages the policy names."""
    names = {str(p.relative_to(SRC)) for p in SCOPED_FILES}
    assert "__init__.py" in names
    assert any(name.startswith("core/") for name in names)
    assert any(name.startswith("models/") for name in names)
    assert any(name.startswith("scenarios/") for name in names)
    assert any(name.startswith("serving/") for name in names)
    assert any(name.startswith("sim/") for name in names)
    assert any(name.startswith("soc/") for name in names)
    assert any(name.startswith("perf/") for name in names)
    assert any(name.startswith("net/") for name in names)
    assert any(name.startswith("store/") for name in names)
    assert any(name.startswith("tracking/") for name in names)
    assert "utils/host.py" in names
    assert any(name.startswith("experiments/sweep/backends/") for name in names)
    assert any(name.startswith("experiments/sweep/distributed/") for name in names)
    assert "experiments/sweep/config.py" in names
    assert "experiments/sweep/manifest.py" in names
    assert "experiments/sweep/shard.py" in names
    assert "experiments/sweep/merge.py" in names
