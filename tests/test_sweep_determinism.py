"""Determinism and caching tests for the sweep orchestration subsystem.

The sweep contract: the same :class:`SweepSpec` run serially, with multiple
workers, or with its jobs shuffled produces identical results dict-for-dict,
and a warm cache returns byte-identical payloads without re-simulating any
job.  The figure-level tests assert the same property through the public
``run_*`` entry points (the acceptance path is the Figure 9 ``socs`` sweep).
"""

from __future__ import annotations

import json

import pytest

from repro.accelerators.library import accelerator_by_name
from repro.errors import SweepError
from repro.experiments.common import motivation_setup
from repro.experiments.isolation import _isolation_job, run_isolation_experiment
from repro.experiments.socs import run_soc_comparison
from repro.experiments.sweep import Job, ResultCache, SweepRunner, SweepSpec
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.units import KB
from repro.utils.rng import SeededRNG

#: Reduced Figure 9 grid used by the acceptance tests: two SoC families,
#: four policies, one training iteration.
SOCS_LABELS = ("SoC1", "SoC6")
SOCS_KINDS = ("fixed-non-coh-dma", "fixed-coh-dma", "manual", "cohmeleon")


def _mul_job(params, rng):
    """Cheap deterministic job used by the unit-level tests."""
    return {"product": params["a"] * params["b"], "draw": rng.randint(0, 10**9)}


def small_isolation_spec() -> SweepSpec:
    """A small but real simulation grid (one accelerator, two modes)."""
    setup = motivation_setup(
        accelerators=[accelerator_by_name("FFT")], line_bytes=256
    )
    jobs = [
        Job(
            key=f"FFT/{mode.label}",
            fn=_isolation_job,
            params={
                "setup": setup,
                "accelerator": setup.accelerators[0],
                "footprint_bytes": 16 * KB,
                "mode": mode,
                "repeats": 1,
            },
            seed=setup.seed,
        )
        for mode in (CoherenceMode.NON_COH_DMA, CoherenceMode.COH_DMA)
    ]
    return SweepSpec(name="iso-small", jobs=jobs)


class RecordingRunner(SweepRunner):
    """A runner that keeps every SweepResult for later inspection."""

    def __init__(self, workers=1, cache=None):
        super().__init__(workers=workers, cache=cache)
        self.results = []

    def run(self, spec):
        result = super().run(spec)
        self.results.append(result)
        return result

    @property
    def total_executed(self):
        return sum(result.executed for result in self.results)

    @property
    def total_cache_hits(self):
        return sum(result.cache_hits for result in self.results)


class TestJobIdentity:
    def test_fingerprint_is_stable_and_parameter_sensitive(self):
        job = Job(key="a", fn=_mul_job, params={"a": 3, "b": 4}, seed=7)
        same = Job(key="renamed", fn=_mul_job, params={"b": 4, "a": 3}, seed=7)
        assert job.fingerprint() == same.fingerprint()  # key order irrelevant
        assert job.fingerprint() != Job(key="a", fn=_mul_job, params={"a": 3, "b": 5}, seed=7).fingerprint()
        assert job.fingerprint() != Job(key="a", fn=_mul_job, params={"a": 3, "b": 4}, seed=8).fingerprint()

    def test_rng_stream_depends_only_on_fingerprint(self):
        job = Job(key="a", fn=_mul_job, params={"a": 1, "b": 2}, seed=5)
        twin = Job(key="b", fn=_mul_job, params={"a": 1, "b": 2}, seed=5)
        assert job.derive_rng().random() == twin.derive_rng().random()
        other = Job(key="a", fn=_mul_job, params={"a": 1, "b": 3}, seed=5)
        assert job.derive_rng().random() != other.derive_rng().random()

    def test_underscore_params_are_transport_only(self):
        """Underscore-prefixed params reach the fn but not the fingerprint.

        They carry delivery details (e.g. the path a digest-pinned
        artifact is re-loaded from); relocating such a file must not
        invalidate the cache, while content-bearing params still must.
        """
        plain = Job(key="a", fn=_mul_job, params={"a": 3, "b": 4}, seed=7)
        with_transport = Job(
            key="a", fn=_mul_job, params={"a": 3, "b": 4, "_path": "/tmp/x"}, seed=7
        )
        moved = Job(
            key="a", fn=_mul_job, params={"a": 3, "b": 4, "_path": "/mnt/y"}, seed=7
        )
        assert plain.fingerprint() == with_transport.fingerprint() == moved.fingerprint()
        assert (
            plain.fingerprint()
            != Job(key="a", fn=_mul_job, params={"a": 3, "b": 4, "c": 0}, seed=7).fingerprint()
        )

    def test_duplicate_keys_rejected(self):
        job = Job(key="a", fn=_mul_job, params={"a": 1, "b": 2})
        with pytest.raises(SweepError):
            SweepSpec(name="dup", jobs=[job, job])

    def test_local_functions_rejected(self):
        def local(params, rng):  # pragma: no cover - never executed
            return {}

        with pytest.raises(SweepError):
            Job(key="a", fn=local)


class TestSpecDeterminism:
    def test_serial_two_workers_and_shuffled_agree(self):
        spec = small_isolation_spec()
        serial = SweepRunner(workers=1).run(spec)
        parallel = SweepRunner(workers=2).run(spec)
        shuffled = SweepRunner(workers=1).run(spec.shuffled(SeededRNG(99)))
        assert dict(serial.payloads) == dict(parallel.payloads)
        assert dict(serial.payloads) == dict(shuffled.payloads)
        # Grid order is restored regardless of execution order.
        assert list(serial.payloads) == spec.keys()
        assert list(parallel.payloads) == spec.keys()

    def test_mutating_job_fn_cannot_leak_between_runs(self):
        # Job.execute() hands the fn a deep copy of the params, so a fn that
        # mutates its inputs (training the policy held in params, as
        # _policy_evaluation_job does) returns identical payloads when the
        # same spec object is run repeatedly in-process.
        from repro.core.policies import CohmeleonPolicy
        from repro.experiments.common import _policy_evaluation_job, traffic_setup
        from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec

        setup = traffic_setup("SoC1", seed=5)
        name = setup.accelerators[0].name
        app = ApplicationSpec(
            name="tiny",
            phases=(
                PhaseSpec(
                    name="p",
                    threads=(
                        ThreadSpec(
                            thread_id="t0",
                            accelerator_chain=(name,),
                            footprint_bytes=32 * KB,
                        ),
                    ),
                ),
            ),
        )
        spec = SweepSpec(
            name="mutating",
            jobs=[
                Job(
                    key="cohmeleon",
                    fn=_policy_evaluation_job,
                    params={
                        "setup": setup,
                        "policy": CohmeleonPolicy(),
                        "policy_name": "cohmeleon",
                        "test_app": app,
                        "training_app": app,
                        "training_iterations": 2,
                    },
                    seed=setup.seed,
                )
            ],
        )
        runner = SweepRunner(workers=1)
        assert dict(runner.run(spec).payloads) == dict(runner.run(spec).payloads)

    def test_cheap_grid_parallel_matches_serial(self):
        spec = SweepSpec(
            name="mul",
            jobs=[
                Job(key=f"j{i}", fn=_mul_job, params={"a": i, "b": i + 1}, seed=3)
                for i in range(8)
            ],
        )
        serial = SweepRunner(workers=1).run(spec)
        parallel = SweepRunner(workers=4).run(spec)
        assert dict(serial.payloads) == dict(parallel.payloads)


class TestResultCache:
    def test_warm_cache_returns_byte_identical_payloads(self, tmp_path):
        cache = ResultCache(tmp_path / "sweep-cache")
        spec = small_isolation_spec()
        runner = SweepRunner(workers=1, cache=cache)

        cold = runner.run(spec)
        assert cold.executed == len(spec) and cold.cache_hits == 0
        stored = {fp: cache.path_for(fp).read_bytes() for fp in cache.fingerprints()}
        assert len(stored) == len(spec)

        warm = runner.run(spec)
        assert warm.executed == 0 and warm.cache_hits == len(spec)
        assert {fp: cache.path_for(fp).read_bytes() for fp in cache.fingerprints()} == stored
        assert json.dumps(dict(cold.payloads), sort_keys=True) == json.dumps(
            dict(warm.payloads), sort_keys=True
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job(key="a", fn=_mul_job, params={"a": 2, "b": 3}, seed=1)
        fingerprint = job.fingerprint()
        cache.put(fingerprint, job.key, {"product": 6})
        cache.path_for(fingerprint).write_text("{not json")
        assert cache.get(fingerprint) is None
        result = SweepRunner(workers=1, cache=cache).run(SweepSpec("c", [job]))
        assert result.executed == 1
        assert cache.get(fingerprint) == {"product": 6, "draw": result["a"]["draw"]}

    def test_unserializable_payload_raises(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(SweepError):
            cache.put("ab" * 32, "bad", {"oops": object()})

    def test_killed_writer_tmp_files_are_ignored_and_swept(self, tmp_path):
        """Regression: a worker killed mid-put leaves `<fp>.tmp.<pid>` behind.

        Orphaned temp files must be invisible to fingerprints()/len(),
        must not block a rerun from committing the real entry, and must be
        swept by clear() instead of accumulating forever.
        """
        cache = ResultCache(tmp_path)
        job = Job(key="a", fn=_mul_job, params={"a": 2, "b": 3}, seed=1)
        fingerprint = job.fingerprint()
        # Simulate the kill: the temp file exists, os.replace never ran.
        orphan = cache.path_for(fingerprint).with_suffix(".tmp.99999")
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_text('{"fingerprint": "truncated mid-wri')
        stale = cache.path_for(fingerprint).parent / "0123.tmp.4"
        stale.write_text("")

        assert len(cache) == 0
        assert list(cache.fingerprints()) == []
        assert fingerprint not in cache
        assert cache.get(fingerprint) is None
        assert set(cache.stale_tmp_files()) == {stale, orphan}

        # The rerun commits the entry; the orphans are still not entries.
        result = SweepRunner(workers=1, cache=cache).run(SweepSpec("c", [job]))
        assert result.executed == 1
        assert list(cache.fingerprints()) == [fingerprint]
        assert len(cache) == 1

        # clear() counts the one entry and sweeps every orphan.
        assert cache.clear() == 1
        assert not orphan.exists() and not stale.exists()
        assert len(cache) == 0 and cache.stale_tmp_files() == []


@pytest.mark.slow
class TestFigureSweepDeterminism:
    """Acceptance: the socs figure sweep is worker-count invariant and cached."""

    @pytest.fixture(scope="class")
    def serial_comparison(self):
        return run_soc_comparison(
            labels=SOCS_LABELS,
            policy_kinds=SOCS_KINDS,
            training_iterations=1,
            seed=2,
            runner=SweepRunner(workers=1),
        )

    def test_socs_two_workers_match_serial(self, serial_comparison):
        parallel = run_soc_comparison(
            labels=SOCS_LABELS,
            policy_kinds=SOCS_KINDS,
            training_iterations=1,
            seed=2,
            runner=SweepRunner(workers=2),
        )
        assert parallel.points == serial_comparison.points
        assert {
            soc: {name: ev.to_dict() for name, ev in evaluations.items()}
            for soc, evaluations in parallel.evaluations.items()
        } == {
            soc: {name: ev.to_dict() for name, ev in evaluations.items()}
            for soc, evaluations in serial_comparison.evaluations.items()
        }

    def test_socs_warm_cache_skips_every_job(self, serial_comparison, tmp_path):
        cache = ResultCache(tmp_path / "socs-cache")
        cold_runner = RecordingRunner(workers=2, cache=cache)
        cold = run_soc_comparison(
            labels=SOCS_LABELS,
            policy_kinds=SOCS_KINDS,
            training_iterations=1,
            seed=2,
            runner=cold_runner,
        )
        assert cold_runner.total_executed == len(SOCS_LABELS)

        warm_runner = RecordingRunner(workers=2, cache=cache)
        warm = run_soc_comparison(
            labels=SOCS_LABELS,
            policy_kinds=SOCS_KINDS,
            training_iterations=1,
            seed=2,
            runner=warm_runner,
        )
        assert warm_runner.total_executed == 0
        assert warm_runner.total_cache_hits == len(SOCS_LABELS)
        assert warm.points == cold.points == serial_comparison.points

    def test_isolation_experiment_worker_invariance(self):
        setup = motivation_setup(
            accelerators=[accelerator_by_name("Sort")], line_bytes=256
        )
        kwargs = dict(
            accelerators=setup.accelerators,
            sizes={"Small": 16 * KB},
            modes=tuple(COHERENCE_MODES),
        )
        serial = run_isolation_experiment(setup, runner=SweepRunner(workers=1), **kwargs)
        parallel = run_isolation_experiment(setup, runner=SweepRunner(workers=2), **kwargs)
        assert serial == parallel
