"""Documentation checks: generated gallery sync and the mkdocs build.

The scenario gallery (the marked block in README.md and the whole
``docs/scenario-gallery.md`` page) is generated from the registry; these
tests fail when either is stale, pointing at ``python -m repro.scenarios
gallery``.  The mkdocs build itself runs only where mkdocs is installed
(CI's docs job always has it), but the cheap structural checks — nav
entries exist, internal links resolve — run everywhere.
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios.gallery import DOCS_PAGE, README_BEGIN, README_END, sync_gallery

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS_DIR = REPO_ROOT / "docs"


def test_gallery_files_are_in_sync():
    """README block and docs gallery page match the current registry."""
    stale = sync_gallery(REPO_ROOT, check=True)
    assert stale == [], (
        f"stale generated files {stale}; run `python -m repro.scenarios gallery`"
    )


def test_readme_has_gallery_markers():
    """The README keeps the generated-block markers the tool splices into."""
    text = (REPO_ROOT / "README.md").read_text()
    assert README_BEGIN in text
    assert README_END in text
    assert text.index(README_BEGIN) < text.index(README_END)


def test_gallery_lists_required_scenario_mix():
    """The gallery covers case studies, example ports, and new scenarios."""
    page = (REPO_ROOT / DOCS_PAGE).read_text()
    rows = re.findall(r"^\| \[`([a-z0-9-]+)`\]", page, flags=re.MULTILINE)
    assert len(rows) >= 11
    for required in (
        "soc4-mixed",
        "soc5-autonomous",
        "soc6-vision",
        "quickstart",
        "multi-tenant-inference",
        "streaming-dsp-chain",
        "v2v-burst-best-effort",
    ):
        assert required in rows


def test_docs_nav_files_exist():
    """Every page referenced from mkdocs.yml's nav exists under docs/."""
    text = (REPO_ROOT / "mkdocs.yml").read_text()
    pages = re.findall(r":\s*([\w-]+\.md)\s*$", text, flags=re.MULTILINE)
    assert "architecture.md" in pages and "scenario-authoring.md" in pages
    for page in pages:
        assert (DOCS_DIR / page).is_file(), f"mkdocs nav references missing {page}"


def test_docs_internal_links_resolve():
    """Relative markdown links between docs pages point at real files."""
    for page in DOCS_DIR.glob("*.md"):
        for target in re.findall(r"\]\(([\w./-]+?\.md)(?:#[\w-]+)?\)", page.read_text()):
            resolved = (page.parent / target).resolve()
            assert resolved.is_file(), f"{page.name} links to missing {target}"


@pytest.mark.slow
@pytest.mark.skipif(shutil.which("mkdocs") is None, reason="mkdocs not installed")
def test_mkdocs_build_strict(tmp_path):
    """`mkdocs build --strict` succeeds (CI's docs job runs exactly this)."""
    completed = subprocess.run(
        [shutil.which("mkdocs"), "build", "--strict", "--site-dir", str(tmp_path / "site")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr


def test_gallery_cli_check(tmp_path):
    """The `gallery --check` CLI exits 0 when files are in sync."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro.scenarios", "gallery", "--check"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        timeout=120,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
