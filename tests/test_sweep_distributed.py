"""Tests of the distributed sweep layer and the unified RunConfig API.

Covers the four pieces PR 9 added, bottom-up:

* :class:`RunConfig` — construction-time validation, the shared CLI
  flag set, and the deprecated-kwargs adapter on ``SweepRunner``;
* lease partitioning and the batch backend (digest-identical to serial
  for every lease granularity);
* the :class:`LeaseBoard` lifecycle (acquire, expiry + reissue,
  idempotent completion, digest-mismatch refusal) and the wire
  protocol's fingerprint/digest verification;
* the coordinator/worker loop end to end: in-process workers, and a
  subprocess test that SIGKILLs a worker mid-lease and asserts the
  lease is reissued and the merged results stay bit-identical.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from io import StringIO
from pathlib import Path

import pytest

import repro
from repro.errors import SweepError
from repro.experiments.sweep import (
    DistributedBackend,
    Job,
    RunConfig,
    SweepRunner,
    SweepSpec,
    add_runner_arguments,
    lease_partition,
    payload_digest,
    run_worker,
)
from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.distributed.lease import LeaseBoard
from repro.experiments.sweep.distributed.protocol import (
    DIST_PROTOCOL_VERSION,
    ERROR_STATUS,
    WireError,
    decode_job,
    encode_job,
    encode_result,
    error_envelope,
)
from repro.experiments.sweep.shard import ShardSpec

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _mul_job(params, rng):
    """Cheap deterministic job used throughout these tests."""
    return {"product": params["a"] * params["b"], "draw": rng.randint(0, 10**9)}


def _grid(n=9, name="grid") -> SweepSpec:
    return SweepSpec(
        name=name,
        jobs=[
            Job(key=f"j{i}", fn=_mul_job, params={"a": i, "b": i + 1}, seed=3)
            for i in range(n)
        ],
    )


def _serial_payloads(spec: SweepSpec) -> dict:
    return dict(SweepRunner(config=RunConfig(workers=1, backend="serial")).run(spec).payloads)


def _get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


# ----------------------------------------------------------------------
# RunConfig: validation, CLI flags, deprecation adapter
# ----------------------------------------------------------------------
class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.workers == 1
        assert config.cache is None
        assert config.backend is None
        assert config.manifest_dir is None
        assert config.resume is False
        assert config.shard is None
        assert config.jobs_per_lease is None

    def test_frozen(self):
        with pytest.raises(Exception):
            RunConfig().workers = 4  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"workers": 0}, "workers must be >= 1, got 0"),
            ({"resume": True}, "resume requires a manifest_dir"),
            ({"jobs_per_lease": 0}, "jobs_per_lease must be >= 1"),
        ],
    )
    def test_validation_messages(self, kwargs, match):
        with pytest.raises(SweepError, match=match):
            RunConfig(**kwargs)

    def test_resume_requires_cache(self, tmp_path):
        with pytest.raises(SweepError, match="resume requires a cache"):
            RunConfig(resume=True, manifest_dir=tmp_path)

    def test_with_backend(self):
        config = RunConfig(workers=4)
        pinned = config.with_backend("batch")
        assert pinned.backend == "batch" and pinned.workers == 4
        assert config.backend is None  # original untouched

    def _parse(self, argv):
        parser = argparse.ArgumentParser()
        add_runner_arguments(parser)
        return parser.parse_args(argv)

    def test_from_args_defaults(self, tmp_path):
        config = RunConfig.from_args(self._parse(["--cache-dir", str(tmp_path / "c")]))
        assert config.workers >= 1  # autodetected
        assert isinstance(config.cache, ResultCache)
        # Manifests default to living beside the cache.
        assert config.manifest_dir == tmp_path / "c" / "manifests"
        assert config.backend is None  # "auto" maps to the default policy

    def test_from_args_no_cache(self):
        config = RunConfig.from_args(self._parse(["--no-cache", "--workers", "3"]))
        assert config.cache is None and config.manifest_dir is None
        assert config.workers == 3

    def test_from_args_full_surface(self, tmp_path):
        config = RunConfig.from_args(
            self._parse(
                [
                    "--cache-dir", str(tmp_path / "c"),
                    "--manifest-dir", str(tmp_path / "m"),
                    "--backend", "batch",
                    "--shard", "1/3",
                    "--jobs-per-lease", "8",
                    "--workers", "2",
                ]
            )
        )
        assert config.backend == "batch"
        assert config.manifest_dir == tmp_path / "m"
        assert config.shard == ShardSpec(index=1, count=3)
        assert config.jobs_per_lease == 8

    def test_from_args_rejects_no_cache_with_resume_or_shard(self):
        for extra in (["--resume"], ["--shard", "1/2"]):
            with pytest.raises(SweepError, match="drop --no-cache"):
                RunConfig.from_args(self._parse(["--no-cache"] + extra))

    def test_from_args_tolerates_missing_flags(self):
        # Front ends that drop flag groups (the diskless worker) still
        # share this constructor: absent attributes mean their defaults.
        parser = argparse.ArgumentParser()
        add_runner_arguments(parser, cache=False, manifest=False, shard=False, lease=False)
        config = RunConfig.from_args(parser.parse_args(["--workers", "2"]))
        assert config.workers == 2 and config.cache is None

    def test_cli_rejects_bad_flag_values(self):
        parser = argparse.ArgumentParser()
        add_runner_arguments(parser)
        for argv in (["--workers", "0"], ["--jobs-per-lease", "0"], ["--shard", "3/2"]):
            with pytest.raises(SystemExit):
                parser.parse_args(argv)


class TestDeprecatedKwargs:
    def test_legacy_kwargs_warn_and_adapt(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            runner = SweepRunner(workers=2, cache=cache, backend="thread")
        assert runner.config == RunConfig(workers=2, cache=cache, backend="thread")
        assert runner.workers == 2 and runner.cache is cache
        assert runner.backend == "thread"

    def test_config_form_does_not_warn(self, recwarn):
        runner = SweepRunner(config=RunConfig(workers=2))
        assert runner.workers == 2
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_mixing_config_and_legacy_rejected(self):
        with pytest.raises(SweepError, match="not both"):
            SweepRunner(config=RunConfig(), workers=2)

    def test_config_must_be_a_runconfig(self):
        with pytest.raises(SweepError, match="must be a RunConfig"):
            SweepRunner(config={"workers": 2})  # type: ignore[arg-type]

    def test_properties_are_read_only(self):
        runner = SweepRunner(config=RunConfig())
        with pytest.raises(AttributeError):
            runner.workers = 4  # type: ignore[misc]


# ----------------------------------------------------------------------
# Lease partitioning and the batch backend
# ----------------------------------------------------------------------
class TestLeasePartition:
    def test_every_job_exactly_once(self):
        jobs = _grid(n=17).jobs
        groups = lease_partition(jobs, 4)
        flat = [job.fingerprint() for group in groups for job in group]
        assert sorted(flat) == sorted(job.fingerprint() for job in jobs)
        assert all(groups)  # no empty leases

    def test_group_count_follows_ceiling(self):
        jobs = _grid(n=8).jobs
        # ceil(8/3) = 3 target groups; hash collisions can only merge
        # groups, never create extras.
        assert 1 <= len(lease_partition(jobs, 3)) <= 3
        assert len(lease_partition(jobs, 100)) == 1
        assert lease_partition([], 5) == []

    def test_deterministic_and_order_insensitive(self):
        jobs = list(_grid(n=12).jobs)
        first = lease_partition(jobs, 4)
        again = lease_partition(jobs, 4)
        shuffled = lease_partition(list(reversed(jobs)), 4)
        as_sets = lambda groups: [  # noqa: E731 - local helper
            {job.fingerprint() for job in group} for group in groups
        ]
        assert as_sets(first) == as_sets(again)
        # Assignment is by fingerprint hash, so input order is irrelevant
        # (group membership is identical; only intra-group order shifts).
        assert sorted(map(sorted, as_sets(first))) == sorted(map(sorted, as_sets(shuffled)))

    def test_rejects_bad_granularity(self):
        with pytest.raises(SweepError, match="jobs_per_lease"):
            lease_partition(_grid(n=2).jobs, 0)


class TestBatchBackend:
    @pytest.mark.parametrize("per_lease", [1, 3, 100, None])
    def test_matches_serial_for_every_granularity(self, per_lease):
        spec = _grid(n=13)
        reference = _serial_payloads(spec)
        result = SweepRunner(
            config=RunConfig(workers=2, backend="batch", jobs_per_lease=per_lease)
        ).run(spec)
        assert dict(result.payloads) == reference
        assert list(result.payloads) == spec.keys()  # grid order restored

    def test_single_worker_falls_back_to_serial(self):
        spec = _grid(n=4)
        result = SweepRunner(config=RunConfig(workers=1, backend="batch")).run(spec)
        assert result.workers_used == 1
        assert dict(result.payloads) == _serial_payloads(spec)


# ----------------------------------------------------------------------
# LeaseBoard lifecycle
# ----------------------------------------------------------------------
def _triple(job, payload):
    return (job.fingerprint(), payload_digest(payload), payload)


class TestLeaseBoard:
    def _payload(self, job):
        return {"product": job.params["a"] * job.params["b"]}

    def test_acquire_and_complete(self):
        jobs = _grid(n=4).jobs
        board = LeaseBoard(jobs, jobs_per_lease=2, lease_timeout=60.0)
        assert board.total_jobs == 4 and not board.done
        lease = board.acquire("w1", now=0.0)
        assert lease is not None and lease.attempts == 1
        receipt = board.complete(
            lease.lease_id,
            "w1",
            [_triple(job, self._payload(job)) for job in lease.jobs],
            now=1.0,
        )
        assert len(receipt.accepted) == len(lease.jobs)
        assert receipt.duplicates == 0 and receipt.lease_known
        assert board.completed_jobs == len(lease.jobs)
        assert "w1" in board.workers_completed

    def test_drain_to_done(self):
        jobs = _grid(n=5).jobs
        board = LeaseBoard(jobs, jobs_per_lease=2, lease_timeout=60.0)
        while not board.done:
            lease = board.acquire("w", now=0.0)
            assert lease is not None
            board.complete(
                lease.lease_id,
                "w",
                [_triple(job, self._payload(job)) for job in lease.jobs],
                now=0.0,
            )
        assert board.acquire("w", now=0.0) is None
        assert board.snapshot()["completed"] == 5

    def test_expired_lease_is_reissued(self):
        jobs = _grid(n=2).jobs
        board = LeaseBoard(jobs, jobs_per_lease=2, lease_timeout=10.0)
        first = board.acquire("victim", now=0.0)
        assert first is not None
        # Before the deadline nothing is reclaimable.
        assert board.acquire("survivor", now=5.0) is None
        reissued = board.acquire("survivor", now=10.0)  # deadline passed
        assert reissued is not None
        assert reissued.lease_id == first.lease_id
        assert reissued.attempts == 2 and reissued.worker == "survivor"
        assert board.reissues == 1
        assert board.snapshot()["reissues"] == 1

    def test_reissue_filters_already_completed_jobs(self):
        jobs = _grid(n=4).jobs
        board = LeaseBoard(jobs, jobs_per_lease=4, lease_timeout=10.0)
        lease = board.acquire("w1", now=0.0)
        done, left = lease.jobs[:2], lease.jobs[2:]
        board.complete(
            lease.lease_id, "w1", [_triple(j, self._payload(j)) for j in done], now=1.0
        )
        reissued = board.acquire("w2", now=20.0)
        assert reissued is not None
        assert {j.fingerprint() for j in reissued.jobs} == {
            j.fingerprint() for j in left
        }

    def test_duplicate_completion_is_idempotent(self):
        jobs = _grid(n=2).jobs
        board = LeaseBoard(jobs, jobs_per_lease=2, lease_timeout=10.0)
        lease = board.acquire("w1", now=0.0)
        results = [_triple(j, self._payload(j)) for j in lease.jobs]
        board.complete(lease.lease_id, "w1", results, now=1.0)
        # The same results again — e.g. a worker that lost the race
        # against its own expiry — dedupe instead of erroring.
        receipt = board.complete(lease.lease_id, "w1", results, now=2.0)
        assert receipt.duplicates == len(results) and not receipt.accepted

    def test_stale_lease_id_is_not_an_error(self):
        jobs = _grid(n=1).jobs
        board = LeaseBoard(jobs, jobs_per_lease=1, lease_timeout=10.0)
        lease = board.acquire("w1", now=0.0)
        receipt = board.complete(
            "lease-9999",  # unknown/stale id; results still digest-checked
            "w1",
            [_triple(j, self._payload(j)) for j in lease.jobs],
            now=1.0,
        )
        assert not receipt.lease_known and len(receipt.accepted) == 1
        assert board.done

    def test_conflicting_duplicate_digest_rejected(self):
        jobs = _grid(n=1).jobs
        board = LeaseBoard(jobs, jobs_per_lease=1, lease_timeout=10.0)
        lease = board.acquire("w1", now=0.0)
        job = lease.jobs[0]
        board.complete(lease.lease_id, "w1", [_triple(job, {"v": 1})], now=1.0)
        with pytest.raises(WireError, match="determinism contract") as excinfo:
            board.complete(lease.lease_id, "w2", [_triple(job, {"v": 2})], now=2.0)
        assert excinfo.value.error_type == "digest-mismatch"

    def test_mis_stamped_digest_rejected(self):
        jobs = _grid(n=1).jobs
        board = LeaseBoard(jobs, jobs_per_lease=1, lease_timeout=10.0)
        lease = board.acquire("w1", now=0.0)
        job = lease.jobs[0]
        with pytest.raises(WireError, match="does not match the stamped digest"):
            board.complete(
                lease.lease_id,
                "w1",
                [(job.fingerprint(), "0" * 64, {"v": 1})],
                now=1.0,
            )

    def test_unknown_fingerprint_rejected(self):
        board = LeaseBoard(_grid(n=1).jobs, jobs_per_lease=1, lease_timeout=10.0)
        with pytest.raises(WireError, match="unknown job") as excinfo:
            board.complete("lease-0000", "w1", [("f" * 64, "d" * 64, {})], now=0.0)
        assert excinfo.value.error_type == "unknown-job"


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_job_roundtrip(self):
        job = _grid(n=1).jobs[0]
        decoded = decode_job(encode_job(job))
        assert decoded.fingerprint() == job.fingerprint()
        assert decoded.key == job.key and decoded.params == job.params

    def test_tampered_fingerprint_rejected(self):
        document = encode_job(_grid(n=1).jobs[0])
        document["fingerprint"] = "0" * 64
        with pytest.raises(WireError) as excinfo:
            decode_job(document)
        assert excinfo.value.error_type == "fingerprint-mismatch"

    def test_corrupt_blob_rejected(self):
        document = encode_job(_grid(n=1).jobs[0])
        document["blob"] = "not base64!!"
        with pytest.raises(WireError) as excinfo:
            decode_job(document)
        assert excinfo.value.error_type == "invalid-request"

    def test_non_job_pickle_rejected(self):
        import base64
        import pickle

        document = {
            "fingerprint": "0" * 64,
            "blob": base64.b64encode(pickle.dumps({"not": "a job"})).decode("ascii"),
        }
        with pytest.raises(WireError, match="expected a Job"):
            decode_job(document)

    def test_result_stamped_with_payload_digest(self):
        job = _grid(n=1).jobs[0]
        payload = {"product": 0, "draw": 17}
        document = encode_result(job, payload)
        assert document["digest"] == payload_digest(payload)
        assert document["fingerprint"] == job.fingerprint()

    def test_error_envelope_vocabulary_is_closed(self):
        envelope = error_envelope("digest-mismatch", "boom")
        assert envelope["error"]["status"] == ERROR_STATUS["digest-mismatch"] == 409
        with pytest.raises(SweepError, match="unknown error-envelope"):
            error_envelope("made-up", "boom")
        with pytest.raises(SweepError, match="unknown error-envelope"):
            WireError("made-up", "boom")


# ----------------------------------------------------------------------
# Coordinator + workers, end to end
# ----------------------------------------------------------------------
class TestDistributedIntegration:
    def _run_with_workers(self, spec, backend, worker_count):
        exits = []

        def pull():
            exits.append(run_worker(backend.url, poll=0.05, grace=10.0, out=StringIO()))

        threads = [
            threading.Thread(target=pull, daemon=True) for _ in range(worker_count)
        ]
        with backend:
            runner = SweepRunner(config=RunConfig(workers=1, backend=backend))
            for thread in threads:
                thread.start()
            result = runner.run(spec)
        for thread in threads:
            thread.join(timeout=30)
        assert exits == [0] * worker_count  # clean exit when coordinator closes
        return result

    def test_single_worker_matches_serial(self):
        spec = _grid(n=9)
        backend = DistributedBackend(jobs_per_lease=2, lease_timeout=30.0)
        result = self._run_with_workers(spec, backend, worker_count=1)
        assert dict(result.payloads) == _serial_payloads(spec)
        assert list(result.payloads) == spec.keys()
        assert result.workers_used == 1
        snapshot = backend.last_snapshot
        assert snapshot["completed"] == 9 and snapshot["reissues"] == 0

    def test_two_workers_match_serial(self):
        spec = _grid(n=12)
        backend = DistributedBackend(jobs_per_lease=1, lease_timeout=30.0)
        result = self._run_with_workers(spec, backend, worker_count=2)
        assert dict(result.payloads) == _serial_payloads(spec)
        assert 1 <= result.workers_used <= 2

    def test_health_and_status_routes(self):
        with DistributedBackend() as backend:
            health = _get_json(backend.url + "/healthz")
            assert health["status"] == "ok"
            assert health["protocol"] == DIST_PROTOCOL_VERSION
            assert health["serving"] is False  # no sweep attached yet
            status = _get_json(backend.url + "/v1/status")
            assert status["lease_timeout"] == backend.lease_timeout
            # Unknown routes come back as typed envelopes, not tracebacks.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_json(backend.url + "/nope")
            assert excinfo.value.code == 404
            envelope = json.loads(excinfo.value.read().decode("utf-8"))
            assert envelope["error"]["type"] == "not-found"
            # Wrong method on a POST route.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_json(backend.url + "/v1/lease")
            assert excinfo.value.code == 400

    def test_writes_happen_on_calling_thread(self, tmp_path):
        # The backend contract: on_result — and therefore every cache
        # write — fires on the runner's thread, keeping workers diskless.
        spec = _grid(n=4)
        cache = ResultCache(tmp_path / "cache")
        backend = DistributedBackend(jobs_per_lease=2, lease_timeout=30.0)
        exits = []

        def pull():
            exits.append(run_worker(backend.url, poll=0.05, grace=10.0, out=StringIO()))

        thread = threading.Thread(target=pull, daemon=True)
        with backend:
            runner = SweepRunner(
                config=RunConfig(
                    workers=1,
                    backend=backend,
                    cache=cache,
                    manifest_dir=tmp_path / "manifests",
                )
            )
            thread.start()
            result = runner.run(spec)
        thread.join(timeout=30)
        assert len(cache) == 4 and result.executed == 4
        # A rerun is pure cache hits — no worker needed at all.
        rerun = SweepRunner(config=RunConfig(workers=1, cache=cache)).run(spec)
        assert rerun.cache_hits == 4
        assert dict(rerun.payloads) == dict(result.payloads)

    def test_constructor_validation(self):
        with pytest.raises(SweepError, match="jobs_per_lease"):
            DistributedBackend(jobs_per_lease=0)
        with pytest.raises(SweepError, match="lease_timeout"):
            DistributedBackend(lease_timeout=0)


_KILL_JOB_MODULE = '''
"""Sleepy deterministic jobs importable by the worker subprocesses."""
import time


def slow_job(params, rng):
    time.sleep(params["sleep"])
    return {"value": params["x"] * 7}
'''


class TestWorkerKilledMidLease:
    """SIGKILL a worker holding a lease; the sweep must still merge clean."""

    def _spawn_worker(self, url, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([SRC_DIR, str(tmp_path)])
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.sweep",
                "worker",
                "--coordinator",
                url,
                "--poll",
                "0.05",
                "--grace",
                "30",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_lease_reissued_and_results_identical(self, tmp_path):
        (tmp_path / "distkill_jobs.py").write_text(_KILL_JOB_MODULE)
        sys.path.insert(0, str(tmp_path))
        try:
            module = importlib.import_module("distkill_jobs")
            spec = SweepSpec(
                name="distkill",
                jobs=[
                    Job(
                        key=f"j{i}",
                        fn=module.slow_job,
                        params={"x": i, "sleep": 0.5},
                        seed=11,
                    )
                    for i in range(6)
                ],
            )
            expected = {f"j{i}": {"value": i * 7} for i in range(6)}
            backend = DistributedBackend(jobs_per_lease=2, lease_timeout=1.25)
            outcome = {}

            def drive():
                runner = SweepRunner(config=RunConfig(workers=1, backend=backend))
                outcome["result"] = runner.run(spec)

            victim = survivor = None
            clean = False
            with backend:
                driver = threading.Thread(target=drive, daemon=True)
                driver.start()
                victim = self._spawn_worker(backend.url, tmp_path)
                try:
                    # Wait until the victim actually holds a lease...
                    deadline = time.monotonic() + 20
                    while time.monotonic() < deadline:
                        status = _get_json(backend.url + "/v1/status")
                        if status.get("jobs", {}).get("active_leases", 0) >= 1:
                            break
                        time.sleep(0.05)
                    else:
                        pytest.fail("victim worker never acquired a lease")
                    # ...then kill it mid-lease, hard.
                    victim.kill()
                    victim.wait(timeout=10)
                    survivor = self._spawn_worker(backend.url, tmp_path)
                    driver.join(timeout=60)
                    assert not driver.is_alive(), "sweep never completed"
                    clean = True
                finally:
                    if not clean:  # failure path: reap stray workers
                        for proc in (victim, survivor):
                            if proc is not None and proc.poll() is None:
                                proc.kill()
            if survivor is not None:
                # Once the coordinator socket closes the survivor exits 0.
                assert survivor.wait(timeout=30) == 0
            assert victim.returncode == -signal.SIGKILL

            result = outcome["result"]
            assert dict(result.payloads) == expected
            assert list(result.payloads) == spec.keys()
            # Digest-identical to an in-process serial execution.
            assert {
                key: payload_digest(payload) for key, payload in result.payloads.items()
            } == {key: payload_digest(payload) for key, payload in expected.items()}
            snapshot = backend.last_snapshot
            assert snapshot["reissues"] >= 1, "the victim's lease was never reissued"
            assert snapshot["completed"] == 6
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("distkill_jobs", None)


# ----------------------------------------------------------------------
# CLI surface of the new subcommands (no network needed)
# ----------------------------------------------------------------------
class TestCli:
    def test_worker_rejects_invalid_url(self, capsys):
        from repro.experiments.sweep.cli import main

        assert main(["worker", "--coordinator", "ftp://nope"]) == 2
        assert "invalid coordinator URL" in capsys.readouterr().out

    def test_coordinate_rejects_explicit_backend(self, capsys):
        from repro.experiments.sweep.cli import main

        code = main(["coordinate", "socs", "--no-cache", "--backend", "process"])
        assert code == 2
        assert "distributed backend" in capsys.readouterr().out

    def test_module_alias_dispatches(self):
        # python -m repro.experiments.sweep shares the experiments CLI.
        from repro.experiments.sweep import __main__ as alias
        from repro.experiments.sweep.cli import main

        assert alias.main is main
