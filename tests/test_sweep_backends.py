"""Tests of the pluggable execution backends and their shared contract.

Every backend must execute each pending job exactly once, report
completions incrementally through the callback (on the calling thread),
and produce payloads bit-identical to the serial reference — determinism
lives in the jobs, not in the executor.
"""

from __future__ import annotations

import pytest

from repro.errors import SweepError
from repro.experiments.sweep import (
    BACKEND_NAMES,
    Job,
    ResultCache,
    SweepRunner,
    SweepSpec,
    create_backend,
)
from repro.experiments.sweep.backends import (
    BatchBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
)


def _mul_job(params, rng):
    """Cheap deterministic job used throughout these tests."""
    return {"product": params["a"] * params["b"], "draw": rng.randint(0, 10**9)}


def _fail_on_three(params, rng):
    """Job that blows up for a == 3 (checkpointing tests)."""
    if params["a"] == 3:
        raise RuntimeError("job 3 exploded")
    return {"product": params["a"] * params["b"]}


def _grid(fn=_mul_job, n=8) -> SweepSpec:
    return SweepSpec(
        name="grid",
        jobs=[
            Job(key=f"j{i}", fn=fn, params={"a": i, "b": i + 1}, seed=3)
            for i in range(n)
        ],
    )


class TestRegistry:
    def test_registry_names(self):
        assert BACKEND_NAMES == ("batch", "process", "serial", "thread")

    def test_create_by_name(self):
        assert isinstance(create_backend("serial", workers=4), SerialBackend)
        assert isinstance(create_backend("process", workers=1), ProcessPoolBackend)
        assert isinstance(create_backend("thread", workers=1), ThreadPoolBackend)
        assert isinstance(create_backend("batch", workers=1), BatchBackend)

    def test_batch_backend_receives_jobs_per_lease(self):
        backend = create_backend("batch", workers=2, jobs_per_lease=7)
        assert backend.jobs_per_lease == 7
        # Other backends silently ignore the lease granularity.
        assert isinstance(
            create_backend("process", workers=2, jobs_per_lease=7),
            ProcessPoolBackend,
        )

    def test_default_policy_follows_workers(self):
        assert isinstance(create_backend(None, workers=1), SerialBackend)
        assert isinstance(create_backend(None, workers=2), ProcessPoolBackend)

    def test_instance_passes_through(self):
        backend = ThreadPoolBackend()
        assert create_backend(backend, workers=8) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(SweepError, match="unknown execution backend"):
            create_backend("gpu", workers=1)


class TestContract:
    @pytest.mark.parametrize("name", ["serial", "process", "thread", "batch"])
    def test_every_job_reported_exactly_once(self, name):
        spec = _grid()
        seen = []
        backend = create_backend(name, workers=4)
        backend.run(spec.jobs, 4, lambda job, payload: seen.append(job.key))
        assert sorted(seen) == sorted(spec.keys())

    def test_serial_reports_in_grid_order_and_returns_one(self):
        spec = _grid()
        seen = []
        used = SerialBackend().run(spec.jobs, 4, lambda job, _: seen.append(job.key))
        assert used == 1
        assert seen == spec.keys()

    @pytest.mark.parametrize("name", ["process", "thread", "batch"])
    def test_backends_match_serial_reference(self, name):
        spec = _grid()
        reference = SweepRunner(workers=1, backend="serial").run(spec)
        other = SweepRunner(workers=4, backend=name).run(spec)
        assert dict(other.payloads) == dict(reference.payloads)
        assert list(other.payloads) == spec.keys()  # grid order restored

    def test_thread_backend_with_more_workers_than_jobs(self):
        spec = _grid(n=2)
        result = SweepRunner(workers=16, backend="thread").run(spec)
        assert len(result) == 2
        # The runner clamps the request to the number of pending jobs.
        assert result.workers_used == 2

    def test_process_backend_serial_when_one_worker(self):
        spec = _grid(n=3)
        result = SweepRunner(workers=1, backend="process").run(spec)
        assert result.workers_used == 1
        assert len(result) == 3

    def test_thread_backend_fails_fast(self, tmp_path):
        # With one worker the queue drains in order: job 3 raises and the
        # remaining queued jobs must be cancelled, not executed.
        cache = ResultCache(tmp_path / "cache")
        spec = _grid(fn=_fail_on_three, n=12)
        with pytest.raises(RuntimeError, match="job 3 exploded"):
            SweepRunner(workers=1, backend="thread", cache=cache).run(spec)
        assert len(cache) < 11  # jobs after the failure never ran


class TestIncrementalCheckpointing:
    def test_completed_jobs_cached_even_when_a_later_job_fails(self, tmp_path):
        """The crash contract: a dying sweep loses at most in-flight jobs."""
        cache = ResultCache(tmp_path / "cache")
        spec = _grid(fn=_fail_on_three)
        runner = SweepRunner(workers=1, backend="serial", cache=cache)
        with pytest.raises(RuntimeError, match="job 3 exploded"):
            runner.run(spec)
        # Jobs 0..2 completed before the failure and must already be on disk.
        assert len(cache) == 3

    def test_rerun_after_failure_reuses_checkpointed_results(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        broken = _grid(fn=_fail_on_three)
        with pytest.raises(RuntimeError):
            SweepRunner(workers=1, cache=cache).run(broken)
        stored = {
            fp: cache.path_for(fp).read_bytes() for fp in cache.fingerprints()
        }
        # The rerun serves 0..2 from the cache (no rewrites) and fails at 3.
        with pytest.raises(RuntimeError):
            SweepRunner(workers=1, cache=cache).run(broken)
        assert {
            fp: cache.path_for(fp).read_bytes() for fp in cache.fingerprints()
        } == stored
        # A different job function never reuses these fingerprints.
        result = SweepRunner(workers=1, cache=cache).run(_grid(fn=_mul_job))
        assert result.cache_hits == 0 and result.executed == 8
