"""Tests of :mod:`repro.tracking` — the read-only experiment-tracking API.

The tracking stack is exercised the same way the serving stack is: the
service layer directly (no sockets), then the full asyncio HTTP
transport over loopback with ephemeral ports.  The contract under test
is *verifiable serving*: every document the API returns carries the
SHA-256 of the underlying file's raw bytes, progress reflects the live
manifest (including the crash-tolerated truncated trailing line), and
failures are typed envelopes — 404 for absent documents, 409 for
documents that exist but fail their own format's gate, never a
traceback.
"""

from __future__ import annotations

import asyncio
import hashlib
import json

import pytest

from serving_harness import make_artifact

from repro.errors import TrackingError
from repro.models.registry import ModelRegistry
from repro.serving.client import ServingClient
from repro.tracking import (
    TRACKING_PROTOCOL_VERSION,
    TrackingRequestError,
    TrackingServer,
    TrackingService,
    envelope_for_exception,
)


@pytest.fixture
def tracked(tmp_path):
    """One of everything the tracker reads: a run, a model, two reports."""
    manifest_dir = tmp_path / "manifests"
    manifest_dir.mkdir()
    header = {
        "kind": "header",
        "version": 1,
        "spec": "quick",
        "jobs": [
            {"key": "a", "fingerprint": "fp-a"},
            {"key": "b", "fingerprint": "fp-b"},
        ],
        "shard": {"index": 0, "count": 2},
        "grid_digest": "recorded",
    }
    result = {"kind": "result", "fingerprint": "fp-a", "key": "a", "digest": "d"}
    (manifest_dir / "quick-0of2.manifest.jsonl").write_text(
        json.dumps(header)
        + "\n"
        + json.dumps(result)
        + "\n"
        + '{"kind": "resu'  # crash-truncated trailing line
    )

    models_dir = tmp_path / "models"
    registry = ModelRegistry(models_dir)
    registry.root.mkdir()
    artifact = make_artifact(name="toy")
    registry.save(artifact)

    bench_dir = tmp_path / "bench"
    bench_dir.mkdir()
    before = {
        "schema": "repro-perf/1",
        "scale": "quick",
        "benchmarks": {"sim": {"rate": 100.0, "digest": "x"}},
    }
    regressed = {
        "schema": "repro-perf/1",
        "scale": "quick",
        "benchmarks": {"sim": {"rate": 10.0, "digest": "x"}},
        "before": before,
    }
    (bench_dir / "BENCH_sim.json").write_text(json.dumps(regressed))
    (bench_dir / "BENCH_junk.json").write_text(json.dumps({"not": "a report"}))

    service = TrackingService(
        manifest_dir=manifest_dir, models_dir=models_dir, bench_dir=bench_dir
    )
    return service, artifact, tmp_path


def with_tracking_server(service, test):
    """Run async ``test(server, client)`` against a live tracking server."""

    async def _run():
        async with TrackingServer(service) as server:
            async with ServingClient(server.host, server.port) as client:
                return await test(server, client)

    return asyncio.run(_run())


# ----------------------------------------------------------------------
# Service layer (no sockets)
# ----------------------------------------------------------------------
class TestService:
    """Document reads, live progress, and the digest stamp."""

    def test_runs_report_live_progress_despite_truncation(self, tracked):
        service, _, _ = tracked
        listing = service.runs()
        assert listing["protocol"] == TRACKING_PROTOCOL_VERSION
        (entry,) = listing["runs"]
        assert entry["id"] == "quick-0of2"
        # The truncated trailing record is tolerated, not counted.
        assert entry["progress"] == {"total": 2, "completed": 1, "pending": 1}
        assert entry["shard"] == {"index": 0, "count": 2}

    def test_document_sha256_matches_raw_file_bytes(self, tracked):
        service, _, tmp_path = tracked
        (entry,) = service.runs()["runs"]
        raw = (tmp_path / "manifests" / entry["file"]).read_bytes()
        assert entry["document_sha256"] == hashlib.sha256(raw).hexdigest()
        (model_entry,) = service.models()["models"]
        raw = (tmp_path / "models" / model_entry["file"]).read_bytes()
        assert model_entry["document_sha256"] == hashlib.sha256(raw).hexdigest()

    def test_run_detail_lists_per_job_records(self, tracked):
        service, _, _ = tracked
        detail = service.run("quick-0of2")
        assert [job["done"] for job in detail["jobs"]] == [True, False]
        assert detail["jobs"][0]["digest"] == "d"

    def test_unknown_run_is_not_found(self, tracked):
        service, _, _ = tracked
        with pytest.raises(TrackingRequestError, match="no run") as excinfo:
            service.run("ghost")
        assert excinfo.value.status == 404

    def test_run_id_cannot_escape_the_manifest_dir(self, tracked):
        service, _, _ = tracked
        for evil in ("../secrets", "a/b", "..", ""):
            with pytest.raises(TrackingRequestError) as excinfo:
                service.run(evil)
            assert excinfo.value.status == 400

    def test_model_detail_carries_the_verified_artifact(self, tracked):
        service, artifact, _ = tracked
        document = service.model("toy")
        assert document["artifact"]["digest"] == artifact.digest
        (entry,) = service.models()["models"]
        assert entry["provenance"]["scenario"] == "toy-scenario"

    def test_bench_flags_regressions_and_junk(self, tracked):
        service, _, _ = tracked
        trajectory = service.bench()
        by_file = {entry["file"]: entry for entry in trajectory["reports"]}
        assert by_file["BENCH_sim.json"]["gate_ok"] is False
        assert by_file["BENCH_sim.json"]["regressions"]
        assert "does not carry schema" in by_file["BENCH_junk.json"]["error"]

    def test_unconfigured_directories_are_clean_errors(self, tmp_path):
        service = TrackingService()
        with pytest.raises(TrackingError, match="--manifest-dir"):
            service.runs()
        with pytest.raises(TrackingError, match="--bench-dir"):
            service.bench()
        missing = TrackingService(manifest_dir=tmp_path / "ghost")
        with pytest.raises(TrackingError, match="does not exist"):
            missing.runs()

    def test_healthz_counts_visible_documents(self, tracked):
        service, _, _ = tracked
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["runs"] == 1
        assert health["models"] == 1
        assert health["bench_reports"] == 2


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------
class TestEnvelopes:
    """Exception-to-envelope mapping at the dispatch boundary."""

    def test_document_errors_map_to_409(self):
        from repro.errors import DocumentError

        status, envelope = envelope_for_exception(DocumentError("tampered"))
        assert status == 409
        assert envelope["error"]["type"] == "document-error"

    def test_unexpected_exceptions_stay_opaque(self):
        status, envelope = envelope_for_exception(RuntimeError("secret detail"))
        assert status == 500
        assert "secret detail" not in json.dumps(envelope)
        assert "RuntimeError" in envelope["error"]["message"]


# ----------------------------------------------------------------------
# HTTP transport (loopback, ephemeral ports)
# ----------------------------------------------------------------------
class TestHttp:
    """The GET-only route table over the shared repro.net transport."""

    def test_round_trip_all_routes(self, tracked):
        service, artifact, tmp_path = tracked

        async def scenario(server, client):
            status, health = await client.get("/healthz")
            assert (status, health["status"]) == (200, "ok")

            status, listing = await client.get("/v1/runs")
            assert status == 200
            (entry,) = listing["runs"]
            raw = (tmp_path / "manifests" / entry["file"]).read_bytes()
            assert entry["document_sha256"] == hashlib.sha256(raw).hexdigest()

            status, detail = await client.get("/v1/runs/quick-0of2")
            assert status == 200 and len(detail["jobs"]) == 2

            status, document = await client.get("/v1/models/toy")
            assert status == 200
            assert document["artifact"]["digest"] == artifact.digest

            status, trajectory = await client.get("/v1/bench")
            assert status == 200 and len(trajectory["reports"]) == 2

        with_tracking_server(service, scenario)

    def test_error_envelopes_over_the_wire(self, tracked):
        service, _, _ = tracked

        async def scenario(server, client):
            status, envelope = await client.get("/v1/runs/ghost")
            assert status == 404
            assert envelope["error"]["type"] == "not-found"

            status, envelope = await client.get("/no/such/route")
            assert status == 404

            # Wrong method on a read-only route.
            status, envelope = await client.post("/v1/runs", {})
            assert status == 400
            assert envelope["error"]["type"] == "invalid-request"

            # An upper-case model name is an invalid *request* (400)...
            status, envelope = await client.get("/v1/models/NOPE")
            assert status == 400

            # ...while an absent model is 404.
            status, envelope = await client.get("/v1/models/ghost")
            assert status == 404

        with_tracking_server(service, scenario)

    def test_tampered_artifact_served_as_409(self, tracked):
        service, _, tmp_path = tracked
        path = tmp_path / "models" / "toy.json"
        document = json.loads(path.read_text())
        document["payload"]["provenance"]["seed"] = 424242
        path.write_text(json.dumps(document))

        async def scenario(server, client):
            status, envelope = await client.get("/v1/models/toy")
            assert status == 409
            assert envelope["error"]["type"] == "document-error"
            assert "Traceback" not in json.dumps(envelope)
            # The listing survives: the broken artifact becomes an
            # error entry rather than failing the whole answer.
            status, listing = await client.get("/v1/models")
            assert status == 200
            (entry,) = listing["models"]
            assert "digest" in entry["error"]

        with_tracking_server(service, scenario)

    def test_lifecycle_double_start_is_an_error(self, tracked):
        service, _, _ = tracked

        async def scenario(server, client):
            with pytest.raises(TrackingError, match="already running"):
                await server.start()

        with_tracking_server(service, scenario)
