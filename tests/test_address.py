"""Unit tests for the address map and big-page allocator."""

from __future__ import annotations

import pytest

from repro.errors import AllocationError, ConfigurationError
from repro.soc.address import AddressMap, Allocator, Buffer, BufferSegment
from repro.units import KB, MB


@pytest.fixture
def address_map():
    return AddressMap(num_mem_tiles=4, partition_bytes=16 * MB)


@pytest.fixture
def allocator(address_map):
    return Allocator(address_map, page_bytes=1 * MB)


class TestAddressMap:
    def test_partition_of_addresses(self, address_map):
        assert address_map.partition_of(0) == 0
        assert address_map.partition_of(16 * MB) == 1
        assert address_map.partition_of(63 * MB) == 3

    def test_partition_base(self, address_map):
        assert address_map.partition_base(2) == 32 * MB

    def test_out_of_range_address(self, address_map):
        with pytest.raises(AllocationError):
            address_map.partition_of(64 * MB)

    def test_out_of_range_partition(self, address_map):
        with pytest.raises(AllocationError):
            address_map.partition_base(4)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            AddressMap(0, 1024)
        with pytest.raises(ConfigurationError):
            AddressMap(2, 0)

    def test_total_bytes(self, address_map):
        assert address_map.total_bytes == 64 * MB


class TestAllocator:
    def test_small_buffer_single_segment(self, allocator):
        buffer = allocator.allocate(64 * KB, name="b0")
        assert len(buffer.segments) == 1
        assert buffer.size == 64 * KB

    def test_round_robin_spreads_small_buffers(self, allocator):
        buffers = [allocator.allocate(64 * KB) for _ in range(4)]
        tiles = [buffer.segments[0].mem_tile for buffer in buffers]
        assert sorted(tiles) == [0, 1, 2, 3]

    def test_large_buffer_spans_partitions(self, allocator):
        buffer = allocator.allocate(3 * MB, name="big")
        assert len(buffer.mem_tiles) >= 2
        assert sum(segment.size for segment in buffer.segments) >= 3 * MB

    def test_zero_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate(0)

    def test_exhaustion_raises(self):
        small_map = AddressMap(num_mem_tiles=1, partition_bytes=1 * MB)
        allocator = Allocator(small_map, page_bytes=1 * MB)
        allocator.allocate(1 * MB)
        with pytest.raises(AllocationError):
            allocator.allocate(64 * KB)

    def test_allocations_registry_and_free(self, allocator):
        buffer = allocator.allocate(64 * KB, name="mine")
        assert "mine" in allocator.allocations
        allocator.free(buffer)
        assert "mine" not in allocator.allocations

    def test_used_per_partition_accounts_allocations(self, allocator):
        allocator.allocate(1 * MB)
        assert sum(allocator.used_per_partition()) >= 1 * MB


class TestBuffer:
    def test_footprint_per_tile_sums_to_padded_size(self, allocator):
        buffer = allocator.allocate(2 * MB + 1, name="odd")
        footprint = buffer.footprint_per_tile()
        assert sum(footprint.values()) >= buffer.size

    def test_slice_within_single_segment(self, allocator):
        buffer = allocator.allocate(256 * KB)
        segments = buffer.slice(64 * KB, 64 * KB)
        assert sum(segment.size for segment in segments) == 64 * KB
        assert segments[0].start == buffer.segments[0].start + 64 * KB

    def test_slice_across_segments(self, allocator):
        buffer = allocator.allocate(2 * MB)
        segments = buffer.slice(512 * KB, 1 * MB)
        assert sum(segment.size for segment in segments) == 1 * MB

    def test_slice_out_of_bounds(self, allocator):
        buffer = allocator.allocate(64 * KB)
        with pytest.raises(AllocationError):
            buffer.slice(0, buffer.size + 1)
        with pytest.raises(AllocationError):
            buffer.slice(-1, 10)

    def test_slice_full_buffer(self, allocator):
        buffer = allocator.allocate(1536 * KB)
        segments = buffer.slice(0, buffer.size)
        assert sum(segment.size for segment in segments) == buffer.size

    def test_segment_end(self):
        segment = BufferSegment(mem_tile=0, start=100, size=50)
        assert segment.end == 150

    def test_mem_tiles_sorted_unique(self):
        buffer = Buffer(
            name="b",
            size=200,
            segments=(
                BufferSegment(1, 0, 100),
                BufferSegment(0, 1000, 100),
            ),
        )
        assert buffer.mem_tiles == (0, 1)
