"""Tests for the scenario registry, materialization, run path, and CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweep import ResultCache, SweepRunner
from repro.scenarios import (
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    run_scenario,
    scenario_names,
    unregister,
)
from repro.scenarios.cli import main as cli_main
from repro.soc.config import soc_preset
from repro.units import KB
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec

#: Builtin scenarios the acceptance criteria call out.
REQUIRED_SCENARIOS = (
    # case studies
    "soc4-mixed",
    "soc5-autonomous",
    "soc6-vision",
    # ported examples
    "quickstart",
    "mode-exploration",
    "example-autonomous-driving",
    "example-computer-vision",
    "example-custom-traffic",
    # paper grid
    "soc0-streaming",
    "soc0-irregular",
    "soc1-mixed-traffic",
    "soc2-mixed-traffic",
    "soc3-mixed-traffic",
    # new frontier workloads
    "multi-tenant-inference",
    "streaming-dsp-chain",
    "v2v-burst-best-effort",
)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_has_the_required_scenarios():
    """Discovery registers >= 11 scenarios including every required name."""
    names = scenario_names()
    assert len(names) >= 11
    for name in REQUIRED_SCENARIOS:
        assert name in names, f"missing builtin scenario {name}"


def test_unknown_scenario_raises_with_available_names():
    """A bad lookup lists what is available."""
    with pytest.raises(ConfigurationError, match="quickstart"):
        get_scenario("no-such-scenario")


def _dummy_scenario(name: str) -> Scenario:
    def config_factory():
        """Tiny SoC for registry tests."""
        return soc_preset("SoC1")

    def accelerator_factory(config, rng):
        """One FFT."""
        from repro.accelerators.library import accelerator_by_name

        return [accelerator_by_name("FFT")]

    def application_factory(setup, instance, rng):
        """One single-thread phase."""
        return ApplicationSpec(
            name=f"{name}-{instance}",
            phases=(
                PhaseSpec(
                    name="p0",
                    threads=(ThreadSpec("t0", ("FFT",), 32 * KB),),
                ),
            ),
        )

    return Scenario(
        name=name,
        title="dummy",
        description="dummy",
        config_factory=config_factory,
        accelerator_factory=accelerator_factory,
        application_factory=application_factory,
        policy_kinds=("fixed-non-coh-dma",),
        training_iterations=0,
    )


def test_register_duplicate_and_replace():
    """Duplicate names are rejected unless replace=True; unregister cleans up."""
    scenario = _dummy_scenario("test-dummy-scenario")
    try:
        register(scenario)
        with pytest.raises(ConfigurationError, match="already registered"):
            register(scenario)
        register(scenario, replace=True)
        assert get_scenario("test-dummy-scenario") is scenario
    finally:
        unregister("test-dummy-scenario")
    assert "test-dummy-scenario" not in scenario_names()


def test_scenario_validation():
    """Bad scenario definitions are rejected eagerly."""
    good = _dummy_scenario("validation-subject")
    import dataclasses

    with pytest.raises(ConfigurationError, match="whitespace"):
        dataclasses.replace(good, name="has space")
    with pytest.raises(ConfigurationError, match="unknown policy kinds"):
        dataclasses.replace(good, policy_kinds=("warp-speed",))
    with pytest.raises(ConfigurationError, match="training_iterations"):
        dataclasses.replace(good, training_iterations=-1)
    with pytest.raises(ConfigurationError, match="no policy kinds"):
        dataclasses.replace(good, policy_kinds=())


# ----------------------------------------------------------------------
# Materialization
# ----------------------------------------------------------------------

def test_every_builtin_scenario_materializes():
    """describe() (setup + test app, no simulation) works for all builtins."""
    for scenario in all_scenarios():
        description = scenario.describe()
        assert description["name"] == scenario.name
        assert description["application"]["total_invocations"] > 0
        assert description["soc"]["accelerators"] >= 1


def test_build_setup_is_deterministic():
    """Same seed => identical binding; the traffic scenarios vary by seed."""
    scenario = get_scenario("soc0-streaming")
    setup_a = scenario.build_setup(seed=3)
    setup_b = scenario.build_setup(seed=3)
    assert [d for d in setup_a.accelerators] == [d for d in setup_b.accelerators]
    setup_c = scenario.build_setup(seed=4)
    assert setup_a.accelerators != setup_c.accelerators


def test_training_and_testing_instances_differ():
    """Instance 0 (training) and 1 (testing) are distinct but deterministic."""
    for name in ("quickstart", "multi-tenant-inference", "soc1-mixed-traffic"):
        scenario = get_scenario(name)
        setup = scenario.build_setup()
        train_a, test_a = scenario.applications(setup)
        train_b, test_b = scenario.applications(setup)
        assert train_a == train_b and test_a == test_b
        assert train_a != test_a


def test_frontier_socs_are_off_the_paper_grid():
    """The new scenarios really use platforms Table 4 does not contain."""
    inference = get_scenario("multi-tenant-inference").build_config()
    assert inference.llc_partition_bytes == 1024 * KB  # paper max is 512 KB
    dsp = get_scenario("streaming-dsp-chain").build_config()
    assert dsp.num_mem_tiles == 1  # paper min is 2
    v2v = get_scenario("v2v-burst-best-effort").build_config()
    assert v2v.num_mem_tiles == 3  # paper uses 2 or 4
    assert v2v.accelerators_without_cache == (8, 9)


# ----------------------------------------------------------------------
# Run path (through the sweep runner)
# ----------------------------------------------------------------------

def test_run_scenario_caches_and_reruns_identically(tmp_path):
    """First run executes, rerun is all cache hits with identical payloads."""
    scenario = get_scenario("quickstart")
    runner = SweepRunner(workers=1, cache=ResultCache(tmp_path / "cache"))
    kinds = ("fixed-non-coh-dma", "manual")
    first = run_scenario(scenario, policy_kinds=kinds, training_iterations=0, runner=runner)
    assert first.executed == 2 and first.cache_hits == 0
    second = run_scenario(scenario, policy_kinds=kinds, training_iterations=0, runner=runner)
    assert second.executed == 0 and second.cache_hits == 2
    for kind in kinds:
        assert (
            first.evaluations[kind].to_dict() == second.evaluations[kind].to_dict()
        )


def test_run_scenario_seed_changes_fingerprint(tmp_path):
    """A different seed misses the cache and changes sampled workloads.

    streaming-dsp-chain draws its footprints from the seed-derived RNG, so
    unlike the hand-sized quickstart app its results are seed-sensitive.
    """
    scenario = get_scenario("streaming-dsp-chain")
    runner = SweepRunner(workers=1, cache=ResultCache(tmp_path / "cache"))
    kinds = ("fixed-non-coh-dma",)
    base = run_scenario(scenario, policy_kinds=kinds, training_iterations=0, runner=runner)
    other = run_scenario(
        scenario, policy_kinds=kinds, seed=99, training_iterations=0, runner=runner
    )
    assert other.cache_hits == 0 and other.executed == 1
    assert (
        base.evaluations[kinds[0]].result.total_execution_cycles
        != other.evaluations[kinds[0]].result.total_execution_cycles
    )


def test_run_scenario_report_and_normalized():
    """The run result renders a table and normalizes to the reference."""
    scenario = get_scenario("mode-exploration")
    result = run_scenario(
        scenario, policy_kinds=("fixed-non-coh-dma", "fixed-coh-dma"), training_iterations=0
    )
    table = result.normalized()
    assert table["fixed-non-coh-dma"]["exec"] == pytest.approx(1.0)
    report = result.report()
    assert "mode-exploration" in report and "fixed-coh-dma" in report


def test_run_file_scenario_resolves_source(tmp_path):
    """A file-based scenario runs through jobs that reload its source."""
    document = {
        "scenario": {
            "name": "file-run-demo",
            "policies": ["fixed-non-coh-dma"],
            "training_iterations": 0,
        },
        "soc": {"preset": "SoC1"},
        "accelerators": [{"name": "FFT"}],
        "application": {
            "phases": [
                {"name": "p0", "threads": [{"chain": ["FFT"], "footprint": 64 * KB}]}
            ]
        },
    }
    path = tmp_path / "file-run-demo.json"
    path.write_text(json.dumps(document))
    from repro.scenarios import load_scenario_file

    scenario = load_scenario_file(path)
    result = run_scenario(scenario)
    assert result.evaluations["fixed-non-coh-dma"].result.total_execution_cycles > 0


def test_editing_a_scenario_file_misses_the_cache(tmp_path):
    """An edited scenario definition can never be served a stale payload."""
    document = {
        "scenario": {
            "name": "edit-me",
            "policies": ["fixed-non-coh-dma"],
            "training_iterations": 0,
        },
        "soc": {"preset": "SoC1"},
        "accelerators": [{"name": "FFT"}],
        "application": {
            "phases": [
                {"name": "p0", "threads": [{"chain": ["FFT"], "footprint": 16 * KB}]}
            ]
        },
    }
    path = tmp_path / "edit-me.json"
    path.write_text(json.dumps(document))
    from repro.scenarios import load_scenario_file

    runner = SweepRunner(workers=1, cache=ResultCache(tmp_path / "cache"))
    first = run_scenario(load_scenario_file(path), runner=runner)
    assert first.executed == 1

    document["application"]["phases"][0]["threads"][0]["footprint"] = 2048 * KB
    path.write_text(json.dumps(document))
    second = run_scenario(load_scenario_file(path), runner=runner)
    assert second.cache_hits == 0 and second.executed == 1
    assert (
        second.evaluations["fixed-non-coh-dma"].result.total_execution_cycles
        != first.evaluations["fixed-non-coh-dma"].result.total_execution_cycles
    )


def test_cli_gallery_bad_root_exits_cleanly(tmp_path):
    """`gallery` with a root lacking README.md errors without a traceback."""
    assert cli_main(["gallery", "--check", "--root", str(tmp_path)], stream=io.StringIO()) == 2


@pytest.mark.slow
def test_run_scenario_parallel_matches_serial(tmp_path):
    """Worker count is a pure throughput knob for scenario runs too."""
    scenario = get_scenario("example-custom-traffic")
    serial = run_scenario(scenario, training_iterations=1, runner=SweepRunner(workers=1))
    parallel = run_scenario(
        scenario, training_iterations=1, runner=SweepRunner(workers=4)
    )
    assert {k: v.to_dict() for k, v in serial.evaluations.items()} == {
        k: v.to_dict() for k, v in parallel.evaluations.items()
    }


@pytest.mark.slow
def test_run_frontier_scenario_end_to_end():
    """A frontier scenario completes across its full default policy set."""
    scenario = get_scenario("streaming-dsp-chain")
    result = run_scenario(scenario, training_iterations=1)
    assert set(result.evaluations) == set(scenario.policy_kinds)
    reference = result.evaluations["fixed-non-coh-dma"]
    assert reference.result.total_ddr_accesses > 0  # memory-bound by design


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_list_plain_and_markdown():
    """`list` renders every scenario; `--markdown` renders the table."""
    stream = io.StringIO()
    assert cli_main(["list"], stream=stream) == 0
    text = stream.getvalue()
    for name in REQUIRED_SCENARIOS:
        assert name in text
    stream = io.StringIO()
    assert cli_main(["list", "--markdown", "--category", "frontier"], stream=stream) == 0
    markdown = stream.getvalue()
    assert "| [`multi-tenant-inference`](#multi-tenant-inference) |" in markdown
    assert "quickstart" not in markdown


def test_cli_describe_text_and_json():
    """`describe` renders the materialized scenario, optionally as JSON."""
    stream = io.StringIO()
    assert cli_main(["describe", "v2v-burst-best-effort"], stream=stream) == 0
    assert "V2VSoC" in stream.getvalue()
    stream = io.StringIO()
    assert cli_main(["describe", "quickstart", "--json"], stream=stream) == 0
    description = json.loads(stream.getvalue())
    assert description["soc"]["name"] == "SoC1"


def test_cli_run_with_cache(tmp_path):
    """`run` completes through the runner and reports cache statistics."""
    cache_dir = str(tmp_path / "cli-cache")
    argv = [
        "run",
        "quickstart",
        "--workers",
        "1",
        "--cache-dir",
        cache_dir,
        "--training-iterations",
        "0",
        "--policies",
        "fixed-non-coh-dma,manual",
    ]
    stream = io.StringIO()
    assert cli_main(argv, stream=stream) == 0
    assert "executed=2 cache_hits=0" in stream.getvalue()
    stream = io.StringIO()
    assert cli_main(argv, stream=stream) == 0
    assert "executed=0 cache_hits=2" in stream.getvalue()


def test_cli_unknown_scenario_exits_nonzero():
    """Errors surface as exit code 2, not tracebacks."""
    assert cli_main(["describe", "no-such"], stream=io.StringIO()) == 2
