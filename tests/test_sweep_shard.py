"""Sharding and merge tests: partition properties, validation, fusion, CLI.

The hypothesis suite pins the three properties the CI matrix relies on:
for arbitrary grids and shard counts the fingerprint-hash partition is
disjoint, complete, and insensitive to grid order.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SweepError
from repro.experiments.sweep import (
    Job,
    MergeReport,
    ResultCache,
    ShardIncompleteError,
    ShardSpec,
    SweepManifest,
    SweepRunner,
    SweepSpec,
    discover_shard_manifests,
    merge_shards,
    payload_digest,
)
from repro.experiments.sweep.cli import main as cli_main
from repro.experiments.sweep.merge import fused_results
from repro.experiments.sweep.shard import ownership, partition
from repro.utils.rng import SeededRNG


def _mul_job(params, rng):
    """Cheap deterministic job used throughout these tests."""
    return {"product": params["a"] * params["b"], "draw": rng.randint(0, 10**9)}


def _grid(n=10, seed=3, name="grid") -> SweepSpec:
    return SweepSpec(
        name=name,
        jobs=[
            Job(key=f"j{i}", fn=_mul_job, params={"a": i, "b": i + 1}, seed=seed)
            for i in range(n)
        ],
    )


class TestShardSpec:
    def test_parse(self):
        assert ShardSpec.parse("2/3") == ShardSpec(index=2, count=3)
        assert ShardSpec.parse("1/1") == ShardSpec(index=1, count=1)

    @pytest.mark.parametrize("text", ["", "3", "0/3", "4/3", "a/b", "1/", "/3", "1/3/5"])
    def test_parse_rejects(self, text):
        with pytest.raises(SweepError):
            ShardSpec.parse(text)

    def test_label_round_trips(self):
        assert ShardSpec.parse(ShardSpec(2, 5).label) == ShardSpec(2, 5)

    def test_single_shard_owns_everything(self):
        spec = _grid()
        shard = ShardSpec(1, 1)
        assert all(shard.owns(job.fingerprint()) for job in spec.jobs)


#: Strategy for small but arbitrary grids: each element becomes one job
#: whose params (and therefore fingerprint) derive from the drawn values.
_grids = st.lists(
    st.tuples(st.integers(-(10**6), 10**6), st.text(max_size=8)),
    min_size=1,
    max_size=30,
    unique=True,
)


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(values=_grids, count=st.integers(min_value=1, max_value=7))
    def test_partition_is_disjoint_and_complete(self, values, count):
        jobs = [
            Job(key=f"k{i}", fn=_mul_job, params={"a": a, "b": 2, "tag": tag}, seed=1)
            for i, (a, tag) in enumerate(values)
        ]
        shards = [ShardSpec(index, count) for index in range(1, count + 1)]
        for job in jobs:
            owners = [shard.index for shard in shards if shard.owns(job.fingerprint())]
            assert len(owners) == 1  # exactly one shard owns every job
        by_shard = partition(jobs, count)
        assert sum(len(shard) for shard in by_shard) == len(jobs)
        assert {job.key for shard in by_shard for job in shard} == {
            job.key for job in jobs
        }

    @settings(max_examples=30, deadline=None)
    @given(
        values=_grids,
        count=st.integers(min_value=1, max_value=7),
        shuffle_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_partition_is_order_insensitive(self, values, count, shuffle_seed):
        jobs = [
            Job(key=f"k{i}", fn=_mul_job, params={"a": a, "b": 2, "tag": tag}, seed=1)
            for i, (a, tag) in enumerate(values)
        ]
        shuffled = list(jobs)
        SeededRNG(shuffle_seed).shuffle(shuffled)
        assert ownership(jobs, count) == ownership(shuffled, count)

    @settings(max_examples=30, deadline=None)
    @given(values=_grids, count=st.integers(min_value=1, max_value=7))
    def test_ownership_matches_shardspec(self, values, count):
        jobs = [
            Job(key=f"k{i}", fn=_mul_job, params={"a": a, "b": 2, "tag": tag}, seed=1)
            for i, (a, tag) in enumerate(values)
        ]
        owners = ownership(jobs, count)
        for job in jobs:
            index = owners[job.fingerprint()]
            assert ShardSpec(index, count).owns(job.fingerprint())


class TestShardedRunner:
    def test_sharded_run_executes_only_owned_jobs(self, tmp_path):
        spec = _grid()
        executed_keys = set()
        for index in (1, 2, 3):
            result = SweepRunner(
                workers=1,
                cache=ResultCache(tmp_path / f"cache-{index}"),
                manifest_dir=tmp_path / f"manifests-{index}",
                shard=ShardSpec(index, 3),
            ).run(spec)
            keys = set(result.payloads)
            assert keys.isdisjoint(executed_keys)  # disjoint across shards
            executed_keys |= keys
            assert set(result.missing) == set(spec.keys()) - keys
        assert executed_keys == set(spec.keys())  # complete across shards

    def test_missing_key_raises_shard_incomplete(self, tmp_path):
        spec = _grid()
        result = SweepRunner(
            workers=1,
            cache=ResultCache(tmp_path / "cache"),
            shard=ShardSpec(1, 3),
        ).run(spec)
        assert not result.complete
        with pytest.raises(ShardIncompleteError, match="merge-shards"):
            result[result.missing[0]]
        with pytest.raises(KeyError):
            result["never-a-key"]

    def test_warm_cache_fills_foreign_jobs(self, tmp_path):
        spec = _grid()
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(workers=1, cache=cache).run(spec)  # warm everything
        result = SweepRunner(
            workers=1, cache=cache, shard=ShardSpec(2, 3)
        ).run(spec)
        assert result.complete
        assert result.executed == 0


def _run_shards(tmp_path, spec, count=3, cache_name="cache", manifests="manifests"):
    """Run every shard of ``spec`` against one shared cache/manifest dir."""
    cache = ResultCache(tmp_path / cache_name)
    for index in range(1, count + 1):
        SweepRunner(
            workers=1,
            cache=ResultCache(tmp_path / f"{cache_name}-{index}"),
            manifest_dir=tmp_path / manifests,
            shard=ShardSpec(index, count),
        ).run(spec)
        # Fuse the per-shard caches the way CI's artifact download does.
        for fp in ResultCache(tmp_path / f"{cache_name}-{index}").fingerprints():
            source = ResultCache(tmp_path / f"{cache_name}-{index}")
            cache.put(fp, "merged", source.get(fp))
    return cache


class TestMergeShards:
    def test_merge_validates_and_fuses(self, tmp_path):
        spec = _grid()
        cache = _run_shards(tmp_path, spec)
        manifests = discover_shard_manifests(tmp_path / "manifests")
        assert len(manifests) == 3
        report = merge_shards(manifests, cache=cache)
        assert report.jobs == len(spec)
        assert [key for key, _ in report.per_job] == spec.keys()
        reference = SweepRunner(workers=1).run(spec)
        assert dict(report.per_job) == {
            key: payload_digest(payload) for key, payload in reference.items()
        }
        # The fused manifest lets a resume run skip the whole grid.
        resumed = SweepRunner(
            workers=1,
            cache=cache,
            manifest_dir=tmp_path / "manifests",
            resume=True,
        ).run(spec)
        assert resumed.executed == 0 and resumed.resumed == len(spec)

    def test_merge_refuses_missing_shard(self, tmp_path):
        spec = _grid()
        _run_shards(tmp_path, spec)
        manifests = discover_shard_manifests(tmp_path / "manifests")
        incomplete = [m for m in manifests if m.shard.index != 2]
        with pytest.raises(SweepError, match=r"missing shard\(s\) \[2\]"):
            merge_shards(incomplete)

    def test_merge_refuses_incomplete_shard(self, tmp_path):
        spec = _grid()
        _run_shards(tmp_path, spec)
        manifests = discover_shard_manifests(tmp_path / "manifests")
        victim = next(m for m in manifests if len(m.completed) > 0)
        fingerprint = next(iter(victim.completed))
        del victim.completed[fingerprint]
        with pytest.raises(SweepError, match="incomplete"):
            merge_shards(manifests)

    def test_merge_refuses_mixed_grids(self, tmp_path):
        _run_shards(tmp_path, _grid(seed=3))
        _run_shards(tmp_path, _grid(seed=4), manifests="manifests")
        manifests = discover_shard_manifests(tmp_path / "manifests")
        with pytest.raises(SweepError, match="different grids"):
            merge_shards(manifests)

    def test_merge_refuses_digest_disagreement(self, tmp_path):
        spec = _grid()
        cache = _run_shards(tmp_path, spec)
        manifests = discover_shard_manifests(tmp_path / "manifests")
        # Shard 1 claims a different digest for a job shard 2 also recorded.
        donor = next(m for m in manifests if m.shard.index == 2 and m.completed)
        fingerprint = next(iter(donor.completed))
        receiver = next(m for m in manifests if m.shard.index == 1)
        receiver.completed[fingerprint] = "0" * 64
        with pytest.raises(SweepError, match="disagree"):
            merge_shards(manifests, cache=cache)

    def test_merge_detects_cache_tampering(self, tmp_path):
        spec = _grid()
        cache = _run_shards(tmp_path, spec)
        manifests = discover_shard_manifests(tmp_path / "manifests")
        fingerprint = next(iter(manifests[0].completed), None) or next(
            iter(manifests[1].completed)
        )
        cache.put(fingerprint, "tampered", {"tampered": True})
        with pytest.raises(SweepError, match="does not match"):
            merge_shards(manifests, cache=cache)

    def test_check_document_and_compare(self, tmp_path):
        spec = _grid()
        cache = _run_shards(tmp_path, spec)
        manifests = discover_shard_manifests(tmp_path / "manifests")
        report = merge_shards(manifests, cache=cache)
        document = report.check_document()
        assert document["jobs"] == len(spec)
        assert report.compare(document) == []
        tampered = json.loads(json.dumps(document))
        tampered["per_job"]["j0"] = "0" * 64
        tampered["checksum"] = "bogus"
        problems = report.compare(tampered)
        assert any("j0" in problem for problem in problems)
        assert any("checksum" in problem for problem in problems)

    def test_fused_results_contains_every_payload(self, tmp_path):
        spec = _grid()
        cache = _run_shards(tmp_path, spec)
        manifests = discover_shard_manifests(tmp_path / "manifests")
        report = merge_shards(manifests, cache=cache)
        document = fused_results(report, manifests, cache)
        reference = SweepRunner(workers=1).run(spec)
        assert document["results"] == dict(reference.payloads)
        assert document["checksum"] == report.checksum


class TestMergeCli:
    def _shard_and_merge_args(self, tmp_path, spec):
        _run_shards(tmp_path, spec)
        return [
            "merge-shards",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--manifest-dir",
            str(tmp_path / "manifests"),
        ]

    def test_cli_merge_check_and_out(self, tmp_path):
        spec = _grid()
        args = self._shard_and_merge_args(tmp_path, spec)
        check_path = tmp_path / "check.json"
        out_path = tmp_path / "fused.json"
        stream = io.StringIO()
        assert (
            cli_main(
                args
                + ["--write-check", str(check_path), "--out", str(out_path)],
                stream=stream,
            )
            == 0
        )
        assert "[merge-shards]" in stream.getvalue()

        # The written check document gates a second merge run.
        stream = io.StringIO()
        assert cli_main(args + ["--check", str(check_path)], stream=stream) == 0
        assert "determinism check passed" in stream.getvalue()

        # Tampering with the expectation makes the gate fail.
        document = json.loads(check_path.read_text())
        document["checksum"] = "0" * 64
        check_path.write_text(json.dumps(document))
        stream = io.StringIO()
        assert cli_main(args + ["--check", str(check_path)], stream=stream) == 1
        assert "FAILED" in stream.getvalue()

        fused = json.loads(out_path.read_text())
        assert list(fused["results"]) == spec.keys()

    def test_cli_merge_reports_validation_failure(self, tmp_path):
        spec = _grid()
        args = self._shard_and_merge_args(tmp_path, spec)
        shard_files = sorted((tmp_path / "manifests").glob("*.shard2of3.*"))
        for path in shard_files:
            path.unlink()
        stream = io.StringIO()
        assert cli_main(args, stream=stream) == 1
        assert "missing shard" in stream.getvalue()

    def test_cli_shard_without_cache_is_an_error(self):
        stream = io.StringIO()
        assert cli_main(["socs", "--no-cache", "--shard", "1/3"], stream=stream) == 2
        assert "--no-cache" in stream.getvalue()

    def test_cli_resume_without_cache_is_an_error(self):
        stream = io.StringIO()
        assert cli_main(["socs", "--no-cache", "--resume"], stream=stream) == 2


@pytest.mark.slow
class TestFigureShardAcceptance:
    """The CI sharded-lane pipeline, end to end, against the committed file.

    Mirrors ``.github/workflows/ci.yml``'s figure-shard/figure-merge jobs:
    run the quick-profile Figure 9 sweep split ``--shard i/3`` with isolated
    caches, fuse the artifacts, check the merged digests against
    ``benchmarks/results/SHARDS_fig9_quick.json``, and verify a ``--resume``
    over the merged cache executes nothing while printing the full report.
    """

    def test_sharded_fig9_matches_committed_checksums(self, tmp_path):
        from pathlib import Path

        committed = (
            Path(__file__).resolve().parents[1]
            / "benchmarks"
            / "results"
            / "SHARDS_fig9_quick.json"
        )
        merged_cache = tmp_path / "merged"
        for index in (1, 2, 3):
            stream = io.StringIO()
            assert (
                cli_main(
                    [
                        "socs",
                        "--shard",
                        f"{index}/3",
                        "--workers",
                        "2",
                        "--cache-dir",
                        str(tmp_path / f"shard-{index}"),
                    ],
                    stream=stream,
                )
                == 0
            )
            # CI's artifact download fuses the shard directories; -n keeps
            # the first manifest when names collide (they never do).
            source = tmp_path / f"shard-{index}"
            for path in source.rglob("*"):
                if path.is_file():
                    target = merged_cache / path.relative_to(source)
                    target.parent.mkdir(parents=True, exist_ok=True)
                    if not target.exists():
                        target.write_bytes(path.read_bytes())

        stream = io.StringIO()
        assert (
            cli_main(
                [
                    "merge-shards",
                    "--cache-dir",
                    str(merged_cache),
                    "--check",
                    str(committed),
                ],
                stream=stream,
            )
            == 0
        ), stream.getvalue()
        assert "determinism check passed" in stream.getvalue()

        stream = io.StringIO()
        assert (
            cli_main(
                [
                    "socs",
                    "--resume",
                    "--workers",
                    "1",
                    "--cache-dir",
                    str(merged_cache),
                ],
                stream=stream,
            )
            == 0
        )
        text = stream.getvalue()
        assert "executed=0" in text and "resumed=5" in text
        assert "Scenario" in text or "SoC" in text  # the real figure report
