"""Unit tests of :mod:`repro.net` — the shared HTTP/envelope substrate.

The three servers in the repository (policy serving, the sweep
coordinator, the tracking API) all frame bytes through
:class:`repro.net.http.JsonHttpServer` and build their typed error
envelopes through :mod:`repro.net.envelope`.  These tests pin the shared
machinery itself: vocabulary validation at construction, envelope shape,
the per-service ``wire_error`` wiring, and the status/reason table.
The wire behavior of each concrete server stays pinned by its own suite
(``test_serving*.py``, ``test_sweep_distributed.py``,
``test_tracking.py``).
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError, ServingError, SweepError, TrackingError
from repro.net import EnvelopeError, JsonHttpServer, make_envelope
from repro.net.http import STATUS_REASON


class TestMakeEnvelope:
    """The one constructor of every error document on the wire."""

    VOCAB = {"invalid-request": 400, "not-found": 404}

    def test_envelope_shape(self):
        envelope = make_envelope(self.VOCAB, "not-found", "no such thing")
        assert envelope == {
            "error": {
                "type": "not-found",
                "status": 404,
                "message": "no such thing",
            }
        }

    def test_unknown_type_raises_the_requested_domain_error(self):
        with pytest.raises(ServingError, match="unknown error-envelope type"):
            make_envelope(self.VOCAB, "made-up", "boom", ServingError)

    def test_unknown_type_defaults_to_repro_error(self):
        with pytest.raises(ReproError, match="'made-up'"):
            make_envelope(self.VOCAB, "made-up", "boom")


class TestEnvelopeError:
    """The exception mixin every service's wire error subclasses."""

    class WireError(EnvelopeError, ReproError):
        vocabulary = {"invalid-request": 400, "payload-too-large": 413}
        unknown_error = ReproError

    def test_carries_type_status_and_message(self):
        exc = self.WireError("payload-too-large", "too big")
        assert exc.error_type == "payload-too-large"
        assert exc.status == 413
        assert str(exc) == "too big"
        assert exc.envelope()["error"]["type"] == "payload-too-large"

    def test_construction_validates_against_the_vocabulary(self):
        with pytest.raises(ReproError, match="unknown error-envelope type"):
            self.WireError("made-up", "boom")

    def test_every_service_wire_error_shares_the_machinery(self):
        from repro.experiments.sweep.distributed.protocol import WireError
        from repro.serving.protocol import RequestError
        from repro.tracking.protocol import TrackingRequestError

        for cls, domain in [
            (RequestError, ServingError),
            (WireError, SweepError),
            (TrackingRequestError, TrackingError),
        ]:
            assert issubclass(cls, EnvelopeError)
            assert issubclass(cls, domain)
            exc = cls("invalid-request", "x")
            assert exc.status == 400
            with pytest.raises(domain, match="unknown error-envelope"):
                cls("made-up", "x")


class TestStatusReason:
    """Each service's vocabulary must resolve to a real reason phrase."""

    def test_all_vocabularies_are_covered(self):
        from repro.experiments.sweep.distributed import protocol as sweep
        from repro.serving import protocol as serving
        from repro.tracking import protocol as tracking

        for vocabulary in (
            serving.ERROR_STATUS,
            sweep.ERROR_STATUS,
            tracking.ERROR_STATUS,
        ):
            for status in vocabulary.values():
                assert status in STATUS_REASON

    def test_dispatch_and_healthz_are_abstract(self):
        class Dummy(EnvelopeError, ReproError):
            vocabulary = {"invalid-request": 400}
            unknown_error = ReproError

        server = JsonHttpServer(
            max_body_bytes=1, max_head_bytes=1, wire_error=Dummy
        )
        with pytest.raises(NotImplementedError):
            server.healthz_document()
