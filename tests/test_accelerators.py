"""Unit tests for accelerator descriptors, the library, traffic generator,
catalogues, and invocation records."""

from __future__ import annotations

import pytest

from repro.accelerators.catalog import (
    BENCHMARK_SUITE_COVERAGE,
    LITERATURE_COHERENCE_MODES,
    mode_support_matrix,
    modes_supported_by,
    suites_covering,
)
from repro.accelerators.descriptor import AccessPattern, AcceleratorDescriptor
from repro.accelerators.invocation import InvocationRequest, InvocationResult
from repro.accelerators.library import (
    ACCELERATOR_LIBRARY,
    accelerator_by_name,
    accelerator_names,
)
from repro.accelerators.traffic import TrafficGeneratorConfig, TrafficGeneratorFactory
from repro.errors import ConfigurationError
from repro.soc.address import Buffer, BufferSegment
from repro.soc.coherence import CoherenceMode
from repro.units import KB, MB
from repro.utils.rng import SeededRNG


class TestDescriptorValidation:
    def test_valid_descriptor(self):
        descriptor = AcceleratorDescriptor(name="ok", burst_bytes=256)
        assert descriptor.name == "ok"

    def test_invalid_burst(self):
        with pytest.raises(ConfigurationError):
            AcceleratorDescriptor(name="bad", burst_bytes=0)

    def test_invalid_reuse(self):
        with pytest.raises(ConfigurationError):
            AcceleratorDescriptor(name="bad", reuse_factor=0.5)

    def test_strided_requires_stride(self):
        with pytest.raises(ConfigurationError):
            AcceleratorDescriptor(name="bad", access_pattern=AccessPattern.STRIDED)

    def test_access_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            AcceleratorDescriptor(name="bad", access_fraction=0.0)


class TestDescriptorVolumes:
    def test_in_place_reads_and_writes_full_footprint(self):
        descriptor = AcceleratorDescriptor(name="ip", in_place=True, local_mem_bytes=1 * KB)
        assert descriptor.input_bytes(1 * MB) == 1 * MB
        assert descriptor.output_bytes(1 * MB) == 1 * MB

    def test_read_write_ratio_splits_footprint(self):
        descriptor = AcceleratorDescriptor(name="rw", read_write_ratio=3.0)
        footprint = 400 * KB
        assert descriptor.input_bytes(footprint) == pytest.approx(300 * KB, rel=0.01)
        assert descriptor.output_bytes(footprint) == pytest.approx(100 * KB, rel=0.01)

    def test_scratchpad_suppresses_reuse(self):
        descriptor = AcceleratorDescriptor(
            name="fit", reuse_factor=4.0, local_mem_bytes=128 * KB
        )
        assert descriptor.effective_reuse(64 * KB) == 1.0
        assert descriptor.effective_reuse(1 * MB) == 4.0

    def test_irregular_touches_fraction(self):
        descriptor = AcceleratorDescriptor(
            name="irr",
            access_pattern=AccessPattern.IRREGULAR,
            access_fraction=0.5,
            local_mem_bytes=1 * KB,
        )
        assert descriptor.touched_fraction() == 0.5
        assert descriptor.read_bytes(1 * MB) < descriptor.input_bytes(1 * MB)

    def test_compute_cycles_scale_with_footprint(self):
        descriptor = AcceleratorDescriptor(name="c", compute_cycles_per_byte=2.0)
        assert descriptor.compute_cycles(1000) == 2000.0

    def test_dma_bursts_positive(self):
        descriptor = AcceleratorDescriptor(name="b", burst_bytes=1024)
        assert descriptor.dma_bursts(10) >= 1

    def test_with_overrides(self):
        descriptor = accelerator_by_name("FFT").with_overrides(reuse_factor=2.0)
        assert descriptor.reuse_factor == 2.0
        assert descriptor.name == "FFT"


class TestLibrary:
    def test_twelve_accelerators(self):
        assert len(ACCELERATOR_LIBRARY) == 12

    def test_names_match_table2(self):
        expected = {
            "Autoencoder",
            "Cholesky",
            "Conv-2D",
            "FFT",
            "GEMM",
            "MLP",
            "MRI-Q",
            "NVDLA",
            "Night-vision",
            "Sort",
            "SPMV",
            "Viterbi",
        }
        assert set(accelerator_names()) == expected

    def test_lookup_by_alias(self):
        assert accelerator_by_name("fft").name == "FFT"
        assert accelerator_by_name("night-vision").name == "Night-vision"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            accelerator_by_name("Quantum")

    def test_spmv_is_irregular(self):
        assert accelerator_by_name("SPMV").access_pattern is AccessPattern.IRREGULAR

    def test_library_has_compute_and_communication_bound_members(self):
        intensities = [a.compute_cycles_per_byte for a in ACCELERATOR_LIBRARY]
        assert min(intensities) < 1.0
        assert max(intensities) >= 4.0


class TestTrafficGenerator:
    def test_config_to_descriptor(self):
        config = TrafficGeneratorConfig(
            access_pattern=AccessPattern.STRIDED, stride_bytes=512
        )
        descriptor = config.to_descriptor("TG")
        assert descriptor.stride_bytes == 512
        assert descriptor.name == "TG"

    def test_factory_is_deterministic(self):
        a = TrafficGeneratorFactory(SeededRNG(1)).build_set(5)
        b = TrafficGeneratorFactory(SeededRNG(1)).build_set(5)
        assert [d.burst_bytes for d in a] == [d.burst_bytes for d in b]

    def test_pattern_restriction(self):
        descriptors = TrafficGeneratorFactory(SeededRNG(2)).build_set(
            6, AccessPattern.IRREGULAR
        )
        assert all(d.access_pattern is AccessPattern.IRREGULAR for d in descriptors)

    def test_mixed_set_covers_all_patterns(self):
        descriptors = TrafficGeneratorFactory(SeededRNG(3)).build_mixed_set(9)
        patterns = {d.access_pattern for d in descriptors}
        assert patterns == set(AccessPattern)

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            TrafficGeneratorFactory().build_set(0)

    def test_random_configs_are_valid_descriptors(self):
        factory = TrafficGeneratorFactory(SeededRNG(4))
        for index in range(20):
            descriptor = factory.random_descriptor(index)
            assert descriptor.burst_bytes > 0
            assert descriptor.reuse_factor >= 1.0


class TestCatalog:
    def test_table1_contains_esp_and_nvdla(self):
        assert CoherenceMode.LLC_COH_DMA in modes_supported_by("ESP")
        assert modes_supported_by("NVDLA") == frozenset({CoherenceMode.NON_COH_DMA})

    def test_unknown_system_raises(self):
        with pytest.raises(KeyError):
            modes_supported_by("MadeUpSystem")

    def test_no_system_supports_zero_modes(self):
        assert all(modes for modes in LITERATURE_COHERENCE_MODES.values())

    def test_table2_esp_covers_all_accelerators(self):
        assert len(BENCHMARK_SUITE_COVERAGE["ESP"]) == 12

    def test_suites_covering_fft(self):
        suites = suites_covering("FFT")
        assert "MachSuite" in suites and "Parboil" in suites

    def test_mode_support_matrix_shape(self):
        matrix = mode_support_matrix()
        assert set(matrix["ESP"]) == {m.label for m in CoherenceMode}


class TestInvocationRecords:
    def _buffer(self, size=64 * KB):
        return Buffer(name="b", size=size, segments=(BufferSegment(0, 0, size),))

    def test_request_validation(self):
        buffer = self._buffer()
        request = InvocationRequest(
            accelerator=accelerator_by_name("FFT"),
            tile_name="acc0",
            buffer=buffer,
            footprint_bytes=32 * KB,
        )
        assert request.footprint_bytes == 32 * KB
        with pytest.raises(ValueError):
            InvocationRequest(
                accelerator=accelerator_by_name("FFT"),
                tile_name="acc0",
                buffer=buffer,
                footprint_bytes=buffer.size + 1,
            )

    def test_result_derived_metrics(self):
        result = InvocationResult(
            accelerator_name="FFT",
            tile_name="acc0",
            mode=CoherenceMode.COH_DMA,
            footprint_bytes=1000,
            total_cycles=5000.0,
            accelerator_cycles=4000.0,
            comm_cycles=1000.0,
            ddr_accesses=200.0,
        )
        assert result.comm_ratio == pytest.approx(0.25)
        assert result.scaled_exec == pytest.approx(5.0)
        assert result.scaled_mem == pytest.approx(0.2)
        payload = result.as_dict()
        assert payload["mode"] == "coh-dma"

    def test_result_handles_zero_cycles(self):
        result = InvocationResult(
            accelerator_name="FFT",
            tile_name="acc0",
            mode=CoherenceMode.COH_DMA,
            footprint_bytes=1000,
            total_cycles=0.0,
            accelerator_cycles=0.0,
            comm_cycles=0.0,
            ddr_accesses=0.0,
        )
        assert result.comm_ratio == 0.0
