"""Unit tests for the RL state space and the reward function."""

from __future__ import annotations

import pytest

from repro.accelerators.invocation import InvocationResult
from repro.core.reward import DEFAULT_REWARD_WEIGHTS, RewardTracker, RewardWeights
from repro.core.state import (
    LEVELS_PER_ATTRIBUTE,
    NUM_ATTRIBUTES,
    NUM_STATES,
    CoherenceState,
    discretize_snapshot,
)
from repro.errors import PolicyError
from repro.runtime.status import SystemSnapshot
from repro.soc.coherence import CoherenceMode
from repro.units import KB


def make_snapshot(**overrides):
    defaults = dict(
        target_footprint_bytes=16 * KB,
        target_mem_tiles=(0,),
        active_per_mode={m.label: 0 for m in CoherenceMode},
        non_coh_per_target_tile=0.0,
        llc_users_per_target_tile=0.0,
        tile_footprint_bytes=16 * KB,
        active_footprint_bytes=0,
        active_accelerators=0,
        l2_bytes=32 * KB,
        llc_partition_bytes=256 * KB,
        llc_total_bytes=512 * KB,
    )
    defaults.update(overrides)
    return SystemSnapshot(**defaults)


def make_result(name="FFT", cycles=1000.0, comm=0.5, mem=10.0, footprint=1000):
    return InvocationResult(
        accelerator_name=name,
        tile_name="acc0",
        mode=CoherenceMode.COH_DMA,
        footprint_bytes=footprint,
        total_cycles=cycles,
        accelerator_cycles=cycles,
        comm_cycles=cycles * comm,
        ddr_accesses=mem,
    )


class TestStateSpace:
    def test_state_space_size_is_243(self):
        assert NUM_STATES == 243
        assert LEVELS_PER_ATTRIBUTE**NUM_ATTRIBUTES == 243

    def test_index_roundtrip_for_all_states(self):
        for index in range(NUM_STATES):
            assert CoherenceState.from_index(index).index == index

    def test_invalid_attribute_rejected(self):
        with pytest.raises(PolicyError):
            CoherenceState(3, 0, 0, 0, 0)

    def test_invalid_index_rejected(self):
        with pytest.raises(PolicyError):
            CoherenceState.from_index(NUM_STATES)

    def test_idle_small_snapshot_maps_to_zero_state(self):
        state = discretize_snapshot(make_snapshot())
        assert state.as_tuple() == (0, 0, 0, 0, 0)
        assert state.index == 0

    def test_footprint_thresholds(self):
        small = discretize_snapshot(make_snapshot(target_footprint_bytes=32 * KB))
        medium = discretize_snapshot(make_snapshot(target_footprint_bytes=200 * KB))
        large = discretize_snapshot(make_snapshot(target_footprint_bytes=1024 * KB))
        assert small.acc_footprint == 0
        assert medium.acc_footprint == 1
        assert large.acc_footprint == 2

    def test_count_discretisation_saturates_at_two(self):
        snapshot = make_snapshot(
            active_per_mode={
                CoherenceMode.FULL_COH.label: 7,
                CoherenceMode.NON_COH_DMA.label: 0,
                CoherenceMode.LLC_COH_DMA.label: 0,
                CoherenceMode.COH_DMA.label: 0,
            },
            non_coh_per_target_tile=5.0,
            llc_users_per_target_tile=1.0,
        )
        state = discretize_snapshot(snapshot)
        assert state.fully_coh_acc == 2
        assert state.non_coh_acc_per_tile == 2
        assert state.to_llc_per_tile == 1

    def test_tile_footprint_uses_average_utilisation(self):
        snapshot = make_snapshot(tile_footprint_bytes=300 * KB)
        assert discretize_snapshot(snapshot).tile_footprint == 2


class TestRewardWeights:
    def test_default_matches_paper(self):
        exec_w, comm_w, mem_w = DEFAULT_REWARD_WEIGHTS.normalized()
        assert exec_w == pytest.approx(0.675)
        assert comm_w == pytest.approx(0.075)
        assert mem_w == pytest.approx(0.25)

    def test_from_percentages(self):
        weights = RewardWeights.from_percentages(50, 25, 25)
        assert weights.normalized() == pytest.approx((0.5, 0.25, 0.25))

    def test_negative_weight_rejected(self):
        with pytest.raises(PolicyError):
            RewardWeights(-0.1, 0.5, 0.6)

    def test_all_zero_rejected(self):
        with pytest.raises(PolicyError):
            RewardWeights(0.0, 0.0, 0.0)


class TestRewardTracker:
    def test_first_invocation_gets_full_reward(self):
        tracker = RewardTracker()
        components = tracker.evaluate(make_result())
        assert components.r_exec == pytest.approx(1.0)
        assert components.r_comm == pytest.approx(1.0)
        assert components.r_mem == pytest.approx(1.0)
        assert components.total == pytest.approx(1.0)

    def test_slower_invocation_gets_lower_r_exec(self):
        tracker = RewardTracker()
        tracker.evaluate(make_result(cycles=1000.0))
        components = tracker.evaluate(make_result(cycles=2000.0))
        assert components.r_exec == pytest.approx(0.5)

    def test_r_mem_interpolates_between_extremes(self):
        tracker = RewardTracker()
        tracker.evaluate(make_result(mem=0.0))
        tracker.evaluate(make_result(mem=100.0))
        components = tracker.evaluate(make_result(mem=50.0))
        assert components.r_mem == pytest.approx(0.5)

    def test_highest_memory_count_gets_zero_r_mem(self):
        tracker = RewardTracker()
        tracker.evaluate(make_result(mem=0.0))
        components = tracker.evaluate(make_result(mem=100.0))
        assert components.r_mem == pytest.approx(0.0)

    def test_zero_comm_ratio_treated_as_perfect(self):
        tracker = RewardTracker()
        components = tracker.evaluate(make_result(comm=0.0))
        assert components.r_comm == pytest.approx(1.0)

    def test_histories_are_per_accelerator(self):
        tracker = RewardTracker()
        tracker.evaluate(make_result(name="FFT", cycles=1000.0))
        components = tracker.evaluate(make_result(name="GEMM", cycles=5000.0))
        assert components.r_exec == pytest.approx(1.0)

    def test_weights_change_total(self):
        mem_only = RewardTracker(RewardWeights(0.0, 0.0, 1.0))
        mem_only.evaluate(make_result(mem=0.0))
        mem_only.evaluate(make_result(mem=100.0))
        components = mem_only.evaluate(make_result(mem=100.0, cycles=500.0))
        assert components.total == pytest.approx(components.r_mem)

    def test_reward_total_is_convex_combination(self):
        tracker = RewardTracker()
        tracker.evaluate(make_result())
        components = tracker.evaluate(make_result(cycles=3000.0, mem=50.0))
        assert 0.0 <= components.total <= 1.0

    def test_history_reporting_and_reset(self):
        tracker = RewardTracker()
        tracker.evaluate(make_result())
        history = tracker.history_for("FFT")
        assert history["invocations"] == 1
        tracker.reset()
        assert tracker.history_for("FFT")["invocations"] == 0
