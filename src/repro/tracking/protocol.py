"""The JSON wire protocol of the experiment-tracking service.

The third consumer of the :mod:`repro.net` substrate, and deliberately
the smallest: the tracking API is **read-only** — every route is a GET
returning one JSON document describing an on-disk artifact, stamped
with that artifact's raw-file SHA-256 (``document_sha256``) so a client
can verify the served bytes against the repository checkout.

Failures map to the usual typed envelope with a closed vocabulary
(:data:`ERROR_STATUS`); a traceback never crosses the wire.  The one
tracking-specific type is ``document-error``: the requested artifact
exists in name but failed its own format's validation or digest gate
(see :mod:`repro.store`), which is a state of the data, not of the
request — hence 409 rather than 400 or 404.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import DocumentError, ReproError, TrackingError
from repro.net.envelope import EnvelopeError, make_envelope

#: Protocol version stamped into every response document.
TRACKING_PROTOCOL_VERSION = 1

#: The closed set of error-envelope types and their HTTP status codes.
ERROR_STATUS: Dict[str, int] = {
    "invalid-request": 400,
    "not-found": 404,
    "document-error": 409,
    "payload-too-large": 413,
    "internal-error": 500,
}


class TrackingRequestError(EnvelopeError, TrackingError):
    """A tracking request that failed, with a typed envelope."""

    #: The tracking vocabulary; see :data:`ERROR_STATUS`.
    vocabulary = ERROR_STATUS

    #: Unknown envelope types are a tracking-side bug.
    unknown_error = TrackingError


def error_envelope(error_type: str, message: str) -> Dict[str, object]:
    """Build the JSON error envelope for ``error_type``."""
    return make_envelope(ERROR_STATUS, error_type, message, TrackingError)


def envelope_for_exception(exc: BaseException) -> Tuple[int, Dict[str, object]]:
    """Map an exception to ``(status, envelope)``; never leaks a traceback.

    :class:`TrackingRequestError` carries its own type; a
    :class:`~repro.errors.DocumentError` means the artifact on disk
    failed its validation or digest gate (``document-error``); every
    other :class:`~repro.errors.ReproError` is the caller's fault and
    maps to ``invalid-request``.  Anything else is a bug — the client
    gets an opaque ``internal-error`` naming only the exception class.
    """
    if isinstance(exc, TrackingRequestError):
        return exc.status, exc.envelope()
    if isinstance(exc, DocumentError):
        return (
            ERROR_STATUS["document-error"],
            error_envelope("document-error", str(exc)),
        )
    if isinstance(exc, ReproError):
        return (
            ERROR_STATUS["invalid-request"],
            error_envelope("invalid-request", str(exc)),
        )
    return (
        ERROR_STATUS["internal-error"],
        error_envelope(
            "internal-error",
            f"internal server error ({type(exc).__name__})",
        ),
    )


__all__ = [
    "ERROR_STATUS",
    "TRACKING_PROTOCOL_VERSION",
    "TrackingRequestError",
    "envelope_for_exception",
    "error_envelope",
]
