"""Entry point for ``python -m repro.tracking``."""

import sys

from repro.tracking.cli import main

if __name__ == "__main__":
    sys.exit(main())
