"""Read-only experiment tracking over the repository's on-disk documents.

The tracking API answers "what have my experiments produced?" directly
from the documents the other subsystems already write — sweep manifests,
the model registry, ``BENCH_*.json`` reports — with no database and no
write path.  It is the capstone consumer of the two substrate layers
this package family shares: every byte is framed by :mod:`repro.net`
and every document is parsed by :mod:`repro.store`.

Modules:

* :mod:`repro.tracking.service` — :class:`TrackingService`, the
  transport-free read side (runs, models, bench trajectory).
* :mod:`repro.tracking.protocol` — the typed error-envelope vocabulary.
* :mod:`repro.tracking.http` — :class:`TrackingServer`, the GET-only
  JSON/HTTP transport.
* :mod:`repro.tracking.cli` — ``python -m repro.tracking``
  (``serve`` / ``runs`` / ``run`` / ``models`` / ``bench``).
"""

from repro.tracking.http import TrackingServer, serve_forever
from repro.tracking.protocol import (
    ERROR_STATUS,
    TRACKING_PROTOCOL_VERSION,
    TrackingRequestError,
    envelope_for_exception,
    error_envelope,
)
from repro.tracking.service import DEFAULT_TOLERANCE, TrackingService

__all__ = [
    "DEFAULT_TOLERANCE",
    "ERROR_STATUS",
    "TRACKING_PROTOCOL_VERSION",
    "TrackingRequestError",
    "TrackingServer",
    "TrackingService",
    "envelope_for_exception",
    "error_envelope",
    "serve_forever",
]
