"""Asyncio HTTP/1.1 transport for the experiment-tracking service.

:class:`TrackingServer` is the third :class:`repro.net.http.JsonHttpServer`
in the repository (after the policy server and the sweep coordinator) and
by far the simplest: every route is a GET answered inline on the event
loop by one :class:`~repro.tracking.service.TrackingService` call, which
reads the underlying documents through :mod:`repro.store` on every
request.  There is no cache, no executor, and no background task — the
documents on disk *are* the state, so serving stays consistent with the
checkout by construction.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from repro.errors import TrackingError
from repro.net.http import JsonHttpServer
from repro.tracking.protocol import (
    TrackingRequestError,
    envelope_for_exception,
)
from repro.tracking.service import TrackingService

#: Largest accepted request body; tracking requests carry no body, so
#: anything beyond a small allowance is a client error.
MAX_BODY_BYTES = 1024 * 1024

#: Largest accepted request head (request line + headers, bytes).
MAX_HEAD_BYTES = 64 * 1024

#: Route prefixes of the two parameterised document routes.
_RUN_PREFIX = "/v1/runs/"
_MODEL_PREFIX = "/v1/models/"


class TrackingServer(JsonHttpServer):
    """One asyncio HTTP server wrapping a :class:`TrackingService`.

    Routes (all GET)::

        /healthz           liveness + visible document counts
        /v1/runs           every sweep run with live progress
        /v1/runs/<id>      one run with per-job completion records
        /v1/models         the model registry with provenance
        /v1/models/<name>  one digest-verified artifact document
        /v1/bench          the BENCH trajectory with regression flags

    Use as an async context manager (``async with TrackingServer(...)``)
    or call :meth:`start`/:meth:`close` explicitly.
    """

    def __init__(
        self,
        service: TrackingService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(
            max_body_bytes=MAX_BODY_BYTES,
            max_head_bytes=MAX_HEAD_BYTES,
            wire_error=TrackingRequestError,
        )
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket."""
        if self._server is not None:
            raise TrackingError("server is already running")
        self._server = await asyncio.start_server(
            self.handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting and tear down the open connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.cancel_connections()

    async def __aenter__(self) -> "TrackingServer":
        """Start the server on entry."""
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        """Close the server on exit."""
        await self.close()

    @property
    def started(self) -> bool:
        """Whether the listening socket is currently bound."""
        return self._server is not None

    @property
    def url(self) -> str:
        """Base URL of the bound listening socket."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Routing (transport plumbing lives in repro.net.http)
    # ------------------------------------------------------------------
    def healthz_document(self) -> Dict[str, object]:
        """Liveness + visible document counts for ``/healthz``."""
        return self.service.healthz()

    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        """Route one request and map every failure to a typed envelope."""
        try:
            return self._route(method, path)
        except Exception as exc:  # noqa: BLE001 - boundary: everything becomes JSON
            return envelope_for_exception(exc)

    def _route(self, method: str, path: str) -> Tuple[int, Dict[str, object]]:
        """The route table proper (exceptions handled by ``dispatch``)."""
        builtin = self.route_builtin(method, path)
        if builtin is not None:
            return builtin
        if path == "/v1/runs":
            self.require_method(method, "GET", path)
            return 200, self.service.runs()
        if path.startswith(_RUN_PREFIX):
            self.require_method(method, "GET", path)
            return 200, self.service.run(path[len(_RUN_PREFIX) :])
        if path == "/v1/models":
            self.require_method(method, "GET", path)
            return 200, self.service.models()
        if path.startswith(_MODEL_PREFIX):
            self.require_method(method, "GET", path)
            return 200, self.service.model(path[len(_MODEL_PREFIX) :])
        if path == "/v1/bench":
            self.require_method(method, "GET", path)
            return 200, self.service.bench()
        raise TrackingRequestError("not-found", f"no route for {path!r}")


async def serve_forever(server: TrackingServer) -> None:
    """Run ``server`` until cancelled (the CLI entry point's main loop)."""
    if not server.started:
        await server.start()
    try:
        while True:
            await asyncio.sleep(3600)
    finally:
        await server.close()


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEAD_BYTES",
    "TrackingServer",
    "serve_forever",
]
