"""The read side of the tracking API: documents in, summaries out.

:class:`TrackingService` points at the three places experiment state
lives on disk — a sweep-manifest directory, a model registry, and a
benchmark-results directory — and answers every tracking question by
*reading through* :mod:`repro.store`, never by keeping state of its
own.  That makes the service live by construction: a sweep appending
result lines to its manifest is visible on the next ``runs`` call, with
no notification channel and no staleness.

Every document the service returns carries ``document_sha256`` — the
SHA-256 of the underlying file's raw bytes — so a client (or the CI
tracking lane) can verify a served answer against the checkout
byte for byte.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import DocumentError, ModelError, TrackingError
from repro.perf.compare import compare_reports
from repro.store.io import document_sha256
from repro.store.readers import (
    MANIFEST_SUFFIX,
    ManifestDocument,
    load_bench_report,
    load_sweep_manifest,
)
from repro.tracking.protocol import TRACKING_PROTOCOL_VERSION, TrackingRequestError

#: Allowed rate regression before a trajectory point is flagged (matches
#: the ``repro.perf compare`` CLI default).
DEFAULT_TOLERANCE = 0.2

#: Filename pattern of benchmark reports in the bench directory.
BENCH_GLOB = "BENCH_*.json"


def _run_id(path: Path) -> str:
    """The run identifier of a manifest file (its suffix-free name)."""
    return path.name[: -len(MANIFEST_SUFFIX)]


class TrackingService:
    """Read-only views over sweep runs, registered models, and BENCH files.

    Parameters
    ----------
    manifest_dir:
        Directory of ``*.manifest.jsonl`` sweep manifests (one per run
        or shard).  Required for :meth:`runs` / :meth:`run`.
    models_dir:
        Model-registry root (``.repro-models`` layout).  Required for
        :meth:`models` / :meth:`model`.
    bench_dir:
        Directory of ``BENCH_*.json`` reports.  Required for
        :meth:`bench`.
    tolerance:
        Allowed fractional rate drop before a benchmark with an embedded
        ``before`` report is flagged as a regression.
    """

    def __init__(
        self,
        manifest_dir: Optional[Union[str, Path]] = None,
        models_dir: Optional[Union[str, Path]] = None,
        bench_dir: Optional[Union[str, Path]] = None,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        self.manifest_dir = Path(manifest_dir) if manifest_dir is not None else None
        self.models_dir = Path(models_dir) if models_dir is not None else None
        self.bench_dir = Path(bench_dir) if bench_dir is not None else None
        self.tolerance = float(tolerance)

    # ------------------------------------------------------------------
    # Directory plumbing
    # ------------------------------------------------------------------
    def _require_dir(self, path: Optional[Path], what: str, flag: str) -> Path:
        """The configured ``what`` directory, or a clear error."""
        if path is None:
            raise TrackingError(f"no {what} directory configured (pass {flag})")
        if not path.is_dir():
            raise TrackingError(f"{what} directory {path} does not exist")
        return path

    def _manifest_paths(self) -> List[Path]:
        directory = self._require_dir(
            self.manifest_dir, "manifest", "--manifest-dir"
        )
        return sorted(directory.glob(f"*{MANIFEST_SUFFIX}"))

    # ------------------------------------------------------------------
    # Sweep runs
    # ------------------------------------------------------------------
    def runs(self) -> Dict[str, object]:
        """Summarise every sweep run (manifest) with live progress.

        Progress comes straight from the JSONL manifests, so a sweep
        that is still appending result lines shows its current counts;
        a manifest that fails to parse is reported as an entry carrying
        ``error`` rather than failing the whole listing.
        """
        entries: List[Dict[str, object]] = []
        for path in self._manifest_paths():
            entry: Dict[str, object] = {
                "id": _run_id(path),
                "file": path.name,
                "document_sha256": document_sha256(path),
            }
            try:
                document = load_sweep_manifest(path)
            except DocumentError as exc:
                entry["error"] = str(exc)
            else:
                entry.update(self._run_summary(document))
            entries.append(entry)
        return {"protocol": TRACKING_PROTOCOL_VERSION, "runs": entries}

    def run(self, run_id: str) -> Dict[str, object]:
        """Detail one run: summary plus its per-job completion records."""
        directory = self._require_dir(
            self.manifest_dir, "manifest", "--manifest-dir"
        )
        if not run_id or "/" in run_id or "\\" in run_id or ".." in run_id:
            raise TrackingRequestError(
                "invalid-request", f"invalid run id {run_id!r}"
            )
        path = directory / f"{run_id}{MANIFEST_SUFFIX}"
        if not path.is_file():
            raise TrackingRequestError("not-found", f"no run {run_id!r}")
        document = load_sweep_manifest(path)
        detail: Dict[str, object] = {
            "protocol": TRACKING_PROTOCOL_VERSION,
            "id": run_id,
            "file": path.name,
            "document_sha256": document_sha256(path),
        }
        detail.update(self._run_summary(document))
        detail["jobs"] = [
            {
                "key": key,
                "fingerprint": fingerprint,
                "done": fingerprint in document.completed,
                "digest": document.completed.get(fingerprint),
            }
            for key, fingerprint in document.grid
        ]
        return detail

    @staticmethod
    def _run_summary(document: ManifestDocument) -> Dict[str, object]:
        """The shared summary block of one parsed manifest."""
        return {
            "spec": document.spec_name,
            "shard": (
                {"index": document.shard[0], "count": document.shard[1]}
                if document.shard is not None
                else None
            ),
            "grid_digest": document.grid_digest,
            "recorded_grid_digest": document.recorded_grid_digest,
            "progress": document.progress(),
        }

    # ------------------------------------------------------------------
    # Model registry
    # ------------------------------------------------------------------
    def _registry(self):
        from repro.models.registry import ModelRegistry

        root = self._require_dir(self.models_dir, "models", "--models-dir")
        return ModelRegistry(root)

    def models(self) -> Dict[str, object]:
        """Summarise every registered model with its provenance.

        Each entry re-verifies the artifact's digest gate on read; an
        artifact that fails it is reported with ``error`` rather than
        failing the whole listing.
        """
        registry = self._registry()
        entries: List[Dict[str, object]] = []
        for name in registry.names():
            path = registry.path_for(name)
            entry: Dict[str, object] = {
                "name": name,
                "file": path.name,
                "document_sha256": document_sha256(path),
            }
            try:
                artifact = registry.load(name)
            except DocumentError as exc:
                entry["error"] = str(exc)
            else:
                entry["digest"] = artifact.digest
                entry["provenance"] = artifact.provenance
                entry["stats"] = artifact.stats
            entries.append(entry)
        return {"protocol": TRACKING_PROTOCOL_VERSION, "models": entries}

    def model(self, name: str) -> Dict[str, object]:
        """The full (digest-verified) artifact document of one model."""
        registry = self._registry()
        try:
            present = name in registry
        except ModelError as exc:
            # path_for rejects names that could escape the registry; that
            # is a bad request, not a bad document.
            raise TrackingRequestError("invalid-request", str(exc)) from exc
        if not present:
            available = ", ".join(registry.names()) or "none"
            raise TrackingRequestError(
                "not-found", f"no model named {name!r} (available: {available})"
            )
        path = registry.path_for(name)
        artifact = registry.load(name)
        return {
            "protocol": TRACKING_PROTOCOL_VERSION,
            "name": name,
            "file": path.name,
            "document_sha256": document_sha256(path),
            "artifact": artifact.to_document(),
        }

    # ------------------------------------------------------------------
    # BENCH trajectory
    # ------------------------------------------------------------------
    def bench(self) -> Dict[str, object]:
        """The benchmark trajectory with per-report regression flagging.

        Every ``BENCH_*.json`` in the bench directory becomes one
        trajectory point.  Reports in the perf schema that embed a
        ``before`` report are re-gated with the same
        :func:`repro.perf.compare.compare_reports` checks the
        ``repro.perf compare`` CLI applies (determinism exact, rate
        within :attr:`tolerance`); findings with ``ok=False`` appear
        under ``regressions``.  Files that are not perf-schema reports
        are listed with ``error`` so the trajectory never hides a file.
        """
        directory = self._require_dir(self.bench_dir, "bench", "--bench-dir")
        entries: List[Dict[str, object]] = []
        for path in sorted(directory.glob(BENCH_GLOB)):
            entry: Dict[str, object] = {
                "file": path.name,
                "document_sha256": document_sha256(path),
            }
            try:
                report = load_bench_report(path)
            except DocumentError as exc:
                entry["error"] = str(exc)
                entries.append(entry)
                continue
            benchmarks = report.get("benchmarks")
            entry["scale"] = report.get("scale")
            entry["core_backend"] = report.get("core_backend")
            entry["host"] = report.get("host")
            entry["rates"] = {
                name: value.get("rate")
                for name, value in benchmarks.items()
                if isinstance(value, dict)
            }
            entry["speedup_vs_before"] = report.get("speedup_vs_before")
            before = report.get("before")
            if isinstance(before, dict):
                findings = compare_reports(
                    before, report, tolerance=self.tolerance
                )
                entry["regressions"] = [
                    {"benchmark": f.name, "kind": f.kind, "message": f.message}
                    for f in findings
                    if not f.ok
                ]
                entry["gate_ok"] = not entry["regressions"]
            entries.append(entry)
        return {
            "protocol": TRACKING_PROTOCOL_VERSION,
            "tolerance": self.tolerance,
            "reports": entries,
        }

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """Liveness plus a count of the documents currently visible."""
        document: Dict[str, object] = {
            "status": "ok",
            "protocol": TRACKING_PROTOCOL_VERSION,
        }
        if self.manifest_dir is not None and self.manifest_dir.is_dir():
            document["runs"] = len(
                list(self.manifest_dir.glob(f"*{MANIFEST_SUFFIX}"))
            )
        if self.models_dir is not None and self.models_dir.is_dir():
            from repro.models.registry import ModelRegistry

            document["models"] = len(ModelRegistry(self.models_dir).names())
        if self.bench_dir is not None and self.bench_dir.is_dir():
            document["bench_reports"] = len(list(self.bench_dir.glob(BENCH_GLOB)))
        return document


__all__ = ["BENCH_GLOB", "DEFAULT_TOLERANCE", "TrackingService"]
