"""``python -m repro.tracking`` — serve and query experiment state.

Examples
--------
::

    python -m repro.tracking serve --manifest-dir .sweep-manifests \\
        --models-dir .repro-models --bench-dir benchmarks/results
    python -m repro.tracking runs --manifest-dir .sweep-manifests
    python -m repro.tracking run quick-0of2 --manifest-dir .sweep-manifests
    python -m repro.tracking models --models-dir .repro-models
    python -m repro.tracking bench --bench-dir benchmarks/results

``serve`` starts the read-only JSON/HTTP tracking API until interrupted;
the other subcommands answer the same questions directly on the local
checkout, printing the identical JSON documents the API would serve —
one implementation (:class:`~repro.tracking.service.TrackingService`),
two transports.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional, TextIO

from repro.errors import ReproError
from repro.models.registry import DEFAULT_MODELS_DIR
from repro.tracking.http import TrackingServer, serve_forever
from repro.tracking.service import DEFAULT_TOLERANCE, TrackingService


def _add_dir_options(parser: argparse.ArgumentParser) -> None:
    """The shared document-directory options of every subcommand."""
    parser.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="directory of *.manifest.jsonl sweep manifests",
    )
    parser.add_argument(
        "--models-dir",
        default=None,
        metavar="DIR",
        help=f"model registry directory (e.g. {DEFAULT_MODELS_DIR})",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        metavar="DIR",
        help="directory of BENCH_*.json perf reports",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="FRACTION",
        help="allowed rate regression before a BENCH point is flagged "
        "(default: %(default)s)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro.tracking`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tracking",
        description="Read-only experiment tracking over on-disk documents.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_parser = commands.add_parser(
        "serve", help="serve the tracking API until interrupted"
    )
    _add_dir_options(serve_parser)
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: an ephemeral port, printed at startup)",
    )

    runs_parser = commands.add_parser(
        "runs", help="list sweep runs with live progress"
    )
    _add_dir_options(runs_parser)

    run_parser = commands.add_parser(
        "run", help="inspect one sweep run's per-job records"
    )
    run_parser.add_argument("run_id", help="run id (manifest filename stem)")
    _add_dir_options(run_parser)

    models_parser = commands.add_parser(
        "models", help="list registered models with provenance"
    )
    _add_dir_options(models_parser)

    bench_parser = commands.add_parser(
        "bench", help="chart the BENCH trajectory with regression flags"
    )
    _add_dir_options(bench_parser)
    return parser


def _service(args: argparse.Namespace) -> TrackingService:
    """Build the service from the shared directory options."""
    return TrackingService(
        manifest_dir=args.manifest_dir,
        models_dir=args.models_dir,
        bench_dir=args.bench_dir,
        tolerance=args.tolerance,
    )


def _print_document(document: object, out: TextIO) -> int:
    """Emit one JSON document exactly as the HTTP API would serialise it."""
    print(json.dumps(document, indent=2, sort_keys=True), file=out)
    return 0


def _cmd_serve(args: argparse.Namespace, out: TextIO) -> int:
    service = _service(args)
    server = TrackingServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        print(f"tracking API on {server.url}", file=out, flush=True)
        await serve_forever(server)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted, shutting down", file=out)
    return 0


def _cmd_runs(args: argparse.Namespace, out: TextIO) -> int:
    return _print_document(_service(args).runs(), out)


def _cmd_run(args: argparse.Namespace, out: TextIO) -> int:
    return _print_document(_service(args).run(args.run_id), out)


def _cmd_models(args: argparse.Namespace, out: TextIO) -> int:
    return _print_document(_service(args).models(), out)


def _cmd_bench(args: argparse.Namespace, out: TextIO) -> int:
    return _print_document(_service(args).bench(), out)


_COMMANDS = {
    "serve": _cmd_serve,
    "runs": _cmd_runs,
    "run": _cmd_run,
    "models": _cmd_models,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None, stream: Optional[TextIO] = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
