"""Uniform host metadata for every benchmark artifact the repo writes.

Cross-machine BENCH trajectories are only interpretable if every writer
records the same facts about where it ran — PR 9's sweep-scaling report
had to hand-note that CI pinned it to one core.  :func:`host_metadata`
is that record, produced in exactly one place so the perf harness, the
serving load lane, and the ad-hoc benchmark scripts can never drift on
field names.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict


def host_metadata() -> Dict[str, object]:
    """The uniform ``host`` block stamped into every ``BENCH_*.json``.

    Records the visible CPU count, the platform string, the interpreter
    version, and the repository version — enough to tell whether two
    trajectory points are comparable, deliberately free of hostnames and
    timestamps so committing a report stays deterministic for a given
    machine and build.
    """
    from repro import __version__

    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "repro_version": __version__,
    }


__all__ = ["host_metadata"]
