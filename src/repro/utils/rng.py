"""Deterministic random-number utilities.

Every stochastic component in the library (the epsilon-greedy agent, the
random policy, the workload generator, the traffic generator) receives an
explicit random source so that experiments are reproducible.  The helpers
here make it easy to derive independent, stable streams from a single
experiment seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Optional, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable 63-bit child seed from ``base_seed`` and labels.

    The derivation hashes the textual representation of the labels, so the
    same ``(base_seed, labels)`` pair always yields the same child seed on
    every platform and Python version.
    """
    text = f"{base_seed}::" + "::".join(str(label) for label in labels)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


class SeededRNG:
    """A thin wrapper around :class:`random.Random` with stream derivation.

    The wrapper exposes only the operations the library needs, which keeps
    call sites explicit and makes it easy to audit where randomness enters
    an experiment.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def spawn(self, *labels: object) -> "SeededRNG":
        """Return an independent child stream identified by ``labels``."""
        return SeededRNG(derive_seed(self.seed, *labels))

    def random(self) -> float:
        """Return a float uniformly distributed in ``[0, 1)``."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Return a float uniformly distributed in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in ``[low, high]``."""
        return self._random.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """Return one element of ``options`` chosen uniformly."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(options)

    def weighted_choice(self, options: Sequence[T], weights: Sequence[float]) -> T:
        """Return one element of ``options`` with the given relative weights."""
        if len(options) != len(weights):
            raise ValueError("options and weights must have the same length")
        return self._random.choices(list(options), weights=list(weights), k=1)[0]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def sample(self, options: Sequence[T], count: int) -> list:
        """Return ``count`` distinct elements sampled from ``options``."""
        return self._random.sample(list(options), count)

    def gauss(self, mu: float, sigma: float) -> float:
        """Return a normally-distributed float."""
        return self._random.gauss(mu, sigma)

    def pick_subset(self, options: Iterable[T], probability: float) -> list:
        """Return the subset of ``options`` where each element is kept i.i.d."""
        return [item for item in options if self._random.random() < probability]

    def maybe(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        return self._random.random() < probability

    def state(self) -> object:
        """Return the underlying generator state (for tests)."""
        return self._random.getstate()

    def export_state(self) -> list:
        """Return the generator state as a JSON-able structure.

        The counterpart of :meth:`restore_state`; used by the trained-policy
        artifacts (:mod:`repro.models`) to persist the exact point a
        stream had reached, so a reloaded policy consumes the same draws an
        in-process one would.
        """
        version, internal, gauss_next = self._random.getstate()
        return [int(version), [int(word) for word in internal], gauss_next]

    def restore_state(self, state: object) -> None:
        """Restore a state captured by :meth:`export_state`.

        Accepts the JSON round-tripped form (lists instead of tuples) and
        raises ``ValueError`` on anything that does not look like one.
        """
        try:
            version, internal, gauss_next = state  # type: ignore[misc]
            self._random.setstate(
                (int(version), tuple(int(word) for word in internal), gauss_next)
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"invalid serialised RNG state: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRNG(seed={self.seed})"


def optional_rng(rng: Optional[SeededRNG], default_seed: int = 0) -> SeededRNG:
    """Return ``rng`` if given, otherwise a fresh stream with ``default_seed``."""
    return rng if rng is not None else SeededRNG(default_seed)
