"""Filesystem helpers shared across the persistence layers.

Currently one primitive: the atomic text write used by both the sweep
result cache and the trained-policy artifacts, so the write-commit
discipline (and any future hardening of it) lives in exactly one place.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically; return the target path.

    The text lands in a ``<name>.tmp.<pid>`` sibling first and is
    committed with :func:`os.replace`, so readers never observe a
    partially written file.  A *failed* write removes its own temp file;
    a *killed* writer can still orphan one — stores built on this helper
    must treat ``.tmp.`` siblings as non-entries and sweep them (see
    ``ResultCache.stale_tmp_files``).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, target)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    return target
