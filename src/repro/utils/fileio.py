"""Filesystem helpers shared across the persistence layers.

Two primitives live here:

* :func:`atomic_write_text` — the atomic text write used by the sweep
  result cache, the trained-policy artifacts, and the model registry, so
  the write-commit discipline (and any future hardening of it) lives in
  exactly one place;
* :func:`read_json_document` — the matching read side: one JSON document
  read in a single call, so every store built on the atomic write reads
  whole committed documents and maps the two possible failures (an
  unreadable file, invalid JSON) to its own domain error.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically; return the target path.

    The text lands in a ``<name>.tmp.<pid>`` sibling first and is
    committed with :func:`os.replace`, so readers never observe a
    partially written file.  A *failed* write removes its own temp file;
    a *killed* writer can still orphan one — stores built on this helper
    must treat ``.tmp.`` siblings as non-entries and sweep them (see
    ``ResultCache.stale_tmp_files``).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, target)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    return target


def read_json_document(path: Union[str, Path]) -> object:
    """Read ``path`` in one call and decode it as a single JSON document.

    The read is one ``read_text`` of a file that writers commit with
    :func:`atomic_write_text`, so the decoded document is always one
    writer's complete output — old or new, never a torn mixture.  The two
    failure modes propagate unchanged (:class:`OSError` for an unreadable
    file, :class:`ValueError` for invalid JSON) so callers can map them to
    their own domain errors with contextual messages.
    """
    return json.loads(Path(path).read_text())
