"""The simulation-core backend switch (``REPRO_CORE_BACKEND``).

The hot kernels of the simulation core — the Q-table in
:mod:`repro.core.qtable`, the event loop in :mod:`repro.sim.engine`, and
the set-associative cache model in :mod:`repro.soc.cache` — ship in two
implementations:

* ``reference`` — the canonical pure-Python implementations, kept
  deliberately simple and stable.  They define the semantics.
* ``vectorized`` — the performance implementations: dense-matrix Q-table
  storage with batched updates, cohort draining of same-timestamp events,
  and specialised cache range walks.

Both backends are **bit-identical by contract**: the differential-testing
harness (``tests/test_core_differential.py``) drives generated episodes,
generated scenarios, and the quick figure grids through both and asserts
equal payload digests, work counts, and checksums, and ``repro.perf
compare`` gates every benchmark on exact work counts and checksums.  See
``docs/performance.md``.

The backend is selected per *object construction* (a ``QTable``, an
``Engine``, a ``SetAssociativeCache`` each capture the active backend when
built), so a sweep worker process picks the backend up from its inherited
environment and an in-process test can flip it with :func:`core_backend`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigurationError

#: Environment variable holding the backend selection.
CORE_BACKEND_ENV = "REPRO_CORE_BACKEND"

#: The recognised backend names.
CORE_BACKENDS = ("reference", "vectorized")

#: Backend used when the environment does not specify one.
DEFAULT_CORE_BACKEND = "vectorized"


def normalize_backend(value: Optional[str]) -> str:
    """Validate ``value`` as a backend name; ``None`` means the default.

    Raises :class:`~repro.errors.ConfigurationError` on anything that is
    not one of :data:`CORE_BACKENDS` (after stripping and lower-casing).
    """
    if value is None:
        return DEFAULT_CORE_BACKEND
    name = value.strip().lower()
    if name not in CORE_BACKENDS:
        raise ConfigurationError(
            f"unknown core backend {value!r}; known: {', '.join(CORE_BACKENDS)}"
        )
    return name


def active_backend() -> str:
    """Return the currently selected core backend.

    Reads :data:`CORE_BACKEND_ENV` (default :data:`DEFAULT_CORE_BACKEND`).
    Hot objects call this once at construction, never per operation.
    """
    return normalize_backend(os.environ.get(CORE_BACKEND_ENV))


@contextmanager
def core_backend(name: str) -> Iterator[str]:
    """Temporarily select backend ``name`` for the duration of the block.

    The selection is made through the environment so that worker processes
    spawned inside the block (e.g. by the ``process`` sweep backend)
    inherit it.  Nested uses restore the previous selection on exit.
    """
    resolved = normalize_backend(name)
    previous = os.environ.get(CORE_BACKEND_ENV)
    os.environ[CORE_BACKEND_ENV] = resolved
    try:
        yield resolved
    finally:
        if previous is None:
            os.environ.pop(CORE_BACKEND_ENV, None)
        else:
            os.environ[CORE_BACKEND_ENV] = previous
