"""Statistics helpers used by the experiment harnesses.

The paper reports most results as values *normalised* to a reference policy
(usually the fixed non-coherent-DMA policy) and aggregates across phases
with the geometric mean.  The helpers here implement those conventions once
so every experiment formats results the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence


def mean(values: Sequence[float]) -> float:
    """Return the arithmetic mean of ``values`` (0.0 for an empty input)."""
    items = list(values)
    if not items:
        return 0.0
    return sum(items) / len(items)


def geometric_mean(values: Sequence[float]) -> float:
    """Return the geometric mean of strictly-positive ``values``.

    Zero values are clamped to a tiny epsilon so that a phase with zero
    off-chip accesses does not collapse the whole aggregate to zero; this
    mirrors how the paper can plot normalised access counts of zero.
    """
    items = [max(float(v), 1e-12) for v in values]
    if not items:
        return 0.0
    return math.exp(sum(math.log(v) for v in items) / len(items))


def normalize(values: Mapping[str, float], reference_key: str) -> Dict[str, float]:
    """Normalise every entry of ``values`` to the entry at ``reference_key``.

    If the reference value is zero, all entries are returned unchanged; this
    only happens for access counts that are all zero, where any ratio is
    equally uninformative.
    """
    if reference_key not in values:
        raise KeyError(f"reference key {reference_key!r} not present")
    reference = float(values[reference_key])
    if reference == 0.0:
        return dict(values)
    return {key: float(value) / reference for key, value in values.items()}


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Return ``numerator / denominator`` guarding against a zero denominator."""
    if denominator == 0.0:
        return default
    return numerator / denominator


@dataclass
class RunningStats:
    """Streaming min/max/mean/count accumulator.

    Used by the reward bookkeeping (which needs per-accelerator running
    minima and maxima of the scaled metrics) and by the monitors.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    _sum_sq: float = field(default=0.0, repr=False)

    def add(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self._sum_sq += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations recorded so far."""
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the observations recorded so far."""
        if self.count == 0:
            return 0.0
        mu = self.mean
        return max(self._sum_sq / self.count - mu * mu, 0.0)

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator combining ``self`` and ``other``."""
        merged = RunningStats()
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged._sum_sq = self._sum_sq + other._sum_sq
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged


def normalized_series(
    series: Mapping[str, Mapping[str, float]], reference_key: str
) -> Dict[str, Dict[str, float]]:
    """Normalise a two-level mapping ``{group: {key: value}}`` per group."""
    return {
        group: normalize(values, reference_key) for group, values in series.items()
    }


def summarize_speedup(
    baseline_times: Sequence[float], subject_times: Sequence[float]
) -> float:
    """Return the average speedup of subject over baseline.

    Speedup for one pair is ``baseline / subject``; the aggregate is the
    geometric mean minus one, expressed as a fraction (0.38 means "38 %
    faster"), matching how the paper reports its headline improvement.
    """
    if len(baseline_times) != len(subject_times):
        raise ValueError("speedup series must have matching lengths")
    ratios: List[float] = []
    for base, subject in zip(baseline_times, subject_times):
        if subject <= 0.0:
            continue
        ratios.append(base / subject)
    if not ratios:
        return 0.0
    return geometric_mean(ratios) - 1.0


def summarize_reduction(
    baseline_values: Sequence[float], subject_values: Sequence[float]
) -> float:
    """Return the average fractional reduction of subject vs baseline.

    A value of 0.66 means the subject used 66 % fewer off-chip accesses than
    the baseline, matching the paper's headline formulation.
    """
    if len(baseline_values) != len(subject_values):
        raise ValueError("reduction series must have matching lengths")
    reductions: List[float] = []
    for base, subject in zip(baseline_values, subject_values):
        if base <= 0.0:
            continue
        reductions.append(max(0.0, 1.0 - subject / base))
    if not reductions:
        return 0.0
    return mean(reductions)
