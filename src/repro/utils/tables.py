"""Plain-text table formatting for experiment reports.

The benchmark harnesses print the same rows and series that the paper's
tables and figures report.  This module renders them as aligned ASCII
tables so results are readable in a terminal and in the captured
``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    header_row = [str(h) for h in headers]
    widths = [len(h) for h in header_row]
    for row in str_rows:
        if len(row) != len(header_row):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(header_row)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(header_row))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_mapping(title: str, mapping: dict) -> str:
    """Render a flat ``{key: value}`` mapping as a two-column table."""
    return format_table(("key", "value"), sorted(mapping.items()), title=title)
