"""Small generic helpers shared by the rest of the library."""

from repro.utils.backend import (
    CORE_BACKENDS,
    DEFAULT_CORE_BACKEND,
    active_backend,
    core_backend,
)
from repro.utils.rng import SeededRNG, derive_seed
from repro.utils.stats import RunningStats, geometric_mean, mean, normalize
from repro.utils.tables import format_table

__all__ = [
    "CORE_BACKENDS",
    "DEFAULT_CORE_BACKEND",
    "active_backend",
    "core_backend",
    "SeededRNG",
    "derive_seed",
    "RunningStats",
    "geometric_mean",
    "mean",
    "normalize",
    "format_table",
]
