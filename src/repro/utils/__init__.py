"""Small generic helpers shared by the rest of the library."""

from repro.utils.rng import SeededRNG, derive_seed
from repro.utils.stats import RunningStats, geometric_mean, mean, normalize
from repro.utils.tables import format_table

__all__ = [
    "SeededRNG",
    "derive_seed",
    "RunningStats",
    "geometric_mean",
    "mean",
    "normalize",
    "format_table",
]
