"""Common units and platform constants used across the library.

The simulator's time base is the SoC clock *cycle*.  Sizes are expressed in
bytes.  The constants below mirror the ESP platform parameters reported in
the paper (Section 4.3 and Table 4): 32-bit NoC planes and memory links,
64-byte cache lines, and per-tile private caches of 32 or 64 KB.
"""

from __future__ import annotations

#: One kibibyte in bytes.
KB = 1024

#: One mebibyte in bytes.
MB = 1024 * KB

#: One gibibyte in bytes.
GB = 1024 * MB

#: Size of a cache line in bytes (ESP uses 64-byte lines).
CACHE_LINE_BYTES = 64

#: Width of one NoC plane / memory channel in bytes per cycle (32 bits).
NOC_PLANE_BYTES_PER_CYCLE = 4

#: Bandwidth of the link between a memory tile and its DRAM channel
#: (the paper states 32 bits per cycle per memory tile).
MEM_LINK_BYTES_PER_CYCLE = 4

#: Default size of a "big page" used by the ESP accelerator data allocator.
BIG_PAGE_BYTES = 1 * MB


def bytes_to_lines(num_bytes: int, line_size: int = CACHE_LINE_BYTES) -> int:
    """Return the number of cache lines spanned by ``num_bytes``.

    The count is rounded up so that a partial line still occupies a full
    line in the cache, matching how real hardware allocates storage.
    """
    if num_bytes <= 0:
        return 0
    return (num_bytes + line_size - 1) // line_size


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return ((value + alignment - 1) // alignment) * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the previous multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value // alignment) * alignment


def human_bytes(num_bytes: float) -> str:
    """Format a byte count for logs and reports (e.g. ``'256.0KB'``)."""
    value = float(num_bytes)
    for suffix in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or suffix == "TB":
            return f"{value:.1f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")
