"""Shared JSON/HTTP wire substrate for every server in the repository.

Three in-repo services speak the same hand-rolled dialect — one JSON
document per request and one per response over keep-alive HTTP/1.1, with
failures mapped to a typed error envelope from a closed vocabulary:

* :mod:`repro.serving` (the policy-serving API),
* the distributed sweep coordinator
  (:mod:`repro.experiments.sweep.distributed`),
* :mod:`repro.tracking` (the read-only experiment-tracking API).

This package owns the substrate they share rather than letting each fork
its own copy:

* :mod:`repro.net.envelope` — the typed error-envelope machinery: a
  closed ``{error-type: HTTP status}`` vocabulary per service, envelope
  construction, and the :class:`~repro.net.envelope.EnvelopeError` base
  for wire errors that carry their own envelope type.  A traceback never
  crosses the wire.
* :mod:`repro.net.http` — :class:`~repro.net.http.JsonHttpServer`, the
  asyncio keep-alive HTTP/1.1 transport: request framing with head/body
  caps, connection-task teardown, JSON response serialisation, and the
  shared ``/healthz`` route.

Deliberately framework-free: the protocol surface is a handful of routes
exchanging single JSON documents, and a web framework would be the only
third-party dependency in the repository.
"""

from repro.net.envelope import EnvelopeError, make_envelope
from repro.net.http import JsonHttpServer

__all__ = [
    "EnvelopeError",
    "JsonHttpServer",
    "make_envelope",
]
