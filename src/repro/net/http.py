"""The shared asyncio keep-alive HTTP/1.1 transport.

:class:`JsonHttpServer` is the one implementation of the hand-rolled
HTTP/1.1 dialect every in-repo server speaks: request-line + headers +
``Content-Length`` body framing with head/body caps, keep-alive
connection handling with cancel-on-teardown, JSON responses serialised
with sorted keys, and the ``/healthz`` liveness route.  Subclasses
provide the route table (:meth:`JsonHttpServer.dispatch`) and the
health document (:meth:`JsonHttpServer.healthz_document`); everything
that frames bytes on the socket lives here, once.

Framing errors (malformed request line, bad ``Content-Length``,
oversized head or body) are answered with the service's typed envelope
and then the connection is dropped — the stream position is
unrecoverable.  Which envelope vocabulary applies is chosen by the
subclass through the ``wire_error`` constructor argument (an
:class:`~repro.net.envelope.EnvelopeError` subclass), so the wire
behavior of each service is exactly what its protocol module declares.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple, Type

from repro.net.envelope import EnvelopeError

#: Reason phrases for every status any in-repo service emits.
STATUS_REASON: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


class JsonHttpServer:
    """Keep-alive JSON-over-HTTP/1.1 transport shared by every server.

    Subclasses implement :meth:`dispatch` (the route table, mapping every
    failure to a typed envelope — nothing may escape it) and
    :meth:`healthz_document`, and may override :meth:`on_framing_error`
    to observe framing failures (e.g. for stats counters).  The transport
    itself never raises into the event loop: connection resets and
    cancellation on teardown are swallowed after cleanup.
    """

    def __init__(
        self,
        max_body_bytes: int,
        max_head_bytes: int,
        wire_error: Type[EnvelopeError],
    ) -> None:
        #: Largest accepted request body (bytes); larger gets a 413 envelope.
        self.max_body_bytes = int(max_body_bytes)
        #: Largest accepted request head (request line + headers, bytes).
        self.max_head_bytes = int(max_head_bytes)
        #: The service's :class:`EnvelopeError` subclass for wire errors.
        self.wire_error = wire_error
        self._connections: set = set()

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        """Route one request; subclasses map every failure to an envelope."""
        raise NotImplementedError

    def healthz_document(self) -> Dict[str, object]:
        """The liveness document served on ``GET /healthz``."""
        raise NotImplementedError

    def on_framing_error(self, exc: EnvelopeError) -> None:
        """Hook invoked before a framing error's envelope is written."""

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve keep-alive requests on one connection until EOF."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await self.read_request(reader)
                except EnvelopeError as exc:
                    # Framing errors (bad request line, oversized body):
                    # answer with the typed envelope, then drop the
                    # connection — the stream position is unrecoverable.
                    self.on_framing_error(exc)
                    await self.write_response(
                        writer, exc.status, exc.envelope(), keep_alive=False
                    )
                    break
                if request is None:
                    break
                method, path, body, keep_alive = request
                status, document = await self.dispatch(method, path, body)
                await self.write_response(writer, status, document, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled this handler; close and swallow —
            # re-raising out of the streams callback is logged as noise.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()

    async def cancel_connections(self) -> None:
        """Cancel and await every open connection-handler task.

        Idle keep-alive connections sit in a blocked read; cancelling
        them on teardown ensures no handler task outlives the server
        (and trips the event loop's "task was destroyed" noise).
        """
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()

    # ------------------------------------------------------------------
    # Request/response framing
    # ------------------------------------------------------------------
    async def read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        """Parse one request; ``None`` on a clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        except asyncio.LimitOverrunError as exc:
            raise self.wire_error(
                "payload-too-large", "request head exceeds the server limit"
            ) from exc
        if len(head) > self.max_head_bytes:
            raise self.wire_error(
                "payload-too-large", "request head exceeds the server limit"
            )
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise self.wire_error(
                "invalid-request", f"malformed request line {lines[0]!r}"
            )
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise self.wire_error(
                "invalid-request", f"invalid Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise self.wire_error(
                "invalid-request", f"invalid Content-Length {length}"
            )
        if length > self.max_body_bytes:
            raise self.wire_error(
                "payload-too-large",
                f"request body of {length} bytes exceeds the server limit "
                f"of {self.max_body_bytes}",
            )
        body = await reader.readexactly(length) if length else b""
        # Strip any query string: the protocol carries everything in JSON.
        path = target.split("?", 1)[0]
        return method.upper(), path, body, keep_alive

    async def write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        document: Dict[str, object],
        keep_alive: bool,
    ) -> None:
        """Serialise one JSON response with standard framing headers."""
        payload = json.dumps(document, sort_keys=True).encode("utf-8")
        reason = STATUS_REASON.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Route helpers
    # ------------------------------------------------------------------
    def route_builtin(
        self, method: str, path: str
    ) -> Optional[Tuple[int, Dict[str, object]]]:
        """Serve the routes every server shares; ``None`` if not one."""
        if path == "/healthz":
            self.require_method(method, "GET", path)
            return 200, self.healthz_document()
        return None

    def require_method(self, method: str, expected: str, path: str) -> None:
        """Reject a request whose method does not match the route."""
        if method != expected:
            raise self.wire_error(
                "invalid-request", f"{path} expects {expected}, got {method}"
            )

    def parse_json_body(self, body: bytes) -> object:
        """Decode a request body as one JSON document."""
        if not body:
            raise self.wire_error(
                "invalid-request", "request body must be a JSON document"
            )
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise self.wire_error(
                "invalid-request", f"request body is not valid JSON: {exc}"
            ) from exc


__all__ = ["JsonHttpServer", "STATUS_REASON"]
