"""Typed error-envelope machinery shared by every wire protocol.

Each service declares a **closed vocabulary** — a mapping from error-type
name to HTTP status code — and every failure that crosses the wire is one
JSON envelope drawn from that vocabulary::

    {"error": {"type": "invalid-request", "status": 400, "message": "..."}}

Because the vocabulary is closed, constructing an envelope (or a wire
error) for an unknown type is a server-side bug and raises the service's
own domain error immediately, before anything reaches the socket.  The
flip side of the same discipline: a traceback never crosses the wire —
unexpected exceptions become opaque ``internal-error`` envelopes at the
dispatch boundary while the details stay in the server process.
"""

from __future__ import annotations

from typing import Dict, Mapping, Type

from repro.errors import ReproError


def make_envelope(
    vocabulary: Mapping[str, int],
    error_type: str,
    message: str,
    unknown_error: Type[Exception] = ReproError,
) -> Dict[str, object]:
    """Build the JSON error envelope for ``error_type``.

    ``vocabulary`` is the service's closed ``{type: status}`` set;
    asking for a type outside it raises ``unknown_error`` (the service's
    domain error class) rather than inventing a status code.
    """
    if error_type not in vocabulary:
        raise unknown_error(f"unknown error-envelope type {error_type!r}")
    return {
        "error": {
            "type": error_type,
            "status": vocabulary[error_type],
            "message": message,
        }
    }


class EnvelopeError(Exception):
    """Base for wire errors that carry their own typed envelope.

    Subclasses bind a service's closed vocabulary by setting two class
    attributes — :attr:`vocabulary` (the ``{type: status}`` mapping) and
    :attr:`unknown_error` (the domain error raised when constructed with
    a type outside it) — and additionally inherit from the service's
    domain error so ``except`` clauses written against the domain
    hierarchy keep working.
    """

    #: The service's closed ``{error-type: HTTP status}`` vocabulary.
    vocabulary: Mapping[str, int] = {}

    #: Domain error raised when ``error_type`` is outside the vocabulary.
    unknown_error: Type[Exception] = ReproError

    def __init__(self, error_type: str, message: str) -> None:
        if error_type not in self.vocabulary:
            raise self.unknown_error(f"unknown error-envelope type {error_type!r}")
        super().__init__(message)
        #: One of the :attr:`vocabulary` keys.
        self.error_type = error_type

    @property
    def status(self) -> int:
        """The HTTP status code of this error's envelope."""
        return self.vocabulary[self.error_type]

    def envelope(self) -> Dict[str, object]:
        """The JSON error envelope for this error."""
        return make_envelope(
            self.vocabulary, self.error_type, str(self), self.unknown_error
        )


__all__ = ["EnvelopeError", "make_envelope"]
