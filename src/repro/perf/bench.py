"""Benchmark definitions for the simulation-core hot paths.

Each benchmark exercises one layer in isolation — the same layers the
profile-guided optimisations in this package's history targeted — plus one
end-to-end benchmark that regenerates a reduced Figure 9 headline sweep.
Benchmarks are deterministic: given the same code and scale they perform a
fixed amount of ``work`` and produce a stable ``checksum`` of their
simulation results, so report diffs can separate timing changes from
behavioural changes.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Scale knobs per benchmark: ``quick`` is sized for a CI smoke lane (a few
#: seconds on the whole suite), ``default`` for locally meaningful numbers.
_SCALES = ("quick", "default")


@dataclass(frozen=True)
class BenchmarkResult:
    """Outcome of one benchmark run."""

    name: str
    wall_s: float
    work: int
    unit: str
    checksum: str

    @property
    def rate(self) -> float:
        """Work units per second (the regression-gated metric)."""
        return self.work / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON form stored in the perf report."""
        return {
            "wall_s": round(self.wall_s, 6),
            "work": self.work,
            "unit": self.unit,
            "rate": round(self.rate, 3),
            "checksum": self.checksum,
        }


def _digest(payload: object) -> str:
    """Stable hex digest of a JSON-serialisable payload."""
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Engine event loop
# ----------------------------------------------------------------------
def _bench_engine_events(quick: bool) -> Tuple[int, str]:
    """Time-ordered interleaving of many generator processes."""
    from repro.sim.engine import Engine, ResumeAt
    from repro.utils.rng import SeededRNG

    processes = 300 if quick else 600
    steps = 100 if quick else 160
    engine = Engine()
    rng = SeededRNG(7)

    def worker(delays: List[float]):
        for index, delay in enumerate(delays):
            if index % 7 == 3:
                yield ResumeAt(engine.now + delay)
            else:
                yield delay

    for index in range(processes):
        delays = [rng.uniform(0.5, 50.0) for _ in range(steps)]
        engine.spawn(f"p{index}", worker(delays), start_delay=rng.uniform(0.0, 10.0))
    engine.run()
    return engine.events_processed, _digest(
        {"now": round(engine.now, 6), "events": engine.events_processed}
    )


# ----------------------------------------------------------------------
# Memory-system access path (datapath + caches + DRAM)
# ----------------------------------------------------------------------
def _bench_memory_access(quick: bool) -> Tuple[int, str]:
    """DMA transfers and flushes through every coherence mode."""
    from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
    from repro.soc.config import soc_preset
    from repro.soc.soc import Soc
    from repro.units import KB

    repeats = 8 if quick else 24
    soc = Soc(soc_preset("SoC1").with_line_size(256))
    buffer = soc.allocate_buffer(512 * KB, name="bench")
    soc.warm_buffer(buffer, cpu_index=0)
    acc_tile = soc.accelerator_tile_name(0)
    private = soc.private_cache_of(acc_tile)

    now = 0.0
    totals = 0
    for repeat in range(repeats):
        for mode in COHERENCE_MODES:
            if mode is CoherenceMode.FULL_COH and private is None:
                continue
            segments = buffer.slice((repeat * 64 * KB) % (256 * KB), 128 * KB)
            finish, flush_stats = soc.datapath.flush_for_invocation(now, mode, segments)
            now = max(now, finish)
            finish, stats = soc.datapath.dma_read(
                now, acc_tile, segments, mode, burst_bytes=4 * KB, private_cache=private
            )
            now = max(now, finish)
            finish, wstats = soc.datapath.dma_write(
                now, acc_tile, segments, mode, burst_bytes=4 * KB, private_cache=private
            )
            now = max(now, finish)
            stats.merge(wstats).merge(flush_stats)
            totals += stats.llc_hits + stats.llc_misses + stats.dram_lines
            totals += stats.private_hits + stats.private_misses
    checksum = _digest(
        {
            "now": round(now, 6),
            "llc": [partition.stats() for partition in soc.llc_partitions],
            "dram": [ctrl.counters.as_dict() for ctrl in soc.dram_controllers],
        }
    )
    return totals, checksum


# ----------------------------------------------------------------------
# NoC routing
# ----------------------------------------------------------------------
def _bench_noc_routing(quick: bool) -> Tuple[int, str]:
    """XY-routed transfers converging on shared memory-tile links."""
    from repro.soc.noc import MeshNoC, TileCoordinate

    transfers = 50_000 if quick else 200_000
    noc = MeshNoC(rows=4, cols=4, hop_cycles=1.0, link_bytes_per_cycle=4.0)
    sources = []
    for row in range(4):
        for col in range(4):
            name = f"t{row}{col}"
            noc.place_tile(name, TileCoordinate(row, col))
            sources.append(name)
    mem_tiles = [(0, "t00"), (1, "t03"), (2, "t30"), (3, "t33")]
    for mem_tile, name in mem_tiles:
        noc.register_memory_tile(mem_tile, name)

    finish = 0.0
    for index in range(transfers):
        src = sources[index % len(sources)]
        mem_tile, mem_name = mem_tiles[(index // 3) % len(mem_tiles)]
        finish = noc.transfer(float(index), src, mem_tile, mem_name, 64 + (index % 7) * 32)
    return transfers, _digest({"finish": round(finish, 6), "links": noc.link_stats()})


# ----------------------------------------------------------------------
# Q-learning decision step
# ----------------------------------------------------------------------
def _bench_qlearning_step(quick: bool) -> Tuple[int, str]:
    """Sense-discretise-decide-update cycle of the Cohmeleon agent."""
    from repro.core.agent import QLearningAgent
    from repro.core.state import discretize_snapshot
    from repro.runtime.status import SystemSnapshot
    from repro.soc.coherence import CoherenceMode
    from repro.units import KB
    from repro.utils.rng import SeededRNG

    steps = 30_000 if quick else 120_000
    agent = QLearningAgent(rng=SeededRNG(11))
    rng = SeededRNG(13)
    labels = [mode.label for mode in CoherenceMode]
    for step in range(steps):
        agent.set_training_progress(step / steps)
        snapshot = SystemSnapshot(
            target_footprint_bytes=rng.randint(1, 2048) * KB,
            target_mem_tiles=(0, 1),
            active_per_mode={label: rng.randint(0, 3) for label in labels},
            non_coh_per_target_tile=rng.uniform(0.0, 3.0),
            llc_users_per_target_tile=rng.uniform(0.0, 3.0),
            tile_footprint_bytes=rng.uniform(0.0, 2048.0) * KB,
            active_footprint_bytes=rng.randint(0, 4096) * KB,
            active_accelerators=rng.randint(0, 6),
            l2_bytes=32 * KB,
            llc_partition_bytes=256 * KB,
            llc_total_bytes=1024 * KB,
        )
        state = discretize_snapshot(snapshot)
        mode = agent.select_action(state)
        agent.update(state, mode, reward=rng.uniform(-1.0, 1.0))
    checksum = _digest(
        {
            "qsum": round(float(agent.qtable.values.sum()), 9),
            "coverage": round(agent.qtable.coverage(), 9),
            "decisions": agent.decisions,
        }
    )
    return steps, checksum


# ----------------------------------------------------------------------
# End-to-end Figure 9 headline path
# ----------------------------------------------------------------------
def _bench_fig9_headline(quick: bool) -> Tuple[int, str]:
    """Reduced Figure 9 sweep through the real experiment entry point."""
    from repro.experiments.socs import run_soc_comparison
    from repro.experiments.sweep import RunConfig, SweepRunner

    if quick:
        labels: Sequence[str] = ("SoC1", "SoC6")
        iterations = 1
    else:
        labels = ("SoC0-Streaming", "SoC1", "SoC4", "SoC6")
        iterations = 2
    comparison = run_soc_comparison(
        labels=labels,
        training_iterations=iterations,
        seed=29,
        # Pin the serial backend explicitly: the benchmark times the
        # simulation itself, never pool management or pickling.
        runner=SweepRunner(config=RunConfig(workers=1, backend="serial")),
    )
    payload = {
        soc: {name: ev.to_dict() for name, ev in evaluations.items()}
        for soc, evaluations in comparison.evaluations.items()
    }
    invocations = sum(
        len(phase.get("invocations", []))
        for evaluations in payload.values()
        for ev in evaluations.values()
        for phase in ev["result"]["phases"]
    )
    return invocations, _digest(payload)


# ----------------------------------------------------------------------
# Serving decision path (HTTP server + concurrent clients)
# ----------------------------------------------------------------------
def _bench_serving(quick: bool) -> Tuple[int, str]:
    """Batched decisions through the full asyncio serving stack.

    Builds a deterministic trained table (seeded updates, no simulation),
    serves it from a temporary registry, and drives it with concurrent
    keep-alive clients issuing batched ``/v1/decide`` requests.  ``work``
    is the total decisions served; the checksum covers every decision
    label in request order (but not the digest or library version), so it
    is identical across machines and core backends — exactly the
    determinism the serving contract promises.
    """
    import asyncio
    import tempfile

    from repro.core.policies import CohmeleonPolicy
    from repro.core.state import NUM_STATES
    from repro.models.artifact import PolicyArtifact, build_provenance
    from repro.models.registry import ModelRegistry
    from repro.serving.client import ServingClient
    from repro.serving.http import ServingServer
    from repro.serving.service import PolicyService
    from repro.soc.coherence import COHERENCE_MODES
    from repro.utils.rng import SeededRNG, derive_seed

    clients = 4 if quick else 8
    requests = 50 if quick else 150
    batch = 64

    policy = CohmeleonPolicy(rng=SeededRNG(11))
    table = policy.agent.qtable
    fill = SeededRNG(13)
    for _ in range(3000):
        table.update(
            fill.randint(0, NUM_STATES - 1),
            COHERENCE_MODES[fill.randint(0, len(COHERENCE_MODES) - 1)],
            fill.uniform(-1.0, 1.0),
            0.1,
        )
    policy.freeze()
    artifact = PolicyArtifact.from_policy(
        policy, "bench-serving", build_provenance("bench-serving", "0" * 64, 11, 0)
    )

    async def _client(
        host: str, port: int, index: int, sink: "List[List[List[str]]]"
    ) -> int:
        rng = SeededRNG(derive_seed(17, "bench-serving", str(index)))
        served = 0
        async with ServingClient(host, port) as client:
            for _ in range(requests):
                states = [rng.randint(0, NUM_STATES - 1) for _ in range(batch)]
                status, document = await client.decide(states)
                if status != 200:
                    raise RuntimeError(f"decision request failed with {status}")
                decisions = [str(label) for label in document["decisions"]]
                sink[index].append(decisions)
                served += len(decisions)
        return served

    async def _run() -> "Tuple[int, List[List[List[str]]]]":
        with tempfile.TemporaryDirectory() as tmp:
            registry = ModelRegistry(tmp)
            registry.save(artifact)
            service = PolicyService(registry, "bench-serving")
            async with ServingServer(service, reload_interval=0) as server:
                sink: List[List[List[str]]] = [[] for _ in range(clients)]
                totals = await asyncio.gather(
                    *(
                        _client(server.host, server.port, index, sink)
                        for index in range(clients)
                    )
                )
                return sum(totals), sink

    served, sink = asyncio.run(_run())
    return served, _digest(sink)


#: Registry of benchmark callables; each returns ``(work, checksum)``.
_BENCHMARKS: Dict[str, Tuple[Callable[[bool], Tuple[int, str]], str]] = {
    "engine_events": (_bench_engine_events, "events"),
    "memory_access": (_bench_memory_access, "line-accesses"),
    "noc_routing": (_bench_noc_routing, "transfers"),
    "qlearning_step": (_bench_qlearning_step, "decisions"),
    "fig9_headline": (_bench_fig9_headline, "invocations"),
    "serving": (_bench_serving, "decisions"),
}

#: Canonical benchmark ordering (isolated layers first, end-to-end last).
BENCHMARK_NAMES: Tuple[str, ...] = tuple(_BENCHMARKS)


def run_benchmark(name: str, quick: bool = False) -> BenchmarkResult:
    """Run one benchmark by name and return its measurements."""
    try:
        fn, unit = _BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARK_NAMES)}"
        ) from None
    start = time.perf_counter()
    work, checksum = fn(quick)
    wall = time.perf_counter() - start
    return BenchmarkResult(name=name, wall_s=wall, work=work, unit=unit, checksum=checksum)


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    progress: Optional[Callable[[str, BenchmarkResult], None]] = None,
) -> List[BenchmarkResult]:
    """Run the selected benchmarks (all by default) in canonical order."""
    selected = list(names) if names else list(BENCHMARK_NAMES)
    for name in selected:
        if name not in _BENCHMARKS:
            raise ConfigurationError(
                f"unknown benchmark {name!r}; known: {', '.join(BENCHMARK_NAMES)}"
            )
    results = []
    for name in BENCHMARK_NAMES:
        if name not in selected:
            continue
        result = run_benchmark(name, quick=quick)
        if progress is not None:
            progress(name, result)
        results.append(result)
    return results
