"""Micro-benchmark harness and performance contract for the simulation core.

``repro.perf`` times the hot paths every sweep job spends its wall-clock in
— the discrete-event engine loop, the coherence-mode memory access path,
NoC routing, and the Q-learning decision step — plus the end-to-end
Figure 9 headline sweep, and records the measurements in a JSON report
(``BENCH_core_hotpaths.json`` by convention).  Reports from two revisions
can be diffed with a tolerance gate, which is how CI keeps future changes
from silently regressing the paths this module measures.

Command line::

    python -m repro.perf run [--quick] [--out report.json] [--before old.json]
    python -m repro.perf compare old.json new.json --tolerance 0.5
    python -m repro.perf profile fig9_headline --limit 25

Every benchmark reports a deterministic ``work`` count and ``checksum``
alongside its wall-clock time, so a report diff distinguishes "the same
simulation got slower" (a perf regression) from "the simulation changed"
(a behavioural change that must be explained by the PR).  See
``docs/performance.md`` for the full contract.
"""

from repro.perf.bench import (
    BENCHMARK_NAMES,
    BenchmarkResult,
    run_benchmark,
    run_benchmarks,
)
from repro.perf.compare import CompareFinding, compare_reports
from repro.perf.report import (
    DEFAULT_REPORT_PATH,
    load_report,
    make_report,
    write_report,
)

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkResult",
    "CompareFinding",
    "DEFAULT_REPORT_PATH",
    "compare_reports",
    "load_report",
    "make_report",
    "run_benchmark",
    "run_benchmarks",
    "write_report",
]
