"""cProfile driver for the perf benchmarks.

``python -m repro.perf profile <benchmark>`` runs one benchmark under the
deterministic profiler and prints the hottest functions, which is how the
hot-path optimisations in this repository were found in the first place:
profile, fix the top entry, re-run ``repro.perf run``, repeat.
"""

from __future__ import annotations

import cProfile
import io
import pstats

from repro.errors import ConfigurationError
from repro.perf.bench import run_benchmark

#: Sort keys accepted by ``profile --sort``.
SORT_KEYS = ("tottime", "cumulative", "ncalls")


def profile_benchmark(
    name: str, quick: bool = False, sort: str = "tottime", limit: int = 25
) -> str:
    """Profile one benchmark; return the formatted hot-function table."""
    if sort not in SORT_KEYS:
        raise ConfigurationError(
            f"unknown sort key {sort!r}; known: {', '.join(SORT_KEYS)}"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_benchmark(name, quick=quick)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(limit)
    header = (
        f"benchmark {result.name}: {result.wall_s:.3f}s wall, "
        f"{result.work} {result.unit} ({result.rate:.1f}/s)\n"
    )
    return header + stream.getvalue()
