"""Perf-report serialisation (the ``BENCH_core_hotpaths.json`` format).

A report records one harness run: the scale it ran at, the interpreter it
ran on, and per benchmark the wall-clock time, the deterministic work count
and checksum, and the derived rate.  A report may embed the report of an
earlier revision under ``"before"`` (see ``run --before``), in which case a
``"speedup_vs_before"`` summary is computed — that is how a performance PR
commits its before/after evidence in one reviewable artifact.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, DocumentError
from repro.perf.bench import BenchmarkResult
from repro.store.readers import BENCH_SCHEMA, load_bench_report
from repro.utils.backend import active_backend
from repro.utils.host import host_metadata

#: Report format identifier (bump on breaking schema changes); defined
#: with the readers in :mod:`repro.store.readers`.
SCHEMA = BENCH_SCHEMA

#: Conventional location of the committed hot-path baseline.
DEFAULT_REPORT_PATH = Path("benchmarks") / "results" / "BENCH_core_hotpaths.json"


def make_report(
    results: List[BenchmarkResult],
    scale: str,
    before: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the JSON report for one harness run."""
    report: Dict[str, object] = {
        "schema": SCHEMA,
        "scale": scale,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "core_backend": active_backend(),
        "host": host_metadata(),
        "benchmarks": {result.name: result.to_dict() for result in results},
    }
    if before is not None:
        report["before"] = before
        report["speedup_vs_before"] = speedup_summary(before, report)
    return report


def speedup_summary(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, float]:
    """Per-benchmark rate ratio ``after / before`` (>1 means faster)."""
    speedups: Dict[str, float] = {}
    old = before.get("benchmarks", {})
    new = after.get("benchmarks", {})
    for name, entry in new.items():
        old_entry = old.get(name)
        if not old_entry:
            continue
        old_rate = float(old_entry.get("rate", 0.0))
        new_rate = float(entry.get("rate", 0.0))
        if old_rate > 0:
            speedups[name] = round(new_rate / old_rate, 3)
    return speedups


def write_report(report: Dict[str, object], path: Path) -> None:
    """Write a report to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: Path) -> Dict[str, object]:
    """Load and validate a report written by :func:`write_report`.

    Reads through :func:`repro.store.readers.load_bench_report` — the
    shared document layer — and maps its failures to the perf CLI's
    :class:`~repro.errors.ConfigurationError` with identical messages.
    """
    try:
        return load_bench_report(path)
    except DocumentError as exc:
        raise ConfigurationError(str(exc)) from None
