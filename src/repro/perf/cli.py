"""Command-line interface of the perf harness.

Subcommands::

    run      run the benchmarks and write a JSON report
    compare  diff two reports with the determinism and rate gates
    profile  run one benchmark under cProfile and print the hot functions

See ``docs/performance.md`` for how these fit the performance contract.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.perf.bench import BENCHMARK_NAMES, BenchmarkResult, run_benchmarks
from repro.perf.compare import compare_reports, render_findings
from repro.perf.profiling import SORT_KEYS, profile_benchmark
from repro.perf.report import (
    DEFAULT_REPORT_PATH,
    load_report,
    make_report,
    write_report,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Micro-benchmark harness for the simulation-core hot paths.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the benchmarks and write a JSON report")
    run.add_argument(
        "--quick", action="store_true", help="CI-sized workloads (a few seconds total)"
    )
    run.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_REPORT_PATH,
        help=f"report path (default: {DEFAULT_REPORT_PATH})",
    )
    run.add_argument(
        "--before",
        type=Path,
        default=None,
        help="embed this earlier report and compute per-benchmark speedups",
    )
    run.add_argument(
        "--only",
        action="append",
        choices=BENCHMARK_NAMES,
        default=None,
        help="run only this benchmark (repeatable)",
    )

    compare = sub.add_parser("compare", help="diff two reports with a tolerance gate")
    compare.add_argument("old", type=Path, help="baseline report")
    compare.add_argument("new", type=Path, help="candidate report")
    compare.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional rate drop before failing (default 0.2)",
    )
    compare.add_argument(
        "--no-determinism",
        action="store_true",
        help="skip the work/checksum equality gate (timing-only diff)",
    )

    profile = sub.add_parser("profile", help="profile one benchmark with cProfile")
    profile.add_argument("benchmark", choices=BENCHMARK_NAMES)
    profile.add_argument("--quick", action="store_true", help="CI-sized workload")
    profile.add_argument("--sort", choices=SORT_KEYS, default="tottime")
    profile.add_argument("--limit", type=int, default=25, help="rows to print")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    before = load_report(args.before) if args.before else None

    def progress(name: str, result: BenchmarkResult) -> None:
        print(
            f"  {name:<16} {result.wall_s:8.3f}s  "
            f"{result.work:>10} {result.unit} ({result.rate:,.1f}/s)"
        )

    scale = "quick" if args.quick else "default"
    print(f"repro.perf run (scale={scale})")
    results = run_benchmarks(names=args.only, quick=args.quick, progress=progress)
    report = make_report(results, scale=scale, before=before)
    write_report(report, args.out)
    print(f"wrote {args.out}")
    speedups = report.get("speedup_vs_before")
    if speedups:
        for name, ratio in sorted(speedups.items()):
            print(f"  speedup vs before: {name:<16} {ratio:.2f}x")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    old = load_report(args.old)
    new = load_report(args.new)
    findings = compare_reports(
        old, new, tolerance=args.tolerance, check_determinism=not args.no_determinism
    )
    print(render_findings(findings))
    failed = [finding for finding in findings if not finding.ok]
    if failed:
        print(f"{len(failed)} benchmark(s) failed the gate")
        return 1
    print("all benchmarks within tolerance")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    print(
        profile_benchmark(
            args.benchmark, quick=args.quick, sort=args.sort, limit=args.limit
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.perf``."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        return _cmd_profile(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
