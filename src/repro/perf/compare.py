"""Tolerance-gated comparison of two perf reports.

The comparison applies two gates per benchmark present in both reports:

* **Determinism gate** — the ``work`` count and result ``checksum`` must
  match exactly.  A mismatch means the two revisions simulated different
  things, so their timings are not comparable; the PR must either restore
  bit-identical behaviour or regenerate the baseline and explain why.
* **Rate gate** — the new work rate must not fall below the old rate by
  more than the given tolerance (``0.5`` allows a 50 % rate drop).  The
  gate is deliberately coarse when comparing across machines: it exists to
  catch algorithmic regressions (an accidental O(address-range) walk, a
  dropped cache), not percent-level noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CompareFinding:
    """One per-benchmark verdict of a report comparison."""

    name: str
    ok: bool
    kind: str
    message: str


def _entries(report: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ConfigurationError("report has no benchmarks section")
    return benchmarks


def compare_reports(
    old: Dict[str, object],
    new: Dict[str, object],
    tolerance: float,
    check_determinism: bool = True,
) -> List[CompareFinding]:
    """Compare two reports; findings with ``ok=False`` fail the gate."""
    if not 0.0 <= tolerance < 1.0:
        raise ConfigurationError(f"tolerance must be in [0, 1), got {tolerance}")
    if old.get("scale") != new.get("scale"):
        return [
            CompareFinding(
                name="<scale>",
                ok=False,
                kind="scale",
                message=(
                    f"reports ran at different scales "
                    f"({old.get('scale')!r} vs {new.get('scale')!r}); rerun at a matching scale"
                ),
            )
        ]

    findings: List[CompareFinding] = []
    old_entries = _entries(old)
    new_entries = _entries(new)
    for name, new_entry in new_entries.items():
        old_entry = old_entries.get(name)
        if old_entry is None:
            findings.append(
                CompareFinding(name, True, "new", "no baseline entry (new benchmark)")
            )
            continue
        if check_determinism:
            if new_entry.get("work") != old_entry.get("work") or new_entry.get(
                "checksum"
            ) != old_entry.get("checksum"):
                findings.append(
                    CompareFinding(
                        name,
                        False,
                        "determinism",
                        (
                            f"simulation changed: work {old_entry.get('work')} -> "
                            f"{new_entry.get('work')}, checksum "
                            f"{old_entry.get('checksum')} -> {new_entry.get('checksum')}"
                        ),
                    )
                )
                continue
        old_rate = float(old_entry.get("rate", 0.0))
        new_rate = float(new_entry.get("rate", 0.0))
        floor = old_rate * (1.0 - tolerance)
        if old_rate > 0 and new_rate < floor:
            findings.append(
                CompareFinding(
                    name,
                    False,
                    "rate",
                    (
                        f"rate regressed beyond tolerance: {old_rate:.1f} -> "
                        f"{new_rate:.1f} {new_entry.get('unit', '')}/s "
                        f"(floor {floor:.1f} at tolerance {tolerance})"
                    ),
                )
            )
        else:
            ratio = new_rate / old_rate if old_rate > 0 else float("inf")
            findings.append(
                CompareFinding(
                    name,
                    True,
                    "rate",
                    f"{old_rate:.1f} -> {new_rate:.1f} {new_entry.get('unit', '')}/s "
                    f"({ratio:.2f}x)",
                )
            )
    for name in old_entries:
        if name not in new_entries:
            findings.append(
                CompareFinding(
                    name, False, "missing", "benchmark present in baseline but not in new report"
                )
            )
    return findings


def render_findings(findings: List[CompareFinding]) -> str:
    """Human-readable table of comparison findings."""
    lines = []
    width = max((len(f.name) for f in findings), default=4)
    for finding in findings:
        status = "ok  " if finding.ok else "FAIL"
        lines.append(f"{status}  {finding.name:<{width}}  {finding.message}")
    return "\n".join(lines)
