"""``python -m repro.perf`` — run the perf-harness CLI."""

import sys

from repro.perf.cli import main

if __name__ == "__main__":
    sys.exit(main())
