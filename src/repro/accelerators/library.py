"""The accelerator library used throughout the evaluation.

These are behavioural models of the eleven ESP accelerators plus the NVDLA
that the paper deploys (Section 3, Table 2): denoising autoencoder,
Cholesky decomposition, 2D convolution, 1D FFT, dense matrix multiplication
(GEMM), MLP classifier, MRI-Q, NVDLA, the four-engine night-vision
pipeline, sort, sparse matrix-vector multiplication (SPMV), and Viterbi.

The communication parameters are chosen to reflect each kernel's well-known
characteristics (e.g. GEMM and Cholesky are compute-bound with high data
reuse; SPMV is irregular and latency-bound; sort and FFT stream data over
multiple passes and update it in place).  Absolute values are not taken
from the paper — only the resulting relative behaviour across coherence
modes matters for the reproduction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.accelerators.descriptor import AccessPattern, AcceleratorDescriptor
from repro.errors import ConfigurationError
from repro.units import KB

AUTOENCODER = AcceleratorDescriptor(
    name="Autoencoder",
    access_pattern=AccessPattern.STREAMING,
    burst_bytes=1024,
    compute_cycles_per_byte=0.3,
    reuse_factor=2.0,
    read_write_ratio=2.0,
    local_mem_bytes=64 * KB,
)

CHOLESKY = AcceleratorDescriptor(
    name="Cholesky",
    access_pattern=AccessPattern.STRIDED,
    burst_bytes=512,
    compute_cycles_per_byte=3.0,
    reuse_factor=4.0,
    read_write_ratio=1.0,
    in_place=True,
    local_mem_bytes=96 * KB,
    stride_bytes=256,
)

CONV2D = AcceleratorDescriptor(
    name="Conv-2D",
    access_pattern=AccessPattern.STREAMING,
    burst_bytes=1024,
    compute_cycles_per_byte=1.2,
    reuse_factor=3.0,
    read_write_ratio=2.0,
    local_mem_bytes=128 * KB,
)

FFT = AcceleratorDescriptor(
    name="FFT",
    access_pattern=AccessPattern.STREAMING,
    burst_bytes=2048,
    compute_cycles_per_byte=0.5,
    reuse_factor=3.0,
    read_write_ratio=1.0,
    in_place=True,
    local_mem_bytes=64 * KB,
)

GEMM = AcceleratorDescriptor(
    name="GEMM",
    access_pattern=AccessPattern.STRIDED,
    burst_bytes=512,
    compute_cycles_per_byte=2.5,
    reuse_factor=4.0,
    read_write_ratio=3.0,
    local_mem_bytes=128 * KB,
    stride_bytes=512,
)

MLP = AcceleratorDescriptor(
    name="MLP",
    access_pattern=AccessPattern.STREAMING,
    burst_bytes=1024,
    compute_cycles_per_byte=0.5,
    reuse_factor=2.0,
    read_write_ratio=4.0,
    local_mem_bytes=64 * KB,
)

MRI_Q = AcceleratorDescriptor(
    name="MRI-Q",
    access_pattern=AccessPattern.STREAMING,
    burst_bytes=1024,
    compute_cycles_per_byte=6.0,
    reuse_factor=1.0,
    read_write_ratio=2.0,
    local_mem_bytes=64 * KB,
)

NVDLA = AcceleratorDescriptor(
    name="NVDLA",
    access_pattern=AccessPattern.STREAMING,
    burst_bytes=2048,
    compute_cycles_per_byte=1.5,
    reuse_factor=3.0,
    read_write_ratio=3.0,
    local_mem_bytes=256 * KB,
)

NIGHT_VISION = AcceleratorDescriptor(
    name="Night-vision",
    access_pattern=AccessPattern.STREAMING,
    burst_bytes=1024,
    compute_cycles_per_byte=0.6,
    reuse_factor=4.0,
    read_write_ratio=1.0,
    in_place=True,
    local_mem_bytes=96 * KB,
)

SORT = AcceleratorDescriptor(
    name="Sort",
    access_pattern=AccessPattern.STREAMING,
    burst_bytes=1024,
    compute_cycles_per_byte=0.3,
    reuse_factor=4.0,
    read_write_ratio=1.0,
    in_place=True,
    local_mem_bytes=64 * KB,
)

SPMV = AcceleratorDescriptor(
    name="SPMV",
    access_pattern=AccessPattern.IRREGULAR,
    burst_bytes=64,
    compute_cycles_per_byte=0.3,
    reuse_factor=2.0,
    read_write_ratio=4.0,
    local_mem_bytes=32 * KB,
    access_fraction=0.6,
)

VITERBI = AcceleratorDescriptor(
    name="Viterbi",
    access_pattern=AccessPattern.STRIDED,
    burst_bytes=256,
    compute_cycles_per_byte=1.5,
    reuse_factor=2.0,
    read_write_ratio=2.0,
    local_mem_bytes=64 * KB,
    stride_bytes=128,
)

#: The full library in the order used by the paper's figures.
ACCELERATOR_LIBRARY: Tuple[AcceleratorDescriptor, ...] = (
    AUTOENCODER,
    CHOLESKY,
    CONV2D,
    FFT,
    GEMM,
    MLP,
    MRI_Q,
    NVDLA,
    NIGHT_VISION,
    SORT,
    SPMV,
    VITERBI,
)

_BY_NAME: Dict[str, AcceleratorDescriptor] = {acc.name: acc for acc in ACCELERATOR_LIBRARY}
# Also accept a few common aliases.
_ALIASES: Dict[str, str] = {
    "conv2d": "Conv-2D",
    "conv-2d": "Conv-2D",
    "mriq": "MRI-Q",
    "mri-q": "MRI-Q",
    "nightvision": "Night-vision",
    "night-vision": "Night-vision",
    "autoencoder": "Autoencoder",
    "cholesky": "Cholesky",
    "fft": "FFT",
    "gemm": "GEMM",
    "mlp": "MLP",
    "nvdla": "NVDLA",
    "sort": "Sort",
    "spmv": "SPMV",
    "viterbi": "Viterbi",
}


def accelerator_names() -> List[str]:
    """Names of every accelerator in the library, in canonical order."""
    return [accelerator.name for accelerator in ACCELERATOR_LIBRARY]


def accelerator_by_name(name: str) -> AcceleratorDescriptor:
    """Look up an accelerator by (case-insensitive) name or alias."""
    if name in _BY_NAME:
        return _BY_NAME[name]
    canonical = _ALIASES.get(name.lower())
    if canonical is not None:
        return _BY_NAME[canonical]
    raise ConfigurationError(
        f"unknown accelerator {name!r}; available: {accelerator_names()}"
    )
