"""Accelerator communication descriptors.

A :class:`AcceleratorDescriptor` captures how a fixed-function accelerator
interacts with the memory hierarchy during one invocation.  The fields are
the properties the paper identifies as the ones that influence the choice
of coherence mode: access pattern, DMA burst length, compute duration per
byte, data-reuse factor, read-to-write ratio, stride length (for strided
patterns), access fraction (for irregular patterns), in-place storage, and
the size of the accelerator's private local memory (scratchpad).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import Enum

from repro.errors import ConfigurationError
from repro.units import KB


class AccessPattern(Enum):
    """Memory-access pattern classes used by the traffic generator."""

    STREAMING = "streaming"
    STRIDED = "strided"
    IRREGULAR = "irregular"


@dataclass(frozen=True)
class AcceleratorDescriptor:
    """Communication characteristics of one fixed-function accelerator."""

    name: str
    access_pattern: AccessPattern = AccessPattern.STREAMING
    #: Length of one DMA burst in bytes (irregular accelerators issue short,
    #: line-sized requests; streaming accelerators issue long bursts).
    burst_bytes: int = 1024
    #: Compute cycles per byte of workload footprint (compute intensity).
    compute_cycles_per_byte: float = 4.0
    #: How many times the input data is (re-)read when it does not fit in
    #: the accelerator's local memory.
    reuse_factor: float = 1.0
    #: Ratio of bytes read to bytes written (2.0 means two reads per write).
    read_write_ratio: float = 1.0
    #: Whether results are stored in place over the input buffer.
    in_place: bool = False
    #: Private scratchpad capacity in bytes; data that fits is loaded once.
    local_mem_bytes: int = 64 * KB
    #: Stride in bytes between consecutive accesses (strided patterns only).
    stride_bytes: int = 0
    #: Fraction of the footprint actually touched (irregular patterns only).
    access_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.burst_bytes <= 0:
            raise ConfigurationError(f"{self.name}: burst_bytes must be positive")
        if self.compute_cycles_per_byte < 0:
            raise ConfigurationError(f"{self.name}: compute intensity must be >= 0")
        if self.reuse_factor < 1.0:
            raise ConfigurationError(f"{self.name}: reuse_factor must be >= 1")
        if self.read_write_ratio <= 0:
            raise ConfigurationError(f"{self.name}: read_write_ratio must be positive")
        if self.local_mem_bytes <= 0:
            raise ConfigurationError(f"{self.name}: local_mem_bytes must be positive")
        if not 0.0 < self.access_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: access_fraction must be in (0, 1]")
        if self.access_pattern is AccessPattern.STRIDED and self.stride_bytes <= 0:
            raise ConfigurationError(f"{self.name}: strided pattern needs stride_bytes")

    # ------------------------------------------------------------------
    # Derived communication volumes for one invocation
    # ------------------------------------------------------------------
    def input_bytes(self, footprint_bytes: int) -> int:
        """Bytes of input data within a workload of ``footprint_bytes``."""
        if self.in_place:
            return footprint_bytes
        ratio = self.read_write_ratio / (1.0 + self.read_write_ratio)
        return max(int(footprint_bytes * ratio), 1)

    def output_bytes(self, footprint_bytes: int) -> int:
        """Bytes of output data within a workload of ``footprint_bytes``."""
        if self.in_place:
            return footprint_bytes
        return max(footprint_bytes - self.input_bytes(footprint_bytes), 1)

    def effective_reuse(self, footprint_bytes: int) -> float:
        """Input re-read factor, accounting for the local scratchpad.

        Inputs that fit in the accelerator's local memory are loaded from
        the memory hierarchy only once, regardless of how often the datapath
        re-reads them internally.
        """
        if self.input_bytes(footprint_bytes) <= self.local_mem_bytes:
            return 1.0
        return self.reuse_factor

    def touched_fraction(self) -> float:
        """Fraction of the data actually touched by the access pattern."""
        if self.access_pattern is AccessPattern.IRREGULAR:
            return self.access_fraction
        return 1.0

    def read_bytes(self, footprint_bytes: int) -> int:
        """Total bytes read from the memory hierarchy during one invocation."""
        volume = (
            self.input_bytes(footprint_bytes)
            * self.effective_reuse(footprint_bytes)
            * self.touched_fraction()
        )
        return max(int(volume), 1)

    def write_bytes(self, footprint_bytes: int) -> int:
        """Total bytes written to the memory hierarchy during one invocation."""
        volume = self.output_bytes(footprint_bytes) * self.touched_fraction()
        return max(int(volume), 1)

    def compute_cycles(self, footprint_bytes: int) -> float:
        """Total datapath compute cycles for one invocation."""
        return self.compute_cycles_per_byte * footprint_bytes

    def dma_bursts(self, footprint_bytes: int) -> int:
        """Approximate number of DMA bursts issued during one invocation."""
        total = self.read_bytes(footprint_bytes) + self.write_bytes(footprint_bytes)
        return max(1, math.ceil(total / self.burst_bytes))

    # ------------------------------------------------------------------
    def is_compute_bound(self) -> bool:
        """Rough classification used in documentation and tests."""
        return self.compute_cycles_per_byte >= 8.0

    def with_overrides(self, **overrides: object) -> "AcceleratorDescriptor":
        """Return a copy with some fields replaced (runtime configurability)."""
        return replace(self, **overrides)

    def __str__(self) -> str:
        return self.name
