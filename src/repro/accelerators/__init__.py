"""Behavioural models of fixed-function loosely-coupled accelerators.

An accelerator is characterised, from the SoC's point of view, by its
pattern of communication with the memory hierarchy (paper Section 5).  The
descriptors in this package capture exactly the properties the paper's
traffic generator exposes: access pattern, DMA burst length, compute
duration, data-reuse factor, read-to-write ratio, stride length, access
fraction, and in-place storage.
"""

from repro.accelerators.descriptor import AccessPattern, AcceleratorDescriptor
from repro.accelerators.invocation import InvocationRequest, InvocationResult
from repro.accelerators.library import (
    ACCELERATOR_LIBRARY,
    accelerator_by_name,
    accelerator_names,
)
from repro.accelerators.traffic import TrafficGeneratorConfig, TrafficGeneratorFactory

__all__ = [
    "AccessPattern",
    "AcceleratorDescriptor",
    "InvocationRequest",
    "InvocationResult",
    "ACCELERATOR_LIBRARY",
    "accelerator_by_name",
    "accelerator_names",
    "TrafficGeneratorConfig",
    "TrafficGeneratorFactory",
]
