"""Invocation request and result records.

An :class:`InvocationRequest` describes one call to an accelerator (which
accelerator, which tile it is bound to, which buffer it operates on, how
big the workload is).  An :class:`InvocationResult` is what the runtime's
*evaluate* step produces once the accelerator completes: the measured
execution time, the hardware-monitor readings, the coherence mode used, and
the DDR accesses attributed to the invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.accelerators.descriptor import AcceleratorDescriptor
from repro.soc.address import Buffer
from repro.soc.coherence import CoherenceMode


@dataclass
class InvocationRequest:
    """One accelerator invocation to be executed by the runtime."""

    accelerator: AcceleratorDescriptor
    tile_name: str
    buffer: Buffer
    footprint_bytes: int
    #: Index of the CPU/thread issuing the invocation (used to model which
    #: private cache holds the warm data).
    cpu_index: int = 0
    #: Optional identifier of the application thread issuing the call.
    thread_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.footprint_bytes <= 0:
            raise ValueError("invocation footprint must be positive")
        if self.footprint_bytes > self.buffer.size:
            raise ValueError(
                f"invocation footprint {self.footprint_bytes} exceeds buffer "
                f"size {self.buffer.size}"
            )


@dataclass
class InvocationResult:
    """Measured outcome of one accelerator invocation."""

    accelerator_name: str
    tile_name: str
    mode: CoherenceMode
    footprint_bytes: int
    #: Total wall-clock cycles of the invocation, including driver overhead
    #: and any software cache flushes.
    total_cycles: float
    #: Cycles the accelerator spent actively executing (excludes driver).
    accelerator_cycles: float
    #: Cycles the accelerator spent communicating with memory.
    comm_cycles: float
    #: Off-chip accesses attributed to this invocation (cache-line units).
    ddr_accesses: float
    #: Overhead cycles added by the coherence-selection runtime itself.
    policy_overhead_cycles: float = 0.0
    #: Simulation time at which the invocation started / finished.
    start_time: float = 0.0
    finish_time: float = 0.0
    #: Raw datapath counters, useful for debugging and ablations.
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def comm_ratio(self) -> float:
        """Fraction of accelerator cycles spent communicating with memory."""
        if self.accelerator_cycles <= 0:
            return 0.0
        return min(self.comm_cycles / self.accelerator_cycles, 1.0)

    @property
    def scaled_exec(self) -> float:
        """Execution time divided by footprint (the paper's ``exec(k, i)``)."""
        return self.total_cycles / self.footprint_bytes

    @property
    def scaled_mem(self) -> float:
        """Off-chip accesses divided by footprint (the paper's ``mem(k, i)``)."""
        return self.ddr_accesses / self.footprint_bytes

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary form, convenient for reports and CSV dumps."""
        return {
            "accelerator": self.accelerator_name,
            "tile": self.tile_name,
            "mode": self.mode.label,
            "footprint_bytes": self.footprint_bytes,
            "total_cycles": self.total_cycles,
            "accelerator_cycles": self.accelerator_cycles,
            "comm_cycles": self.comm_cycles,
            "comm_ratio": self.comm_ratio,
            "ddr_accesses": self.ddr_accesses,
            "policy_overhead_cycles": self.policy_overhead_cycles,
        }

    # ------------------------------------------------------------------
    # JSON round-trip (used by the sweep runner and result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Full-fidelity JSON form; inverse of :meth:`from_dict`."""
        return {
            "accelerator_name": self.accelerator_name,
            "tile_name": self.tile_name,
            "mode": self.mode.label,
            "footprint_bytes": self.footprint_bytes,
            "total_cycles": self.total_cycles,
            "accelerator_cycles": self.accelerator_cycles,
            "comm_cycles": self.comm_cycles,
            "ddr_accesses": self.ddr_accesses,
            "policy_overhead_cycles": self.policy_overhead_cycles,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InvocationResult":
        """Rebuild an invocation result from :meth:`to_dict` output."""
        from repro.soc.coherence import mode_from_label

        return cls(
            accelerator_name=str(data["accelerator_name"]),
            tile_name=str(data["tile_name"]),
            mode=mode_from_label(str(data["mode"])),
            footprint_bytes=int(data["footprint_bytes"]),
            total_cycles=float(data["total_cycles"]),
            accelerator_cycles=float(data["accelerator_cycles"]),
            comm_cycles=float(data["comm_cycles"]),
            ddr_accesses=float(data["ddr_accesses"]),
            policy_overhead_cycles=float(data.get("policy_overhead_cycles", 0.0)),
            start_time=float(data.get("start_time", 0.0)),
            finish_time=float(data.get("finish_time", 0.0)),
            details={str(k): float(v) for k, v in dict(data.get("details", {})).items()},
        )
