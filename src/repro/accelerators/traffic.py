"""Configurable traffic generator (paper Section 5).

The paper evaluates Cohmeleon on SoCs populated with a *traffic generator*:
an accelerator whose communication behaviour is configurable with respect
to the basic properties that characterise fixed-function accelerators.
This module provides the same abstraction in software: a
:class:`TrafficGeneratorConfig` holds the eight parameters listed in the
paper, and :class:`TrafficGeneratorFactory` produces randomized descriptor
instances covering the whole space (or restricted to a single access
pattern, which is how the paper builds the "SoC0 — Streaming" and "SoC0 —
Irregular" configurations of Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.accelerators.descriptor import AccessPattern, AcceleratorDescriptor
from repro.errors import ConfigurationError
from repro.units import KB
from repro.utils.rng import SeededRNG


@dataclass(frozen=True)
class TrafficGeneratorConfig:
    """The eight traffic-generator parameters of the paper."""

    access_pattern: AccessPattern = AccessPattern.STREAMING
    burst_bytes: int = 1024
    compute_cycles_per_byte: float = 4.0
    reuse_factor: float = 1.0
    read_write_ratio: float = 1.0
    stride_bytes: int = 256
    access_fraction: float = 1.0
    in_place: bool = False
    local_mem_bytes: int = 64 * KB

    def to_descriptor(self, name: str = "TrafficGen") -> AcceleratorDescriptor:
        """Materialise this configuration as an accelerator descriptor."""
        stride = self.stride_bytes if self.access_pattern is AccessPattern.STRIDED else 0
        fraction = (
            self.access_fraction if self.access_pattern is AccessPattern.IRREGULAR else 1.0
        )
        return AcceleratorDescriptor(
            name=name,
            access_pattern=self.access_pattern,
            burst_bytes=self.burst_bytes,
            compute_cycles_per_byte=self.compute_cycles_per_byte,
            reuse_factor=self.reuse_factor,
            read_write_ratio=self.read_write_ratio,
            in_place=self.in_place,
            local_mem_bytes=self.local_mem_bytes,
            stride_bytes=stride,
            access_fraction=fraction,
        )


class TrafficGeneratorFactory:
    """Produces traffic-generator instances that span the parameter space."""

    #: Ranges used when sampling random configurations; they cover the same
    #: qualitative space as the paper's generator (long streaming bursts to
    #: single-word irregular accesses, compute-bound to communication-bound).
    BURST_CHOICES: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096)
    COMPUTE_RANGE = (0.1, 2.0)
    REUSE_CHOICES: Sequence[float] = (1.0, 2.0, 3.0, 4.0)
    READ_WRITE_CHOICES: Sequence[float] = (0.5, 1.0, 2.0, 4.0)
    STRIDE_CHOICES: Sequence[int] = (128, 256, 512, 1024)
    ACCESS_FRACTION_RANGE = (0.2, 0.8)
    LOCAL_MEM_CHOICES: Sequence[int] = (32 * KB, 64 * KB, 128 * KB)

    def __init__(self, rng: Optional[SeededRNG] = None) -> None:
        self.rng = rng if rng is not None else SeededRNG(0)

    # ------------------------------------------------------------------
    def random_config(
        self, pattern: Optional[AccessPattern] = None
    ) -> TrafficGeneratorConfig:
        """Sample one traffic-generator configuration."""
        rng = self.rng
        if pattern is None:
            pattern = rng.choice(list(AccessPattern))
        if pattern is AccessPattern.IRREGULAR:
            burst = rng.choice([64, 128])
        else:
            burst = rng.choice([b for b in self.BURST_CHOICES if b >= 256])
        return TrafficGeneratorConfig(
            access_pattern=pattern,
            burst_bytes=burst,
            compute_cycles_per_byte=rng.uniform(*self.COMPUTE_RANGE),
            reuse_factor=rng.choice(list(self.REUSE_CHOICES)),
            read_write_ratio=rng.choice(list(self.READ_WRITE_CHOICES)),
            stride_bytes=rng.choice(list(self.STRIDE_CHOICES)),
            access_fraction=rng.uniform(*self.ACCESS_FRACTION_RANGE),
            in_place=rng.maybe(0.3),
            local_mem_bytes=rng.choice(list(self.LOCAL_MEM_CHOICES)),
        )

    def random_descriptor(
        self, index: int, pattern: Optional[AccessPattern] = None
    ) -> AcceleratorDescriptor:
        """Sample one traffic-generator accelerator descriptor."""
        return self.random_config(pattern).to_descriptor(name=f"TrafficGen{index}")

    def build_set(
        self, count: int, pattern: Optional[AccessPattern] = None
    ) -> List[AcceleratorDescriptor]:
        """Build ``count`` traffic generators, optionally all with one pattern."""
        if count <= 0:
            raise ConfigurationError("traffic-generator count must be positive")
        return [self.random_descriptor(index, pattern) for index in range(count)]

    def build_mixed_set(self, count: int) -> List[AcceleratorDescriptor]:
        """Build a set guaranteed to include all three access patterns."""
        if count <= 0:
            raise ConfigurationError("traffic-generator count must be positive")
        patterns = list(AccessPattern)
        descriptors: List[AcceleratorDescriptor] = []
        for index in range(count):
            pattern = patterns[index % len(patterns)]
            descriptors.append(self.random_descriptor(index, pattern))
        return descriptors
