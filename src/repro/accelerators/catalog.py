"""Literature and benchmark-suite catalogues (paper Tables 1 and 2).

These tables are descriptive rather than executable: Table 1 classifies
prior work by the coherence modes it supports, and Table 2 records which
benchmark suites contain workloads similar to the accelerators used in the
evaluation.  They are reproduced here as data so that the documentation and
tests can reference them, and so that the library exposes the same
classification the paper contributes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Tuple

from repro.soc.coherence import CoherenceMode

#: Table 1 — coherence modes supported by prior systems.
LITERATURE_COHERENCE_MODES: Mapping[str, FrozenSet[CoherenceMode]] = {
    "Chen et al.": frozenset({CoherenceMode.NON_COH_DMA}),
    "Cota et al.": frozenset({CoherenceMode.NON_COH_DMA, CoherenceMode.LLC_COH_DMA}),
    "Fusion": frozenset({CoherenceMode.COH_DMA, CoherenceMode.FULL_COH}),
    "gem5-aladdin": frozenset(
        {CoherenceMode.NON_COH_DMA, CoherenceMode.COH_DMA, CoherenceMode.FULL_COH}
    ),
    "Spandex": frozenset({CoherenceMode.FULL_COH}),
    "ESP": frozenset(
        {CoherenceMode.NON_COH_DMA, CoherenceMode.LLC_COH_DMA, CoherenceMode.FULL_COH}
    ),
    "NVDLA": frozenset({CoherenceMode.NON_COH_DMA}),
    "Buffets": frozenset({CoherenceMode.NON_COH_DMA}),
    "Kurth et al.": frozenset({CoherenceMode.NON_COH_DMA}),
    "Cavalcante et al.": frozenset({CoherenceMode.COH_DMA}),
    "BiC": frozenset({CoherenceMode.LLC_COH_DMA}),
    "Cohesion": frozenset({CoherenceMode.FULL_COH}),
    "ARM ACE/ACE-Lite": frozenset(
        {CoherenceMode.NON_COH_DMA, CoherenceMode.COH_DMA, CoherenceMode.FULL_COH}
    ),
    "Xilinx Zynq": frozenset({CoherenceMode.NON_COH_DMA, CoherenceMode.COH_DMA}),
    "Power7+": frozenset({CoherenceMode.COH_DMA}),
    "Wirespeed": frozenset({CoherenceMode.COH_DMA}),
    "Arteris Ncore": frozenset({CoherenceMode.COH_DMA, CoherenceMode.FULL_COH}),
    "CAPI": frozenset({CoherenceMode.FULL_COH}),
    "OpenCAPI": frozenset({CoherenceMode.COH_DMA}),
    "CCIX": frozenset({CoherenceMode.COH_DMA, CoherenceMode.FULL_COH}),
    "Gen-Z": frozenset({CoherenceMode.NON_COH_DMA}),
    "CXL": frozenset({CoherenceMode.COH_DMA, CoherenceMode.FULL_COH}),
}

#: Table 2 — benchmark suites containing workloads similar to each accelerator.
BENCHMARK_SUITE_COVERAGE: Mapping[str, Tuple[str, ...]] = {
    "CortexSuite": ("Autoencoder", "MLP"),
    "ESP": (
        "Autoencoder",
        "Cholesky",
        "Conv-2D",
        "FFT",
        "GEMM",
        "MLP",
        "MRI-Q",
        "NVDLA",
        "Night-vision",
        "Sort",
        "SPMV",
        "Viterbi",
    ),
    "MachSuite": ("Cholesky", "FFT", "GEMM", "Sort", "SPMV"),
    "Parboil": ("FFT", "GEMM", "MRI-Q", "SPMV"),
    "PERFECT": ("Conv-2D", "FFT", "Night-vision", "Sort"),
    "S2CBench": ("Conv-2D", "FFT", "Sort", "Viterbi"),
}


def modes_supported_by(system: str) -> FrozenSet[CoherenceMode]:
    """Return the coherence modes a prior system supports (Table 1)."""
    try:
        return LITERATURE_COHERENCE_MODES[system]
    except KeyError:
        raise KeyError(
            f"unknown system {system!r}; available: {sorted(LITERATURE_COHERENCE_MODES)}"
        ) from None


def suites_covering(accelerator_name: str) -> List[str]:
    """Return the benchmark suites containing a workload like ``accelerator_name``."""
    return sorted(
        suite
        for suite, accelerators in BENCHMARK_SUITE_COVERAGE.items()
        if accelerator_name in accelerators
    )


def mode_support_matrix() -> Dict[str, Dict[str, bool]]:
    """Return Table 1 as a nested boolean matrix keyed by system and mode label."""
    matrix: Dict[str, Dict[str, bool]] = {}
    for system, modes in LITERATURE_COHERENCE_MODES.items():
        matrix[system] = {mode.label: (mode in modes) for mode in CoherenceMode}
    return matrix
