"""Execution of an application specification on a SoC.

The runner turns every thread of every phase into a discrete-event process
that allocates (or reuses) its dataset, warms it through the initialising
CPU's caches — applications initialise their data before invoking an
accelerator, so data is warm, as in the paper — and then issues its chain
of accelerator invocations through the ESP-like runtime.  Phases execute
one after another; threads within a phase run concurrently.

Per phase the runner records the two metrics every figure of the paper
reports: the phase's wall-clock execution time and the number of off-chip
memory accesses during the phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.accelerators.invocation import InvocationResult
from repro.runtime.api import EspRuntime
from repro.soc.address import Buffer
from repro.soc.soc import Soc
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec


@dataclass
class PhaseResult:
    """Measured outcome of one application phase."""

    name: str
    execution_cycles: float
    ddr_accesses: int
    invocations: List[InvocationResult] = field(default_factory=list)

    @property
    def invocation_count(self) -> int:
        """Number of accelerator invocations completed in the phase."""
        return len(self.invocations)

    def total_policy_overhead_cycles(self) -> float:
        """Sum of the coherence-runtime overhead across the phase."""
        return sum(result.policy_overhead_cycles for result in self.invocations)

    def to_dict(self) -> Dict[str, object]:
        """JSON form (used by the sweep runner); inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "execution_cycles": self.execution_cycles,
            "ddr_accesses": self.ddr_accesses,
            "invocations": [result.to_dict() for result in self.invocations],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PhaseResult":
        """Rebuild a phase result from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            execution_cycles=float(data["execution_cycles"]),
            ddr_accesses=int(data["ddr_accesses"]),
            invocations=[
                InvocationResult.from_dict(entry)
                for entry in list(data.get("invocations", []))
            ],
        )


@dataclass
class ApplicationResult:
    """Measured outcome of one full application run."""

    application_name: str
    policy_name: str
    phases: List[PhaseResult] = field(default_factory=list)

    @property
    def total_execution_cycles(self) -> float:
        """Sum of phase execution times."""
        return sum(phase.execution_cycles for phase in self.phases)

    @property
    def total_ddr_accesses(self) -> int:
        """Sum of phase off-chip accesses."""
        return sum(phase.ddr_accesses for phase in self.phases)

    @property
    def invocations(self) -> List[InvocationResult]:
        """All invocation results across all phases, in completion order."""
        return [result for phase in self.phases for result in phase.invocations]

    def phase_by_name(self, name: str) -> PhaseResult:
        """Look up a phase result by phase name."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase named {name!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON form (used by the sweep runner); inverse of :meth:`from_dict`."""
        return {
            "application_name": self.application_name,
            "policy_name": self.policy_name,
            "phases": [phase.to_dict() for phase in self.phases],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ApplicationResult":
        """Rebuild an application result from :meth:`to_dict` output."""
        return cls(
            application_name=str(data["application_name"]),
            policy_name=str(data["policy_name"]),
            phases=[PhaseResult.from_dict(entry) for entry in list(data.get("phases", []))],
        )


def _thread_process(
    soc: Soc,
    runtime: EspRuntime,
    thread: ThreadSpec,
    buffer: Buffer,
    sink: List[InvocationResult],
) -> Generator[object, float, None]:
    """Discrete-event process for one application thread."""
    # The application initialises its dataset before invoking accelerators,
    # so the data starts warm in the initialising CPU's cache hierarchy.
    soc.warm_buffer(buffer, cpu_index=thread.cpu_index % max(len(soc.cpu_l2_caches), 1))
    for _ in range(thread.loop_count):
        for accelerator_name in thread.accelerator_chain:
            result = yield from runtime.invoke_by_name(
                accelerator_name,
                buffer,
                thread.footprint_bytes,
                cpu_index=thread.cpu_index % max(len(soc.cpu_l2_caches), 1),
                thread_id=thread.thread_id,
            )
            sink.append(result)


def run_phase(
    soc: Soc,
    runtime: EspRuntime,
    phase: PhaseSpec,
    buffers: Optional[Dict[str, Buffer]] = None,
    max_events: Optional[int] = None,
) -> PhaseResult:
    """Run one phase to completion and return its measurements.

    ``max_events`` bounds the phase's event budget (``None`` keeps the
    engine's default); exhausting it raises
    :class:`~repro.errors.SimulationError`, which is how bounded what-if
    evaluations (:mod:`repro.serving`) keep a single request from running
    an unbounded simulation.
    """
    engine = soc.engine
    start_time = engine.now
    ddr_before = soc.monitors.total_ddr_accesses()

    sink: List[InvocationResult] = []
    for thread in phase.threads:
        if buffers is not None and thread.thread_id in buffers:
            buffer = buffers[thread.thread_id]
        else:
            buffer = soc.allocate_buffer(thread.footprint_bytes, name=thread.thread_id)
            if buffers is not None:
                buffers[thread.thread_id] = buffer
        engine.spawn(
            name=f"{phase.name}/{thread.thread_id}",
            generator=_thread_process(soc, runtime, thread, buffer, sink),
        )
    if max_events is None:
        engine.run()
    else:
        engine.run(max_events=max_events)

    return PhaseResult(
        name=phase.name,
        execution_cycles=engine.now - start_time,
        ddr_accesses=soc.monitors.total_ddr_accesses() - ddr_before,
        invocations=sink,
    )


def run_application(
    soc: Soc,
    runtime: EspRuntime,
    application: ApplicationSpec,
    reset_soc: bool = True,
    max_events: Optional[int] = None,
) -> ApplicationResult:
    """Run every phase of ``application`` and collect per-phase results.

    With ``reset_soc`` (the default) the SoC's caches, counters, queues and
    data allocations are cleared first, so repeated runs start from the same
    cold state; the coherence policy's learned state (e.g. Cohmeleon's
    Q-table) is *not* touched, which is what online training across
    repeated application runs requires.  ``max_events`` bounds each phase's
    event budget (see :func:`run_phase`).
    """
    if reset_soc:
        soc.reset_state(clear_allocations=True)
        runtime.status.reset()
        runtime.clear_results()

    result = ApplicationResult(
        application_name=application.name,
        policy_name=runtime.policy.name,
    )
    buffers: Dict[str, Buffer] = {}
    for phase in application.phases:
        result.phases.append(
            run_phase(soc, runtime, phase, buffers, max_events=max_events)
        )
    return result
