"""Application / phase / thread specifications.

These are plain declarative descriptions; :mod:`repro.workloads.runner`
turns them into discrete-event processes on a SoC.  The structure mirrors
the paper's evaluation applications: an application is a list of phases
(each representing a "real application"), a phase is a set of concurrent
threads, and each thread owns one dataset and runs a chain of accelerators
serially over it, optionally looping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThreadSpec:
    """One software thread: a dataset and a chain of accelerator invocations."""

    thread_id: str
    accelerator_chain: Tuple[str, ...]
    footprint_bytes: int
    loop_count: int = 1
    cpu_index: int = 0

    def __post_init__(self) -> None:
        if not self.accelerator_chain:
            raise ConfigurationError(f"thread {self.thread_id}: empty accelerator chain")
        if self.footprint_bytes <= 0:
            raise ConfigurationError(f"thread {self.thread_id}: footprint must be positive")
        if self.loop_count <= 0:
            raise ConfigurationError(f"thread {self.thread_id}: loop_count must be positive")
        if self.cpu_index < 0:
            raise ConfigurationError(f"thread {self.thread_id}: cpu_index must be >= 0")

    @property
    def total_invocations(self) -> int:
        """Number of accelerator invocations this thread will issue."""
        return len(self.accelerator_chain) * self.loop_count


@dataclass(frozen=True)
class PhaseSpec:
    """One phase: a set of threads running concurrently."""

    name: str
    threads: Tuple[ThreadSpec, ...]

    def __post_init__(self) -> None:
        if not self.threads:
            raise ConfigurationError(f"phase {self.name}: needs at least one thread")
        ids = [thread.thread_id for thread in self.threads]
        if len(ids) != len(set(ids)):
            raise ConfigurationError(f"phase {self.name}: duplicate thread ids")

    @property
    def total_invocations(self) -> int:
        """Number of accelerator invocations across all threads of the phase."""
        return sum(thread.total_invocations for thread in self.threads)

    def accelerators_used(self) -> List[str]:
        """Distinct accelerator names invoked in this phase."""
        names = {name for thread in self.threads for name in thread.accelerator_chain}
        return sorted(names)


@dataclass(frozen=True)
class ApplicationSpec:
    """A multithreaded evaluation application: an ordered list of phases."""

    name: str
    phases: Tuple[PhaseSpec, ...]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError(f"application {self.name}: needs at least one phase")

    @property
    def total_invocations(self) -> int:
        """Number of accelerator invocations across the whole application."""
        return sum(phase.total_invocations for phase in self.phases)

    def accelerators_used(self) -> List[str]:
        """Distinct accelerator names invoked anywhere in the application."""
        names = {name for phase in self.phases for name in phase.accelerators_used()}
        return sorted(names)

    def phase_names(self) -> List[str]:
        """Names of the phases in order."""
        return [phase.name for phase in self.phases]


def make_phase(
    name: str,
    chains: Sequence[Sequence[str]],
    footprints: Sequence[int],
    loop_counts: Sequence[int],
    num_cpus: int,
) -> PhaseSpec:
    """Convenience constructor pairing chains, footprints, and loop counts."""
    if not (len(chains) == len(footprints) == len(loop_counts)):
        raise ConfigurationError("chains, footprints, and loop_counts must align")
    threads = tuple(
        ThreadSpec(
            thread_id=f"{name}-t{index}",
            accelerator_chain=tuple(chain),
            footprint_bytes=footprint,
            loop_count=loops,
            cpu_index=index % max(num_cpus, 1),
        )
        for index, (chain, footprint, loops) in enumerate(
            zip(chains, footprints, loop_counts)
        )
    )
    return PhaseSpec(name=name, threads=threads)
