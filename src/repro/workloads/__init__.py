"""Multithreaded evaluation applications (paper Section 5).

An application consists of *phases*; a phase consists of *threads*; each
thread owns a dataset and runs a *chain* of accelerators serially over that
dataset (the output of one accelerator is the input of the next), possibly
looping over the chain several times.  The harness in
:mod:`repro.workloads.runner` executes an application on a SoC through the
ESP-like runtime and records per-phase execution time and off-chip memory
accesses — the two quantities every evaluation figure reports.
"""

from repro.workloads.runner import ApplicationResult, PhaseResult, run_application
from repro.workloads.sizes import WorkloadSizeClass, footprint_for_class, size_class_of
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec

__all__ = [
    "ApplicationSpec",
    "PhaseSpec",
    "ThreadSpec",
    "WorkloadSizeClass",
    "footprint_for_class",
    "size_class_of",
    "run_application",
    "ApplicationResult",
    "PhaseResult",
]
