"""Case-study SoCs and their domain-specific applications (paper Section 5).

* **SoC4** integrates one instance of each of the accelerators of Table 2
  and runs a mixed multi-application workload.
* **SoC5** targets collaborative autonomous vehicles: two FFT and two
  Viterbi accelerators for V2V encoding/decoding plus two Conv-2D and two
  GEMM accelerators for CNN inference.
* **SoC6** targets computer vision: three instances of an image
  classification pipeline composed of night-vision, autoencoder and MLP.

Each case study provides the accelerator set to bind to the SoC preset and
an application whose threads invoke accelerator pipelines appropriate for
the domain (e.g. night-vision → autoencoder → MLP to undarken, denoise and
classify images).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.accelerators.descriptor import AcceleratorDescriptor
from repro.accelerators.library import accelerator_by_name
from repro.errors import ConfigurationError
from repro.soc.config import SoCConfig, soc_preset
from repro.utils.rng import SeededRNG
from repro.workloads.sizes import WorkloadSizeClass, footprint_for_class
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec


def soc4_accelerators() -> List[AcceleratorDescriptor]:
    """One instance of each of the 11 ESP accelerators (mixed case study)."""
    names = [
        "Autoencoder",
        "Cholesky",
        "Conv-2D",
        "FFT",
        "GEMM",
        "MLP",
        "MRI-Q",
        "Night-vision",
        "Sort",
        "SPMV",
        "Viterbi",
    ]
    return [accelerator_by_name(name) for name in names]


def soc5_accelerators() -> List[AcceleratorDescriptor]:
    """2x FFT, 2x Viterbi, 2x Conv-2D, 2x GEMM (autonomous-vehicles case study)."""
    names = ["FFT", "FFT", "Viterbi", "Viterbi", "Conv-2D", "Conv-2D", "GEMM", "GEMM"]
    return [accelerator_by_name(name) for name in names]


def soc6_accelerators() -> List[AcceleratorDescriptor]:
    """3x (night-vision, autoencoder, MLP) — the image-classification pipelines."""
    names = ["Night-vision", "Autoencoder", "MLP"] * 3
    return [accelerator_by_name(name) for name in names]


def case_study_accelerators(soc_name: str) -> List[AcceleratorDescriptor]:
    """Accelerator set for a case-study SoC preset name."""
    mapping = {
        "SoC4": soc4_accelerators,
        "SoC5": soc5_accelerators,
        "SoC6": soc6_accelerators,
    }
    try:
        return mapping[soc_name]()
    except KeyError:
        raise ConfigurationError(
            f"{soc_name!r} is not a case-study SoC (expected SoC4, SoC5, or SoC6)"
        ) from None


# ----------------------------------------------------------------------
# Applications
# ----------------------------------------------------------------------

def _sized_footprints(
    config: SoCConfig, classes: List[WorkloadSizeClass], seed: int
) -> List[int]:
    rng = SeededRNG(seed).spawn("case-study-footprints", config.name)
    return [footprint_for_class(size_class, config, rng=rng) for size_class in classes]


def soc4_application(instance: int = 0) -> ApplicationSpec:
    """Mixed multi-application workload for SoC4."""
    config = soc_preset("SoC4")
    sizes = [
        WorkloadSizeClass.SMALL,
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.LARGE,
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.EXTRA_LARGE,
        WorkloadSizeClass.SMALL,
    ]
    footprints = _sized_footprints(config, sizes, seed=instance)
    chains = [
        ("Conv-2D", "GEMM", "MLP"),
        ("FFT", "Viterbi"),
        ("Sort", "SPMV"),
        ("Night-vision", "Autoencoder", "MLP"),
        ("Cholesky", "GEMM"),
        ("MRI-Q",),
    ]
    phase_a = PhaseSpec(
        name="mixed-light",
        threads=tuple(
            ThreadSpec(
                thread_id=f"a{i}",
                accelerator_chain=chains[i],
                footprint_bytes=footprints[i],
                loop_count=2,
                cpu_index=i % config.num_cpus,
            )
            for i in range(3)
        ),
    )
    phase_b = PhaseSpec(
        name="mixed-heavy",
        threads=tuple(
            ThreadSpec(
                thread_id=f"b{i}",
                accelerator_chain=chains[i],
                footprint_bytes=footprints[i],
                loop_count=2,
                cpu_index=i % config.num_cpus,
            )
            for i in range(len(chains))
        ),
    )
    return ApplicationSpec(
        name=f"soc4-mixed-{instance}", phases=(phase_a, phase_b), metadata={"soc": "SoC4"}
    )


def soc5_application(instance: int = 0) -> ApplicationSpec:
    """Collaborative-autonomous-vehicles workload for SoC5.

    V2V communication threads run FFT → Viterbi pipelines (decode) while
    perception threads run Conv-2D → GEMM pipelines (CNN inference); the
    workload is parallelised over the duplicated accelerators.
    """
    config = soc_preset("SoC5")
    sizes = [
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.LARGE,
        WorkloadSizeClass.LARGE,
        WorkloadSizeClass.SMALL,
        WorkloadSizeClass.EXTRA_LARGE,
    ]
    footprints = _sized_footprints(config, sizes, seed=instance)
    v2v_phase = PhaseSpec(
        name="v2v-communication",
        threads=tuple(
            ThreadSpec(
                thread_id=f"v2v{i}",
                accelerator_chain=("FFT", "Viterbi"),
                footprint_bytes=footprints[i],
                loop_count=3,
                cpu_index=0,
            )
            for i in range(2)
        ),
    )
    perception_phase = PhaseSpec(
        name="cnn-inference",
        threads=tuple(
            ThreadSpec(
                thread_id=f"cnn{i}",
                accelerator_chain=("Conv-2D", "GEMM"),
                footprint_bytes=footprints[2 + i],
                loop_count=3,
                cpu_index=0,
            )
            for i in range(2)
        ),
    )
    fused_phase = PhaseSpec(
        name="map-fusion",
        threads=(
            ThreadSpec(
                thread_id="fusion0",
                accelerator_chain=("FFT", "Viterbi", "Conv-2D", "GEMM"),
                footprint_bytes=footprints[4],
                loop_count=2,
                cpu_index=0,
            ),
            ThreadSpec(
                thread_id="fusion1",
                accelerator_chain=("Conv-2D", "GEMM"),
                footprint_bytes=footprints[5],
                loop_count=2,
                cpu_index=0,
            ),
        ),
    )
    return ApplicationSpec(
        name=f"soc5-autonomous-{instance}",
        phases=(v2v_phase, perception_phase, fused_phase),
        metadata={"soc": "SoC5"},
    )


def soc6_application(instance: int = 0) -> ApplicationSpec:
    """Computer-vision workload for SoC6: three parallel classification pipelines."""
    config = soc_preset("SoC6")
    sizes = [
        WorkloadSizeClass.SMALL,
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.LARGE,
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.SMALL,
    ]
    footprints = _sized_footprints(config, sizes, seed=instance)
    pipeline = ("Night-vision", "Autoencoder", "MLP")
    batch_phase = PhaseSpec(
        name="image-batch",
        threads=tuple(
            ThreadSpec(
                thread_id=f"img{i}",
                accelerator_chain=pipeline,
                footprint_bytes=footprints[i],
                loop_count=3,
                cpu_index=0,
            )
            for i in range(3)
        ),
    )
    stream_phase = PhaseSpec(
        name="video-stream",
        threads=tuple(
            ThreadSpec(
                thread_id=f"vid{i}",
                accelerator_chain=pipeline,
                footprint_bytes=footprints[3 + i],
                loop_count=2,
                cpu_index=0,
            )
            for i in range(3)
        ),
    )
    return ApplicationSpec(
        name=f"soc6-vision-{instance}",
        phases=(batch_phase, stream_phase),
        metadata={"soc": "SoC6"},
    )


def case_study_application(soc_name: str, instance: int = 0) -> ApplicationSpec:
    """Application for a case-study SoC preset name."""
    mapping = {
        "SoC4": soc4_application,
        "SoC5": soc5_application,
        "SoC6": soc6_application,
    }
    try:
        return mapping[soc_name](instance)
    except KeyError:
        raise ConfigurationError(
            f"{soc_name!r} is not a case-study SoC (expected SoC4, SoC5, or SoC6)"
        ) from None


def case_study_setup(soc_name: str, instance: int = 0) -> Tuple[SoCConfig, List[AcceleratorDescriptor], ApplicationSpec]:
    """Return (config, accelerators, application) for one case-study SoC."""
    return (
        soc_preset(soc_name),
        case_study_accelerators(soc_name),
        case_study_application(soc_name, instance),
    )
