"""Random evaluation-application generator.

The paper's evaluation applications are "randomly configured instances"
whose phases vary in the number of threads running in parallel, the
workload sizes in use, and the configuration of each accelerator.  This
module generates such instances deterministically from a seed, so that a
"training instance" and a "testing instance" can be produced from different
seeds exactly as the paper's methodology requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.soc.config import SoCConfig
from repro.utils.rng import SeededRNG
from repro.workloads.sizes import WorkloadSizeClass, footprint_for_class
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random application generator."""

    num_phases: int = 4
    min_threads: int = 2
    max_threads: int = 8
    min_chain_length: int = 1
    max_chain_length: int = 3
    min_loops: int = 1
    max_loops: int = 3
    size_classes: Tuple[WorkloadSizeClass, ...] = (
        WorkloadSizeClass.SMALL,
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.LARGE,
        WorkloadSizeClass.EXTRA_LARGE,
    )
    #: Relative probability of each size class (aligned with ``size_classes``).
    size_weights: Tuple[float, ...] = (0.3, 0.35, 0.2, 0.15)

    def __post_init__(self) -> None:
        if self.num_phases <= 0:
            raise ConfigurationError("num_phases must be positive")
        if not 0 < self.min_threads <= self.max_threads:
            raise ConfigurationError("invalid thread-count range")
        if not 0 < self.min_chain_length <= self.max_chain_length:
            raise ConfigurationError("invalid chain-length range")
        if not 0 < self.min_loops <= self.max_loops:
            raise ConfigurationError("invalid loop-count range")
        if len(self.size_classes) != len(self.size_weights):
            raise ConfigurationError("size_classes and size_weights must align")


class ApplicationGenerator:
    """Generates randomly-configured evaluation applications."""

    def __init__(
        self,
        soc_config: SoCConfig,
        accelerator_names: Sequence[str],
        generator_config: Optional[GeneratorConfig] = None,
        seed: int = 0,
    ) -> None:
        if not accelerator_names:
            raise ConfigurationError("the generator needs at least one accelerator")
        self.soc_config = soc_config
        self.accelerator_names = list(accelerator_names)
        self.config = generator_config if generator_config is not None else GeneratorConfig()
        self.seed = seed

    # ------------------------------------------------------------------
    def generate(self, instance: int = 0, name: Optional[str] = None) -> ApplicationSpec:
        """Generate one application instance (different ``instance`` => different app)."""
        rng = SeededRNG(self.seed).spawn("application", instance)
        cfg = self.config
        phases: List[PhaseSpec] = []
        for phase_index in range(cfg.num_phases):
            phases.append(self._generate_phase(rng, phase_index))
        return ApplicationSpec(
            name=name or f"eval-app-{self.soc_config.name}-{instance}",
            phases=tuple(phases),
            metadata={"seed": self.seed, "instance": instance},
        )

    def _generate_phase(self, rng: SeededRNG, phase_index: int) -> PhaseSpec:
        cfg = self.config
        num_threads = rng.randint(cfg.min_threads, cfg.max_threads)
        threads: List[ThreadSpec] = []
        for thread_index in range(num_threads):
            size_class = rng.weighted_choice(list(cfg.size_classes), list(cfg.size_weights))
            footprint = footprint_for_class(size_class, self.soc_config, rng=rng)
            chain_length = rng.randint(cfg.min_chain_length, cfg.max_chain_length)
            chain = tuple(rng.choice(self.accelerator_names) for _ in range(chain_length))
            threads.append(
                ThreadSpec(
                    thread_id=f"p{phase_index}-t{thread_index}",
                    accelerator_chain=chain,
                    footprint_bytes=footprint,
                    loop_count=rng.randint(cfg.min_loops, cfg.max_loops),
                    cpu_index=thread_index % max(self.soc_config.num_cpus, 1),
                )
            )
        return PhaseSpec(name=f"phase-{phase_index}", threads=tuple(threads))

    # ------------------------------------------------------------------
    def generate_pair(self) -> Tuple[ApplicationSpec, ApplicationSpec]:
        """Generate a (training, testing) pair of distinct instances."""
        return self.generate(instance=0, name=None), self.generate(instance=1, name=None)
