"""Workload-size classes.

The paper characterises workload sizes relative to the cache hierarchy of
the target SoC: *Small* fits in the accelerator's private (L2) cache,
*Medium* fits in one LLC partition, *Large* fits in the aggregate LLC, and
*Extra-Large* exceeds the LLC.  The motivation experiments of Section 3 use
three absolute sizes instead: roughly 16 KB, 256 KB, and 4 MB.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.errors import ConfigurationError
from repro.soc.config import SoCConfig
from repro.units import KB, MB
from repro.utils.rng import SeededRNG

#: Absolute sizes used by the Section 3 motivation experiments (Figure 2/3).
MOTIVATION_SMALL_BYTES = 16 * KB
MOTIVATION_MEDIUM_BYTES = 256 * KB
MOTIVATION_LARGE_BYTES = 4 * MB


class WorkloadSizeClass(Enum):
    """Workload-size categories relative to the SoC's cache hierarchy."""

    SMALL = "S"
    MEDIUM = "M"
    LARGE = "L"
    EXTRA_LARGE = "XL"

    def __str__(self) -> str:
        return self.value


def footprint_for_class(
    size_class: WorkloadSizeClass,
    config: SoCConfig,
    rng: Optional[SeededRNG] = None,
    fraction: float = 0.75,
) -> int:
    """Return a concrete footprint in bytes for a size class on ``config``.

    ``fraction`` positions the footprint inside the class's range (0.75
    means "three quarters of the way to the class's upper bound"); when an
    ``rng`` is given the fraction is sampled uniformly in ``[0.4, 0.9]`` so
    that generated applications vary their footprints.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError("fraction must be in (0, 1]")
    if rng is not None:
        fraction = rng.uniform(0.4, 0.9)

    l2 = config.accelerator_l2_bytes
    llc_slice = config.llc_partition_bytes
    llc_total = config.total_llc_bytes

    if size_class is WorkloadSizeClass.SMALL:
        footprint = int(l2 * fraction)
    elif size_class is WorkloadSizeClass.MEDIUM:
        footprint = int(l2 + (llc_slice - l2) * fraction)
    elif size_class is WorkloadSizeClass.LARGE:
        footprint = int(llc_slice + (llc_total - llc_slice) * fraction)
    else:  # EXTRA_LARGE
        footprint = int(llc_total * (1.0 + fraction))
    return max(footprint, 4 * KB)


def size_class_of(footprint_bytes: int, config: SoCConfig) -> WorkloadSizeClass:
    """Classify a footprint relative to ``config``'s cache hierarchy."""
    if footprint_bytes <= config.accelerator_l2_bytes:
        return WorkloadSizeClass.SMALL
    if footprint_bytes <= config.llc_partition_bytes:
        return WorkloadSizeClass.MEDIUM
    if footprint_bytes <= config.total_llc_bytes:
        return WorkloadSizeClass.LARGE
    return WorkloadSizeClass.EXTRA_LARGE
