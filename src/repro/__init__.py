"""Reproduction of *Cohmeleon: Learning-Based Orchestration of Accelerator
Coherence in Heterogeneous SoCs* (MICRO 2021).

The library is organised as follows:

* :mod:`repro.sim` — a small discrete-event simulation kernel;
* :mod:`repro.soc` — the SoC substrate (NoC, caches, LLC partitions, DRAM
  controllers, coherence-mode datapaths, hardware monitors);
* :mod:`repro.accelerators` — behavioural accelerator models and the
  configurable traffic generator;
* :mod:`repro.runtime` — the ESP-like accelerator invocation API with the
  sense/decide/actuate/evaluate loop;
* :mod:`repro.core` — Cohmeleon itself (state space, reward, Q-learning
  agent) and the baseline coherence policies;
* :mod:`repro.workloads` — multithreaded evaluation applications;
* :mod:`repro.experiments` — harnesses that regenerate every figure and
  table of the paper's evaluation, plus the parallel sweep runner and its
  on-disk result cache;
* :mod:`repro.scenarios` — the declarative scenario registry: named,
  parameterizable workloads (case studies, example ports, the Figure 9
  grid, and new frontier workloads) runnable through the sweep runner via
  ``python -m repro.scenarios``;
* :mod:`repro.models` — trained-policy persistence: digest-gated
  artifacts wrapping a trained Q-table with full provenance, a model
  registry, and the ``--pretrained`` warm-start path
  (``python -m repro.models``);
* :mod:`repro.serving` — the JSON/HTTP policy server: batched decision
  requests, bounded what-if evaluations, atomic hot reload on registry
  digest changes, and the SLO-gated deterministic load generator
  (``python -m repro.serving``);
* :mod:`repro.net` — the shared asyncio keep-alive HTTP/1.1 transport and
  typed error-envelope machinery every in-repo server is built on;
* :mod:`repro.store` — the unified read side for every digest-bearing
  on-disk document (sweep manifests, cache entries, BENCH reports, model
  artifacts, transfer matrices), one typed reader per format;
* :mod:`repro.tracking` — the read-only experiment-tracking API over
  :mod:`repro.net` and :mod:`repro.store`: sweep runs with live progress,
  the model registry with provenance, and the BENCH trajectory with
  regression flagging (``python -m repro.tracking``).

The docs site under ``docs/`` (``mkdocs build``) covers every layer; see
``docs/architecture.md`` for the layer map.

Quickstart
----------
>>> from repro import build_system
>>> from repro.core import CohmeleonPolicy
>>> soc, runtime = build_system("SoC1", policy=CohmeleonPolicy())
>>> sorted(runtime.bound_accelerator_names())[:3]
['Autoencoder', 'Cholesky', 'Conv-2D']
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.accelerators.descriptor import AcceleratorDescriptor
from repro.accelerators.library import ACCELERATOR_LIBRARY, accelerator_by_name
from repro.core.policies import CoherencePolicy, CohmeleonPolicy, FixedPolicy
from repro.runtime.api import EspRuntime
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.soc.config import SoCConfig, soc_preset
from repro.soc.soc import Soc

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CoherenceMode",
    "COHERENCE_MODES",
    "SoCConfig",
    "soc_preset",
    "Soc",
    "EspRuntime",
    "AcceleratorDescriptor",
    "ACCELERATOR_LIBRARY",
    "accelerator_by_name",
    "CoherencePolicy",
    "CohmeleonPolicy",
    "FixedPolicy",
    "build_system",
]


def build_system(
    config: "SoCConfig | str",
    policy: Optional[CoherencePolicy] = None,
    accelerators: Optional[Sequence[AcceleratorDescriptor]] = None,
) -> Tuple[Soc, EspRuntime]:
    """Build a SoC and its invocation runtime in one call.

    Parameters
    ----------
    config:
        A :class:`SoCConfig` or the name of a Table 4 preset (e.g. ``"SoC0"``).
    policy:
        The coherence-selection policy; defaults to Cohmeleon.
    accelerators:
        Descriptors to bind to the accelerator tiles, in order.  Defaults to
        the ESP accelerator library, truncated or cycled to fill the SoC's
        accelerator tiles.
    """
    if isinstance(config, str):
        config = soc_preset(config)
    soc = Soc(config)
    runtime = EspRuntime(soc, policy if policy is not None else CohmeleonPolicy())

    if accelerators is None:
        library: List[AcceleratorDescriptor] = list(ACCELERATOR_LIBRARY)
        accelerators = [
            library[index % len(library)]
            for index in range(config.num_accelerator_tiles)
        ]
    runtime.bind_library(list(accelerators)[: config.num_accelerator_tiles])
    return soc, runtime
