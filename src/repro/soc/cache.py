"""Set-associative cache model with LRU replacement and dirty tracking.

The model operates at cache-line granularity.  It supports the operations
the coherence-mode data paths need:

* ``access_range`` — read or write a byte range, reporting hits, misses,
  and the dirty lines evicted by the fills (which become write-back traffic
  towards the next level);
* ``install_range`` — warm the cache with data without reporting traffic
  (used to model the CPU having initialised accelerator inputs before the
  invocation, so that the data is "warm" as in the paper's Section 3);
* ``flush_all`` / ``flush_range`` — software flush, returning how many
  lines had to be written back and how many were simply invalidated;
* ``invalidate_line`` / ``recall_line`` — directory-initiated removal of a
  single line, used by the coherent-DMA recall mechanism.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass
class CacheStats:
    """Cumulative counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    writebacks: int = 0
    flush_writebacks: int = 0
    flush_invalidations: int = 0
    recalls: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "writebacks": self.writebacks,
            "flush_writebacks": self.flush_writebacks,
            "flush_invalidations": self.flush_invalidations,
            "recalls": self.recalls,
        }

    @property
    def accesses(self) -> int:
        """Total number of line accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed."""
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class RangeAccessResult:
    """Outcome of accessing a byte range through the cache."""

    lines: int = 0
    hits: int = 0
    misses: int = 0
    evicted_dirty: List[int] = field(default_factory=list)
    evicted_clean: int = 0

    def merge(self, other: "RangeAccessResult") -> None:
        """Accumulate ``other`` into this result."""
        self.lines += other.lines
        self.hits += other.hits
        self.misses += other.misses
        self.evicted_dirty.extend(other.evicted_dirty)
        self.evicted_clean += other.evicted_clean

    @property
    def writeback_lines(self) -> int:
        """Number of dirty lines evicted (write-back traffic)."""
        return len(self.evicted_dirty)


class SetAssociativeCache:
    """LRU set-associative cache tracking valid and dirty lines."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int,
        ways: int,
    ) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ConfigurationError("cache geometry parameters must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines == 0:
            raise ConfigurationError(
                f"cache {name!r}: size {size_bytes} smaller than one line"
            )
        ways = min(ways, num_lines)
        if num_lines % ways:
            # Round the number of sets down so the geometry stays consistent.
            num_lines = (num_lines // ways) * ways
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(num_lines // ways, 1)
        self.stats = CacheStats()
        # One ordered dict per set: {line_address: dirty}.  The first entry
        # is the least recently used line.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_sets

    def line_address(self, byte_addr: int) -> int:
        """Return the aligned line address containing ``byte_addr``."""
        return (byte_addr // self.line_bytes) * self.line_bytes

    def lines_in_range(self, start: int, nbytes: int) -> range:
        """Return the line addresses covering ``[start, start + nbytes)``."""
        if nbytes <= 0:
            return range(0)
        first = self.line_address(start)
        last = self.line_address(start + nbytes - 1)
        return range(first, last + self.line_bytes, self.line_bytes)

    # ------------------------------------------------------------------
    # Single-line operations
    # ------------------------------------------------------------------
    def access_line(
        self, line_addr: int, write: bool, allocate: bool = True
    ) -> Tuple[bool, Optional[int], bool]:
        """Access one line.

        Returns ``(hit, evicted_line_or_None, evicted_dirty)``.
        """
        line_addr = self.line_address(line_addr)
        cache_set = self._sets[self._set_index(line_addr)]
        if line_addr in cache_set:
            self.stats.hits += 1
            dirty = cache_set.pop(line_addr)
            cache_set[line_addr] = dirty or write
            return True, None, False

        self.stats.misses += 1
        if not allocate:
            return False, None, False
        evicted_line: Optional[int] = None
        evicted_dirty = False
        if len(cache_set) >= self.ways:
            evicted_line, evicted_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.dirty_evictions += 1
                self.stats.writebacks += 1
        cache_set[line_addr] = write
        return False, evicted_line, evicted_dirty

    def contains(self, byte_addr: int) -> bool:
        """Whether the line containing ``byte_addr`` is present."""
        line_addr = self.line_address(byte_addr)
        return line_addr in self._sets[self._set_index(line_addr)]

    def is_dirty(self, byte_addr: int) -> bool:
        """Whether the line containing ``byte_addr`` is present and dirty."""
        line_addr = self.line_address(byte_addr)
        return bool(self._sets[self._set_index(line_addr)].get(line_addr, False))

    def invalidate_line(self, byte_addr: int) -> bool:
        """Drop the line containing ``byte_addr``; return whether it was dirty."""
        line_addr = self.line_address(byte_addr)
        cache_set = self._sets[self._set_index(line_addr)]
        dirty = cache_set.pop(line_addr, None)
        return bool(dirty)

    def recall_line(self, byte_addr: int) -> bool:
        """Directory recall: invalidate the line and count the recall.

        Returns whether the recalled line was dirty (and therefore had to be
        written back to the LLC).
        """
        self.stats.recalls += 1
        return self.invalidate_line(byte_addr)

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------
    def access_range(
        self, start: int, nbytes: int, write: bool, allocate: bool = True
    ) -> RangeAccessResult:
        """Access every line in ``[start, start + nbytes)``."""
        result = RangeAccessResult()
        for line_addr in self.lines_in_range(start, nbytes):
            hit, evicted, evicted_dirty = self.access_line(line_addr, write, allocate)
            result.lines += 1
            if hit:
                result.hits += 1
            else:
                result.misses += 1
            if evicted is not None:
                if evicted_dirty:
                    result.evicted_dirty.append(evicted)
                else:
                    result.evicted_clean += 1
        return result

    def install_range(self, start: int, nbytes: int, dirty: bool = True) -> int:
        """Warm the cache with ``[start, start + nbytes)`` without statistics.

        Returns the number of lines installed.  Evictions caused by the
        warm-up are silently dropped (the corresponding traffic happened
        before the measured window).
        """
        installed = 0
        for line_addr in self.lines_in_range(start, nbytes):
            cache_set = self._sets[self._set_index(line_addr)]
            if line_addr in cache_set:
                was_dirty = cache_set.pop(line_addr)
                cache_set[line_addr] = was_dirty or dirty
            else:
                if len(cache_set) >= self.ways:
                    cache_set.popitem(last=False)
                cache_set[line_addr] = dirty
            installed += 1
        return installed

    # ------------------------------------------------------------------
    # Flushes
    # ------------------------------------------------------------------
    def flush_all(self) -> Tuple[int, int]:
        """Flush the whole cache; return ``(writebacks, invalidations)``."""
        writebacks = 0
        invalidations = 0
        for cache_set in self._sets:
            for _line, dirty in cache_set.items():
                invalidations += 1
                if dirty:
                    writebacks += 1
            cache_set.clear()
        self.stats.flush_writebacks += writebacks
        self.stats.flush_invalidations += invalidations
        return writebacks, invalidations

    def flush_range(self, start: int, nbytes: int) -> Tuple[int, int]:
        """Flush only the given range; return ``(writebacks, invalidations)``."""
        writebacks = 0
        invalidations = 0
        for line_addr in self.lines_in_range(start, nbytes):
            cache_set = self._sets[self._set_index(line_addr)]
            dirty = cache_set.pop(line_addr, None)
            if dirty is None:
                continue
            invalidations += 1
            if dirty:
                writebacks += 1
        self.stats.flush_writebacks += writebacks
        self.stats.flush_invalidations += invalidations
        return writebacks, invalidations

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def valid_lines(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(cache_set) for cache_set in self._sets)

    def dirty_lines(self) -> int:
        """Number of dirty lines currently resident."""
        return sum(sum(1 for dirty in cache_set.values() if dirty) for cache_set in self._sets)

    def occupancy_bytes(self) -> int:
        """Bytes of valid data currently resident."""
        return self.valid_lines() * self.line_bytes

    def occupancy_fraction(self) -> float:
        """Fraction of the cache capacity currently valid."""
        capacity_lines = self.num_sets * self.ways
        return self.valid_lines() / capacity_lines if capacity_lines else 0.0

    def resident_lines_in_range(self, start: int, nbytes: int) -> int:
        """Number of lines of ``[start, start + nbytes)`` currently resident."""
        count = 0
        for line_addr in self.lines_in_range(start, nbytes):
            if line_addr in self._sets[self._set_index(line_addr)]:
                count += 1
        return count

    def resident_lines_within(self, start: int, nbytes: int) -> List[int]:
        """Return resident line addresses falling inside ``[start, start+nbytes)``.

        This walks the (small) cache contents rather than the (potentially
        huge) address range, which is what the coherent-DMA recall logic
        needs: it only cares about the few lines a private cache actually
        holds.
        """
        if nbytes <= 0:
            return []
        end = start + nbytes
        resident: List[int] = []
        for cache_set in self._sets:
            for line_addr in cache_set:
                if start - self.line_bytes < line_addr < end:
                    if line_addr + self.line_bytes > start:
                        resident.append(line_addr)
        return resident

    def clear(self) -> None:
        """Drop all contents and statistics (used between experiments)."""
        for cache_set in self._sets:
            cache_set.clear()
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(name={self.name!r}, size={self.size_bytes}, "
            f"line={self.line_bytes}, ways={self.ways}, sets={self.num_sets})"
        )


def flush_cost_cycles(
    writebacks: int,
    invalidations: int,
    flush_base_cycles: float,
    flush_cycles_per_line: float,
) -> float:
    """Cycle cost of a software flush given its outcome.

    The cost model charges a fixed issue cost plus a per-line walk cost for
    every line touched; write-backs are additionally charged by the caller
    as DRAM (or LLC) traffic through the normal resources.
    """
    touched = max(invalidations, writebacks)
    return flush_base_cycles + flush_cycles_per_line * touched
