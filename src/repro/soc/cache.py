"""Set-associative cache model with LRU replacement and dirty tracking.

The model operates at cache-line granularity.  It supports the operations
the coherence-mode data paths need:

* ``access_range`` — read or write a byte range, reporting hits, misses,
  and the dirty lines evicted by the fills (which become write-back traffic
  towards the next level);
* ``install_range`` — warm the cache with data without reporting traffic
  (used to model the CPU having initialised accelerator inputs before the
  invocation, so that the data is "warm" as in the paper's Section 3);
* ``flush_all`` / ``flush_range`` — software flush, returning how many
  lines had to be written back and how many were simply invalidated;
* ``invalidate_line`` / ``recall_line`` — directory-initiated removal of a
  single line, used by the coherent-DMA recall mechanism.

This module is on the hot path of every simulated DMA transfer, so the
range operations are written for speed: geometry values are hoisted into
locals, a resident-line counter keeps empty-cache operations O(1), and
``flush_range`` walks whichever is smaller — the address range or the
cache contents — so flushing a huge buffer through a small cache costs
O(resident lines), not O(buffer size).  ``repro.perf`` benchmarks these
paths and ``tests/test_perf_equivalence.py`` checks them against a naive
reference implementation.

The cache additionally ships in the two core backends of
:mod:`repro.utils.backend` (captured at construction).  The ``reference``
backend keeps per-set ``OrderedDict`` recency lists and the canonical
per-line walk (membership test, dirty read, dirty write,
``move_to_end``).  The ``vectorized`` backend stores each set as a plain
``dict`` — insertion order *is* the recency order — so a hit is a single
``pop``-and-reinsert pair (re-adding an entry lands it in MRU position,
which is exactly what ``move_to_end`` does, and ``None`` is a safe miss
sentinel because stored values are always booleans), an eviction pops
``next(iter(set))`` (the LRU entry), and the walks replace the per-line
address multiply/modulo with an incrementing address and a rotating set
index.  Plain-dict mutation is markedly cheaper than ``OrderedDict``'s
linked-list upkeep on the eviction-heavy paths the DMA transfers
exercise.  The differential harness holds the two backends to identical
results, statistics, and eviction orders.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.utils.backend import active_backend

#: Sentinel bounds of an empty cache (no address can satisfy lo <= a <= hi).
_EMPTY_LO = 1 << 62
_EMPTY_HI = -1


@dataclass
class CacheStats:
    """Cumulative counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    writebacks: int = 0
    flush_writebacks: int = 0
    flush_invalidations: int = 0
    recalls: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "writebacks": self.writebacks,
            "flush_writebacks": self.flush_writebacks,
            "flush_invalidations": self.flush_invalidations,
            "recalls": self.recalls,
        }

    @property
    def accesses(self) -> int:
        """Total number of line accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed."""
        return self.misses / self.accesses if self.accesses else 0.0


class RangeAccessResult:
    """Outcome of accessing a byte range through the cache."""

    __slots__ = ("lines", "hits", "misses", "evicted_dirty", "evicted_clean")

    def __init__(
        self,
        lines: int = 0,
        hits: int = 0,
        misses: int = 0,
        evicted_dirty: Optional[List[int]] = None,
        evicted_clean: int = 0,
    ) -> None:
        self.lines = lines
        self.hits = hits
        self.misses = misses
        self.evicted_dirty = evicted_dirty if evicted_dirty is not None else []
        self.evicted_clean = evicted_clean

    def merge(self, other: "RangeAccessResult") -> None:
        """Accumulate ``other`` into this result."""
        self.lines += other.lines
        self.hits += other.hits
        self.misses += other.misses
        self.evicted_dirty.extend(other.evicted_dirty)
        self.evicted_clean += other.evicted_clean

    @property
    def writeback_lines(self) -> int:
        """Number of dirty lines evicted (write-back traffic)."""
        return len(self.evicted_dirty)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RangeAccessResult(lines={self.lines}, hits={self.hits}, "
            f"misses={self.misses}, evicted_dirty={self.evicted_dirty!r}, "
            f"evicted_clean={self.evicted_clean})"
        )


class SetAssociativeCache:
    """LRU set-associative cache tracking valid and dirty lines."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int,
        ways: int,
    ) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ConfigurationError("cache geometry parameters must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines == 0:
            raise ConfigurationError(
                f"cache {name!r}: size {size_bytes} smaller than one line"
            )
        ways = min(ways, num_lines)
        if num_lines % ways:
            # Round the number of sets down so the geometry stays consistent.
            num_lines = (num_lines // ways) * ways
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = max(num_lines // ways, 1)
        self.backend = active_backend()
        self._vectorized = self.backend == "vectorized"
        self.stats = CacheStats()
        # One mapping per set: {line_address: dirty}.  The first entry is
        # the least recently used line.  The vectorized backend relies on
        # plain-dict insertion order for recency; the reference backend
        # keeps the explicit OrderedDict recency list.
        if self._vectorized:
            self._sets: List[Dict[int, bool]] = [{} for _ in range(self.num_sets)]
        else:
            self._sets = [OrderedDict() for _ in range(self.num_sets)]
        # Resident-line count, kept in sync by every mutation so that
        # emptiness checks and contents-vs-range walk decisions are O(1).
        self._num_valid = 0
        # Conservative bounds on resident line addresses ([lo, hi], only
        # widened on insert, reset when the cache empties).  Flush and
        # recall scans over address ranges that cannot intersect the
        # contents return immediately — the common case when many threads
        # work on disjoint buffers.
        self._addr_lo = _EMPTY_LO
        self._addr_hi = _EMPTY_HI

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_sets

    def line_address(self, byte_addr: int) -> int:
        """Return the aligned line address containing ``byte_addr``."""
        return (byte_addr // self.line_bytes) * self.line_bytes

    def lines_in_range(self, start: int, nbytes: int) -> range:
        """Return the line addresses covering ``[start, start + nbytes)``."""
        if nbytes <= 0:
            return range(0)
        line = self.line_bytes
        first = (start // line) * line
        last = ((start + nbytes - 1) // line) * line
        return range(first, last + line, line)

    # ------------------------------------------------------------------
    # Single-line operations
    # ------------------------------------------------------------------
    def access_line(
        self, line_addr: int, write: bool, allocate: bool = True
    ) -> Tuple[bool, Optional[int], bool]:
        """Access one line.

        Returns ``(hit, evicted_line_or_None, evicted_dirty)``.
        """
        line = self.line_bytes
        line_addr = (line_addr // line) * line
        cache_set = self._sets[(line_addr // line) % self.num_sets]
        stats = self.stats
        if self._vectorized:
            prev = cache_set.pop(line_addr, None)
            if prev is not None:
                stats.hits += 1
                cache_set[line_addr] = prev or write
                return True, None, False
        elif line_addr in cache_set:
            stats.hits += 1
            if write and not cache_set[line_addr]:
                cache_set[line_addr] = True
            cache_set.move_to_end(line_addr)
            return True, None, False

        stats.misses += 1
        if not allocate:
            return False, None, False
        evicted_line: Optional[int] = None
        evicted_dirty = False
        if len(cache_set) >= self.ways:
            if self._vectorized:
                evicted_line = next(iter(cache_set))
                evicted_dirty = cache_set.pop(evicted_line)
            else:
                evicted_line, evicted_dirty = cache_set.popitem(last=False)
            stats.evictions += 1
            if evicted_dirty:
                stats.dirty_evictions += 1
                stats.writebacks += 1
        else:
            self._num_valid += 1
        cache_set[line_addr] = write
        if line_addr < self._addr_lo:
            self._addr_lo = line_addr
        if line_addr > self._addr_hi:
            self._addr_hi = line_addr
        return False, evicted_line, evicted_dirty

    def contains(self, byte_addr: int) -> bool:
        """Whether the line containing ``byte_addr`` is present."""
        line_addr = self.line_address(byte_addr)
        return line_addr in self._sets[self._set_index(line_addr)]

    def is_dirty(self, byte_addr: int) -> bool:
        """Whether the line containing ``byte_addr`` is present and dirty."""
        line_addr = self.line_address(byte_addr)
        return bool(self._sets[self._set_index(line_addr)].get(line_addr, False))

    def invalidate_line(self, byte_addr: int) -> bool:
        """Drop the line containing ``byte_addr``; return whether it was dirty."""
        line_addr = self.line_address(byte_addr)
        cache_set = self._sets[self._set_index(line_addr)]
        dirty = cache_set.pop(line_addr, None)
        if dirty is not None:
            self._num_valid -= 1
            if not self._num_valid:
                self._addr_lo = _EMPTY_LO
                self._addr_hi = _EMPTY_HI
        return bool(dirty)

    def recall_line(self, byte_addr: int) -> bool:
        """Directory recall: invalidate the line and count the recall.

        Returns whether the recalled line was dirty (and therefore had to be
        written back to the LLC).
        """
        self.stats.recalls += 1
        return self.invalidate_line(byte_addr)

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------
    def access_range(
        self, start: int, nbytes: int, write: bool, allocate: bool = True
    ) -> RangeAccessResult:
        """Access every line in ``[start, start + nbytes)``."""
        if self._vectorized:
            return self._access_range_fast(start, nbytes, write, allocate)
        result = RangeAccessResult()
        if nbytes <= 0:
            return result
        # Hot path: the per-line bookkeeping of access_line, inlined with
        # the geometry and counters hoisted into locals.
        line = self.line_bytes
        num_sets = self.num_sets
        ways = self.ways
        sets = self._sets
        stats = self.stats
        evicted_dirty_lines = result.evicted_dirty
        append_dirty = evicted_dirty_lines.append
        hits = misses = evicted_clean = evictions = installed = 0
        first_index = start // line
        last_index = (start + nbytes - 1) // line
        if allocate:
            if first_index * line < self._addr_lo:
                self._addr_lo = first_index * line
            if last_index * line > self._addr_hi:
                self._addr_hi = last_index * line
        for line_index in range(first_index, last_index + 1):
            line_addr = line_index * line
            cache_set = sets[line_index % num_sets]
            if line_addr in cache_set:
                hits += 1
                if write and not cache_set[line_addr]:
                    cache_set[line_addr] = True
                cache_set.move_to_end(line_addr)
                continue
            misses += 1
            if not allocate:
                continue
            if len(cache_set) >= ways:
                evicted_line, was_dirty = cache_set.popitem(last=False)
                evictions += 1
                if was_dirty:
                    append_dirty(evicted_line)
                else:
                    evicted_clean += 1
            else:
                installed += 1
            cache_set[line_addr] = write
        result.lines = last_index - first_index + 1
        result.hits = hits
        result.misses = misses
        result.evicted_clean = evicted_clean
        self._num_valid += installed
        dirty_evictions = len(evicted_dirty_lines)
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.dirty_evictions += dirty_evictions
        stats.writebacks += dirty_evictions
        return result

    def _access_range_fast(
        self, start: int, nbytes: int, write: bool, allocate: bool
    ) -> RangeAccessResult:
        """The vectorized :meth:`access_range` walk (pop-and-reinsert hits)."""
        result = RangeAccessResult()
        if nbytes <= 0:
            return result
        line = self.line_bytes
        num_sets = self.num_sets
        ways = self.ways
        sets = self._sets
        stats = self.stats
        evicted_dirty_lines = result.evicted_dirty
        append_dirty = evicted_dirty_lines.append
        hits = misses = evicted_clean = evictions = installed = 0
        first_index = start // line
        last_index = (start + nbytes - 1) // line
        if allocate:
            if first_index * line < self._addr_lo:
                self._addr_lo = first_index * line
            if last_index * line > self._addr_hi:
                self._addr_hi = last_index * line
        line_addr = first_index * line
        set_index = first_index % num_sets
        for _ in range(last_index - first_index + 1):
            cache_set = sets[set_index]
            set_index += 1
            if set_index == num_sets:
                set_index = 0
            # One pop + one reinsert replace the reference walk's
            # membership test, dirty read/write, and move_to_end; the
            # reinsert lands the line in MRU position, and `prev or write`
            # is the sticky-dirty rule (dirty stays dirty, a write access
            # dirties a clean line).
            prev = cache_set.pop(line_addr, None)
            if prev is not None:
                hits += 1
                cache_set[line_addr] = prev or write
                line_addr += line
                continue
            misses += 1
            if allocate:
                if len(cache_set) >= ways:
                    evicted_line = next(iter(cache_set))
                    was_dirty = cache_set.pop(evicted_line)
                    evictions += 1
                    if was_dirty:
                        append_dirty(evicted_line)
                    else:
                        evicted_clean += 1
                else:
                    installed += 1
                cache_set[line_addr] = write
            line_addr += line
        result.lines = last_index - first_index + 1
        result.hits = hits
        result.misses = misses
        result.evicted_clean = evicted_clean
        self._num_valid += installed
        dirty_evictions = len(evicted_dirty_lines)
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.dirty_evictions += dirty_evictions
        stats.writebacks += dirty_evictions
        return result

    def access_line_run(
        self, start: int, nbytes: int, write: bool
    ) -> Tuple[int, int, List[int], List[int]]:
        """Access every line in ``[start, start + nbytes)``, reporting misses.

        Returns ``(hits, misses, miss_lines, evicted_dirty_lines)`` — the
        batch equivalent of calling :meth:`access_line` per line, used by
        the fully-coherent datapath, which needs the missing line addresses
        (to fetch them from the LLC) and the dirty victims (to write them
        back).  Statistics are updated exactly as per-line calls would.

        Both returned lists are in walk order — the datapath feeds them to
        the LLC sequentially, so the order is part of the bit-identity
        contract between the backends.
        """
        if self._vectorized:
            return self._access_line_run_fast(start, nbytes, write)
        hits = 0
        miss_lines: List[int] = []
        evicted_dirty: List[int] = []
        if nbytes <= 0:
            return 0, 0, miss_lines, evicted_dirty
        line = self.line_bytes
        num_sets = self.num_sets
        ways = self.ways
        sets = self._sets
        stats = self.stats
        first_index = start // line
        last_index = (start + nbytes - 1) // line
        if first_index * line < self._addr_lo:
            self._addr_lo = first_index * line
        if last_index * line > self._addr_hi:
            self._addr_hi = last_index * line
        append_miss = miss_lines.append
        append_dirty = evicted_dirty.append
        evictions = installed = 0
        for line_index in range(first_index, last_index + 1):
            line_addr = line_index * line
            cache_set = sets[line_index % num_sets]
            if line_addr in cache_set:
                hits += 1
                if write and not cache_set[line_addr]:
                    cache_set[line_addr] = True
                cache_set.move_to_end(line_addr)
                continue
            append_miss(line_addr)
            if len(cache_set) >= ways:
                evicted_line, was_dirty = cache_set.popitem(last=False)
                evictions += 1
                if was_dirty:
                    append_dirty(evicted_line)
            else:
                installed += 1
            cache_set[line_addr] = write
        misses = len(miss_lines)
        dirty_evictions = len(evicted_dirty)
        self._num_valid += installed
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.dirty_evictions += dirty_evictions
        stats.writebacks += dirty_evictions
        return hits, misses, miss_lines, evicted_dirty

    def _access_line_run_fast(
        self, start: int, nbytes: int, write: bool
    ) -> Tuple[int, int, List[int], List[int]]:
        """The vectorized :meth:`access_line_run` walk."""
        hits = 0
        miss_lines: List[int] = []
        evicted_dirty: List[int] = []
        if nbytes <= 0:
            return 0, 0, miss_lines, evicted_dirty
        line = self.line_bytes
        num_sets = self.num_sets
        ways = self.ways
        sets = self._sets
        stats = self.stats
        first_index = start // line
        last_index = (start + nbytes - 1) // line
        if first_index * line < self._addr_lo:
            self._addr_lo = first_index * line
        if last_index * line > self._addr_hi:
            self._addr_hi = last_index * line
        append_miss = miss_lines.append
        append_dirty = evicted_dirty.append
        evictions = installed = 0
        line_addr = first_index * line
        set_index = first_index % num_sets
        for _ in range(last_index - first_index + 1):
            cache_set = sets[set_index]
            set_index += 1
            if set_index == num_sets:
                set_index = 0
            prev = cache_set.pop(line_addr, None)
            if prev is not None:
                hits += 1
                cache_set[line_addr] = prev or write
                line_addr += line
                continue
            append_miss(line_addr)
            if len(cache_set) >= ways:
                evicted_line = next(iter(cache_set))
                was_dirty = cache_set.pop(evicted_line)
                evictions += 1
                if was_dirty:
                    append_dirty(evicted_line)
            else:
                installed += 1
            cache_set[line_addr] = write
            line_addr += line
        misses = len(miss_lines)
        dirty_evictions = len(evicted_dirty)
        self._num_valid += installed
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.dirty_evictions += dirty_evictions
        stats.writebacks += dirty_evictions
        return hits, misses, miss_lines, evicted_dirty

    def access_lines(
        self, line_addrs: List[int], write: bool
    ) -> Tuple[int, int, int]:
        """Access a list of (aligned) line addresses.

        Returns ``(hits, misses, evicted_dirty_count)`` — the batch
        equivalent of calling :meth:`access_line` per address when the
        caller only needs the aggregate counts (the LLC side of the
        fully-coherent miss path).  Statistics are updated identically.
        """
        if not line_addrs:
            return 0, 0, 0
        if self._vectorized:
            return self._access_lines_fast(line_addrs, write)
        hits = 0
        misses = 0
        evicted_dirty = 0
        line = self.line_bytes
        num_sets = self.num_sets
        ways = self.ways
        sets = self._sets
        stats = self.stats
        lo = min(line_addrs)
        hi = max(line_addrs)
        if lo < self._addr_lo:
            self._addr_lo = lo
        if hi > self._addr_hi:
            self._addr_hi = hi
        evictions = installed = 0
        for line_addr in line_addrs:
            cache_set = sets[(line_addr // line) % num_sets]
            if line_addr in cache_set:
                hits += 1
                if write and not cache_set[line_addr]:
                    cache_set[line_addr] = True
                cache_set.move_to_end(line_addr)
                continue
            misses += 1
            if len(cache_set) >= ways:
                _evicted_line, was_dirty = cache_set.popitem(last=False)
                evictions += 1
                if was_dirty:
                    evicted_dirty += 1
            else:
                installed += 1
            cache_set[line_addr] = write
        self._num_valid += installed
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.dirty_evictions += evicted_dirty
        stats.writebacks += evicted_dirty
        return hits, misses, evicted_dirty

    def _access_lines_fast(
        self, line_addrs: List[int], write: bool
    ) -> Tuple[int, int, int]:
        """The vectorized :meth:`access_lines` walk (arbitrary address list)."""
        hits = 0
        misses = 0
        evicted_dirty = 0
        line = self.line_bytes
        num_sets = self.num_sets
        ways = self.ways
        sets = self._sets
        stats = self.stats
        lo = min(line_addrs)
        hi = max(line_addrs)
        if lo < self._addr_lo:
            self._addr_lo = lo
        if hi > self._addr_hi:
            self._addr_hi = hi
        evictions = installed = 0
        for line_addr in line_addrs:
            cache_set = sets[(line_addr // line) % num_sets]
            prev = cache_set.pop(line_addr, None)
            if prev is not None:
                hits += 1
                cache_set[line_addr] = prev or write
                continue
            misses += 1
            if len(cache_set) >= ways:
                was_dirty = cache_set.pop(next(iter(cache_set)))
                evictions += 1
                if was_dirty:
                    evicted_dirty += 1
            else:
                installed += 1
            cache_set[line_addr] = write
        self._num_valid += installed
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        stats.dirty_evictions += evicted_dirty
        stats.writebacks += evicted_dirty
        return hits, misses, evicted_dirty

    def install_range(self, start: int, nbytes: int, dirty: bool = True) -> int:
        """Warm the cache with ``[start, start + nbytes)`` without statistics.

        Returns the number of lines installed.  Evictions caused by the
        warm-up are silently dropped (the corresponding traffic happened
        before the measured window).
        """
        if nbytes <= 0:
            return 0
        if self._vectorized:
            return self._install_range_fast(start, nbytes, dirty)
        line = self.line_bytes
        num_sets = self.num_sets
        ways = self.ways
        sets = self._sets
        installed = 0
        first_index = start // line
        last_index = (start + nbytes - 1) // line
        if first_index * line < self._addr_lo:
            self._addr_lo = first_index * line
        if last_index * line > self._addr_hi:
            self._addr_hi = last_index * line
        for line_index in range(first_index, last_index + 1):
            line_addr = line_index * line
            cache_set = sets[line_index % num_sets]
            if line_addr in cache_set:
                if dirty and not cache_set[line_addr]:
                    cache_set[line_addr] = True
                cache_set.move_to_end(line_addr)
            else:
                if len(cache_set) >= ways:
                    cache_set.popitem(last=False)
                else:
                    self._num_valid += 1
                cache_set[line_addr] = dirty
            installed += 1
        return installed

    def _install_range_fast(self, start: int, nbytes: int, dirty: bool) -> int:
        """The vectorized :meth:`install_range` walk."""
        line = self.line_bytes
        num_sets = self.num_sets
        ways = self.ways
        sets = self._sets
        first_index = start // line
        last_index = (start + nbytes - 1) // line
        if first_index * line < self._addr_lo:
            self._addr_lo = first_index * line
        if last_index * line > self._addr_hi:
            self._addr_hi = last_index * line
        installed = last_index - first_index + 1
        num_valid = self._num_valid
        line_addr = first_index * line
        set_index = first_index % num_sets
        for _ in range(installed):
            cache_set = sets[set_index]
            set_index += 1
            if set_index == num_sets:
                set_index = 0
            prev = cache_set.pop(line_addr, None)
            if prev is None:
                if len(cache_set) >= ways:
                    del cache_set[next(iter(cache_set))]
                else:
                    num_valid += 1
                cache_set[line_addr] = dirty
            else:
                cache_set[line_addr] = prev or dirty
            line_addr += line
        self._num_valid = num_valid
        return installed

    # ------------------------------------------------------------------
    # Flushes
    # ------------------------------------------------------------------
    def flush_all(self) -> Tuple[int, int]:
        """Flush the whole cache; return ``(writebacks, invalidations)``."""
        writebacks = 0
        invalidations = 0
        for cache_set in self._sets:
            for _line, dirty in cache_set.items():
                invalidations += 1
                if dirty:
                    writebacks += 1
            cache_set.clear()
        self._num_valid = 0
        self._addr_lo = _EMPTY_LO
        self._addr_hi = _EMPTY_HI
        self.stats.flush_writebacks += writebacks
        self.stats.flush_invalidations += invalidations
        return writebacks, invalidations

    def flush_range(self, start: int, nbytes: int) -> Tuple[int, int]:
        """Flush only the given range; return ``(writebacks, invalidations)``."""
        writebacks = 0
        invalidations = 0
        if nbytes > 0 and self._num_valid:
            line = self.line_bytes
            first = (start // line) * line
            last = ((start + nbytes - 1) // line) * line
            if last < self._addr_lo or first > self._addr_hi:
                return 0, 0
            range_lines = (last - first) // line + 1
            if range_lines <= self._num_valid:
                # Few lines in the range: walk the address range.
                num_sets = self.num_sets
                sets = self._sets
                for line_index in range(first // line, last // line + 1):
                    dirty = sets[line_index % num_sets].pop(line_index * line, None)
                    if dirty is None:
                        continue
                    invalidations += 1
                    if dirty:
                        writebacks += 1
            else:
                # Range larger than the cache contents: walk the (small)
                # resident set instead — flushing a huge buffer costs
                # O(resident lines), not O(buffer size).
                for cache_set in self._sets:
                    in_range = [
                        addr for addr in cache_set if first <= addr <= last
                    ]
                    for addr in in_range:
                        invalidations += 1
                        if cache_set.pop(addr):
                            writebacks += 1
            self._num_valid -= invalidations
            if not self._num_valid:
                self._addr_lo = _EMPTY_LO
                self._addr_hi = _EMPTY_HI
        self.stats.flush_writebacks += writebacks
        self.stats.flush_invalidations += invalidations
        return writebacks, invalidations

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def valid_lines(self) -> int:
        """Number of valid lines currently resident."""
        return self._num_valid

    def dirty_lines(self) -> int:
        """Number of dirty lines currently resident."""
        return sum(sum(1 for dirty in cache_set.values() if dirty) for cache_set in self._sets)

    def occupancy_bytes(self) -> int:
        """Bytes of valid data currently resident."""
        return self._num_valid * self.line_bytes

    def occupancy_fraction(self) -> float:
        """Fraction of the cache capacity currently valid."""
        capacity_lines = self.num_sets * self.ways
        return self._num_valid / capacity_lines if capacity_lines else 0.0

    def resident_lines_in_range(self, start: int, nbytes: int) -> int:
        """Number of lines of ``[start, start + nbytes)`` currently resident."""
        if nbytes <= 0 or not self._num_valid:
            return 0
        line = self.line_bytes
        first = (start // line) * line
        last = ((start + nbytes - 1) // line) * line
        if last < self._addr_lo or first > self._addr_hi:
            return 0
        range_lines = (last - first) // line + 1
        if range_lines <= self._num_valid:
            num_sets = self.num_sets
            sets = self._sets
            return sum(
                1
                for line_index in range(first // line, last // line + 1)
                if line_index * line in sets[line_index % num_sets]
            )
        return sum(
            1
            for cache_set in self._sets
            for addr in cache_set
            if first <= addr <= last
        )

    def resident_lines_within(self, start: int, nbytes: int) -> List[int]:
        """Return resident line addresses falling inside ``[start, start+nbytes)``.

        This walks the (small) cache contents rather than the (potentially
        huge) address range, which is what the coherent-DMA recall logic
        needs: it only cares about the few lines a private cache actually
        holds.  An empty cache returns immediately.
        """
        if nbytes <= 0 or not self._num_valid:
            return []
        end = start + nbytes
        if end <= self._addr_lo or start >= self._addr_hi + self.line_bytes:
            return []
        lo = start - self.line_bytes
        # A line overlaps [start, end) iff lo < addr < end (addr > lo is the
        # same as addr + line_bytes > start for aligned addresses).
        return [
            addr
            for cache_set in self._sets
            for addr in cache_set
            if lo < addr < end
        ]

    def clear(self) -> None:
        """Drop all contents and statistics (used between experiments)."""
        for cache_set in self._sets:
            cache_set.clear()
        self._num_valid = 0
        self._addr_lo = _EMPTY_LO
        self._addr_hi = _EMPTY_HI
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(name={self.name!r}, size={self.size_bytes}, "
            f"line={self.line_bytes}, ways={self.ways}, sets={self.num_sets})"
        )


def flush_cost_cycles(
    writebacks: int,
    invalidations: int,
    flush_base_cycles: float,
    flush_cycles_per_line: float,
) -> float:
    """Cycle cost of a software flush given its outcome.

    The cost model charges a fixed issue cost plus a per-line walk cost for
    every line touched; write-backs are additionally charged by the caller
    as DRAM (or LLC) traffic through the normal resources.
    """
    touched = max(invalidations, writebacks)
    return flush_base_cycles + flush_cycles_per_line * touched
