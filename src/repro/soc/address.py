"""Partitioned address space and accelerator-data allocation.

The SoCs modelled here have a partitioned memory space: each memory tile
owns a contiguous slice of the physical address space, an LLC partition for
that slice, and a DRAM controller with a dedicated channel (Figure 1 of the
paper).  Accelerator data is allocated in "big pages" (ESP allocates
accelerator buffers in large Linux pages so the page table fits in the
accelerator TLB); buffers larger than one big page are spread across memory
partitions page by page, which gives large workloads parallel access to
multiple DRAM channels.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import AllocationError, ConfigurationError
from repro.units import BIG_PAGE_BYTES, align_up


@dataclass(frozen=True)
class BufferSegment:
    """A contiguous piece of a buffer living in one memory partition."""

    mem_tile: int
    start: int
    size: int

    @property
    def end(self) -> int:
        """Exclusive end address of the segment."""
        return self.start + self.size


@dataclass
class Buffer:
    """An accelerator data buffer spread over one or more memory partitions."""

    name: str
    size: int
    segments: Tuple[BufferSegment, ...]

    def __post_init__(self) -> None:
        # Cumulative buffer-relative start offset of each segment, so that
        # slice() can bisect to the first covering segment instead of
        # scanning from the front on every DMA chunk.
        starts: List[int] = []
        covered = 0
        for segment in self.segments:
            starts.append(covered)
            covered += segment.size
        self._segment_starts = starts
        self._slice_memo: Dict[Tuple[int, int], List[BufferSegment]] = {}
        self._footprint_memo: Dict[int, Dict[int, int]] = {}

    @property
    def mem_tiles(self) -> Tuple[int, ...]:
        """Memory tiles (partitions) that hold at least one byte of data."""
        return tuple(sorted({segment.mem_tile for segment in self.segments}))

    def footprint_per_tile(self) -> Dict[int, int]:
        """Return ``{mem_tile: bytes}`` for this buffer."""
        footprint: Dict[int, int] = {}
        for segment in self.segments:
            footprint[segment.mem_tile] = footprint.get(segment.mem_tile, 0) + segment.size
        return footprint

    def iter_segments(self) -> Iterator[BufferSegment]:
        """Iterate over the buffer's segments in address order."""
        return iter(self.segments)

    def footprint_within(self, nbytes: int) -> Dict[int, int]:
        """Return ``{mem_tile: bytes}`` for the first ``nbytes`` of the buffer.

        The runtime asks this for every invocation of the same buffer and
        footprint, so results are memoized; callers must treat the returned
        mapping as read-only.
        """
        cached = self._footprint_memo.get(nbytes)
        if cached is not None:
            return cached
        footprint: Dict[int, int] = {}
        for segment in self.slice(0, nbytes):
            footprint[segment.mem_tile] = footprint.get(segment.mem_tile, 0) + segment.size
        self._footprint_memo[nbytes] = footprint
        return footprint

    def slice(self, offset: int, nbytes: int) -> List[BufferSegment]:
        """Return the segments covering ``[offset, offset + nbytes)`` of the buffer.

        Offsets are relative to the start of the buffer (not physical
        addresses); the returned segments carry physical addresses.  The
        executor re-slices the same windows on every invocation, so results
        are memoized; callers must treat the returned list as read-only.
        """
        if offset < 0 or nbytes < 0:
            raise AllocationError("negative slice bounds")
        if offset + nbytes > self.size:
            raise AllocationError(
                f"slice [{offset}, {offset + nbytes}) exceeds buffer of {self.size} bytes"
            )
        key = (offset, nbytes)
        memo = self._slice_memo
        cached = memo.get(key)
        if cached is not None:
            return cached
        result: List[BufferSegment] = []
        if nbytes > 0:
            starts = self._segment_starts
            index = bisect_right(starts, offset) - 1
            remaining = nbytes
            cursor = offset
            while remaining > 0 and index < len(starts):
                segment = self.segments[index]
                inner = cursor - starts[index]
                take = min(segment.size - inner, remaining)
                result.append(
                    BufferSegment(
                        mem_tile=segment.mem_tile,
                        start=segment.start + inner,
                        size=take,
                    )
                )
                remaining -= take
                cursor += take
                index += 1
        if len(memo) >= 4096:
            memo.clear()
        memo[key] = result
        return result


class AddressMap:
    """Physical address map with one partition per memory tile."""

    def __init__(self, num_mem_tiles: int, partition_bytes: int) -> None:
        if num_mem_tiles <= 0:
            raise ConfigurationError("address map needs at least one memory tile")
        if partition_bytes <= 0:
            raise ConfigurationError("partition size must be positive")
        self.num_mem_tiles = num_mem_tiles
        self.partition_bytes = partition_bytes

    def partition_of(self, address: int) -> int:
        """Return the memory tile owning ``address``."""
        tile = address // self.partition_bytes
        if not 0 <= tile < self.num_mem_tiles:
            raise AllocationError(f"address {address:#x} outside the address map")
        return tile

    def partition_base(self, mem_tile: int) -> int:
        """Return the base physical address of ``mem_tile``'s partition."""
        if not 0 <= mem_tile < self.num_mem_tiles:
            raise AllocationError(f"memory tile {mem_tile} out of range")
        return mem_tile * self.partition_bytes

    @property
    def total_bytes(self) -> int:
        """Total size of the physical address space."""
        return self.num_mem_tiles * self.partition_bytes


@dataclass
class _PartitionState:
    """Allocator bookkeeping for one memory partition."""

    base: int
    size: int
    cursor: int = 0

    @property
    def used(self) -> int:
        return self.cursor

    @property
    def free(self) -> int:
        return self.size - self.cursor


class Allocator:
    """Big-page allocator for accelerator data buffers.

    Buffers up to one big page are placed entirely in the least-loaded
    partition.  Larger buffers are split into big pages distributed
    round-robin over the partitions, starting from the least-loaded one, so
    that large workloads can exploit several DRAM channels in parallel —
    matching the ESP allocation scheme the paper relies on.
    """

    def __init__(self, address_map: AddressMap, page_bytes: int = BIG_PAGE_BYTES) -> None:
        if page_bytes <= 0:
            raise ConfigurationError("page size must be positive")
        self.address_map = address_map
        self.page_bytes = page_bytes
        self._partitions = [
            _PartitionState(base=address_map.partition_base(tile), size=address_map.partition_bytes)
            for tile in range(address_map.num_mem_tiles)
        ]
        self._allocations: Dict[str, Buffer] = {}
        self._counter = 0
        self._next_partition = 0

    # ------------------------------------------------------------------
    def allocate(self, size: int, name: str = "") -> Buffer:
        """Allocate a buffer of ``size`` bytes and return its segments."""
        if size <= 0:
            raise AllocationError(f"buffer size must be positive, got {size}")
        name = name or f"buf{self._counter}"
        self._counter += 1
        padded = align_up(size, min(self.page_bytes, 4096))

        if padded <= self.page_bytes:
            segments = [self._allocate_in_partition(self._pick_partition(padded), padded)]
        else:
            segments = self._allocate_paged(padded)

        buffer = Buffer(name=name, size=size, segments=tuple(segments))
        self._allocations[name] = buffer
        return buffer

    def free(self, buffer: Buffer) -> None:
        """Release a buffer.

        The allocator is a simple bump allocator per partition; freeing only
        removes the bookkeeping entry (experiments allocate all buffers up
        front and tear the whole SoC down afterwards, so fragmentation is
        not a concern).
        """
        self._allocations.pop(buffer.name, None)

    # ------------------------------------------------------------------
    def _least_loaded(self) -> int:
        return min(range(len(self._partitions)), key=lambda i: self._partitions[i].used)

    def _pick_partition(self, nbytes: int) -> int:
        """Pick the partition for a single-page buffer.

        Buffers are spread round-robin over the memory partitions, which is
        how ESP balances accelerator data across DRAM controllers; a
        partition that cannot hold the buffer is skipped.
        """
        num = len(self._partitions)
        for offset in range(num):
            candidate = (self._next_partition + offset) % num
            if self._partitions[candidate].free >= nbytes:
                self._next_partition = (candidate + 1) % num
                return candidate
        raise AllocationError(f"no partition can hold a buffer of {nbytes} bytes")

    def _allocate_in_partition(self, tile: int, nbytes: int) -> BufferSegment:
        state = self._partitions[tile]
        if state.free < nbytes:
            raise AllocationError(
                f"memory partition {tile} exhausted: need {nbytes}, free {state.free}"
            )
        segment = BufferSegment(mem_tile=tile, start=state.base + state.cursor, size=nbytes)
        state.cursor += nbytes
        return segment

    def _allocate_paged(self, nbytes: int) -> List[BufferSegment]:
        segments: List[BufferSegment] = []
        remaining = nbytes
        tile = self._least_loaded()
        num_tiles = len(self._partitions)
        while remaining > 0:
            take = min(self.page_bytes, remaining)
            placed = False
            for offset in range(num_tiles):
                candidate = (tile + offset) % num_tiles
                if self._partitions[candidate].free >= take:
                    segments.append(self._allocate_in_partition(candidate, take))
                    tile = (candidate + 1) % num_tiles
                    placed = True
                    break
            if not placed:
                raise AllocationError(
                    f"no partition can hold a {take}-byte page (buffer of {nbytes} bytes)"
                )
            remaining -= take
        return _coalesce(segments)

    # ------------------------------------------------------------------
    @property
    def allocations(self) -> Dict[str, Buffer]:
        """Currently live allocations by name."""
        return dict(self._allocations)

    def used_per_partition(self) -> List[int]:
        """Bytes allocated in each partition."""
        return [state.used for state in self._partitions]


def _coalesce(segments: Sequence[BufferSegment]) -> List[BufferSegment]:
    """Merge physically contiguous segments on the same memory tile."""
    merged: List[BufferSegment] = []
    for segment in segments:
        if (
            merged
            and merged[-1].mem_tile == segment.mem_tile
            and merged[-1].end == segment.start
        ):
            previous = merged.pop()
            merged.append(
                BufferSegment(
                    mem_tile=previous.mem_tile,
                    start=previous.start,
                    size=previous.size + segment.size,
                )
            )
        else:
            merged.append(segment)
    return merged
