"""Last-level cache partition.

Each memory tile hosts one LLC partition covering the slice of the address
space owned by that tile, together with the tile's DRAM controller.  The
partition combines a set-associative cache model with a shared port
(bandwidth resource): when several accelerators route their requests to the
same partition, they queue on the port, which is the contention effect that
penalises the cached coherence modes under high parallelism (Figure 3).
"""

from __future__ import annotations

from typing import Dict

from repro.sim.resources import BandwidthResource
from repro.soc.cache import RangeAccessResult, SetAssociativeCache


class LLCPartition:
    """One partition of the last-level cache."""

    def __init__(
        self,
        mem_tile: int,
        size_bytes: int,
        line_bytes: int,
        ways: int,
        port_bytes_per_cycle: float,
        lookup_cycles: float,
    ) -> None:
        self.mem_tile = mem_tile
        self.cache = SetAssociativeCache(
            name=f"llc[{mem_tile}]",
            size_bytes=size_bytes,
            line_bytes=line_bytes,
            ways=ways,
        )
        self.port = BandwidthResource(
            name=f"llc-port[{mem_tile}]",
            bytes_per_cycle=port_bytes_per_cycle,
            latency=lookup_cycles,
        )

    # ------------------------------------------------------------------
    def lookup_range(self, start: int, nbytes: int, write: bool) -> RangeAccessResult:
        """Access a byte range through the partition's cache array."""
        return self.cache.access_range(start, nbytes, write=write)

    def serve_port(self, now: float, nbytes: float, extra_latency: float = 0.0) -> float:
        """Occupy the partition port for a transfer of ``nbytes``."""
        return self.port.serve(now, nbytes, extra_latency=extra_latency)

    def warm(self, start: int, nbytes: int, dirty: bool = True) -> int:
        """Install a range without generating traffic (CPU-initialised data)."""
        return self.cache.install_range(start, nbytes, dirty=dirty)

    def flush(self) -> tuple:
        """Software flush of the whole partition; returns (writebacks, invalidations)."""
        return self.cache.flush_all()

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Capacity of the partition."""
        return self.cache.size_bytes

    def occupancy_bytes(self) -> int:
        """Bytes of valid data currently resident."""
        return self.cache.occupancy_bytes()

    def stats(self) -> Dict[str, float]:
        """Combined cache and port counters."""
        combined: Dict[str, float] = dict(self.cache.stats.as_dict())
        combined.update({f"port_{k}": v for k, v in self.port.stats.as_dict().items()})
        return combined

    def reset(self) -> None:
        """Clear contents, counters, and port queue."""
        self.cache.clear()
        self.port.reset()
