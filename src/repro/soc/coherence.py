"""The four accelerator cache-coherence modes (paper Section 2).

The modes are defined from the *system's* point of view and are independent
of the specific protocol implemented by the cache hierarchy:

* ``NON_COH_DMA`` — the accelerator bypasses the cache hierarchy and reads
  and writes DRAM directly.  Software must flush the private caches *and*
  the LLC before the invocation so that main memory holds the latest data.
* ``LLC_COH_DMA`` — requests go to the LLC partition owning the address;
  the accelerator is coherent with the LLC but not with the processors'
  private caches, which therefore must be flushed by software.
* ``COH_DMA`` — requests go to the LLC and the hardware keeps full
  coherence by recalling or invalidating lines held in private caches; no
  software flush is required.
* ``FULL_COH`` — the accelerator owns a private cache that participates in
  the regular coherence protocol, exactly like a processor core.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

from repro.errors import CoherenceError


class CoherenceMode(Enum):
    """Accelerator cache-coherence modes."""

    NON_COH_DMA = "non-coh-dma"
    LLC_COH_DMA = "llc-coh-dma"
    COH_DMA = "coh-dma"
    FULL_COH = "full-coh"

    @property
    def label(self) -> str:
        """Short label used in tables and figures (matches the paper)."""
        return self.value

    @property
    def requires_private_flush(self) -> bool:
        """Whether software must flush the processors' private caches."""
        return self in (CoherenceMode.NON_COH_DMA, CoherenceMode.LLC_COH_DMA)

    @property
    def requires_llc_flush(self) -> bool:
        """Whether software must also flush the LLC."""
        return self is CoherenceMode.NON_COH_DMA

    @property
    def uses_llc(self) -> bool:
        """Whether accelerator requests are routed through the LLC."""
        return self in (
            CoherenceMode.LLC_COH_DMA,
            CoherenceMode.COH_DMA,
            CoherenceMode.FULL_COH,
        )

    @property
    def uses_private_cache(self) -> bool:
        """Whether the accelerator sends requests to its own private cache."""
        return self is CoherenceMode.FULL_COH

    @property
    def hardware_recalls(self) -> bool:
        """Whether the hardware recalls data from private caches on demand."""
        return self in (CoherenceMode.COH_DMA, CoherenceMode.FULL_COH)

    def __str__(self) -> str:
        return self.value


#: Canonical ordering of the modes, used as the RL action set.
COHERENCE_MODES: Tuple[CoherenceMode, ...] = (
    CoherenceMode.NON_COH_DMA,
    CoherenceMode.LLC_COH_DMA,
    CoherenceMode.COH_DMA,
    CoherenceMode.FULL_COH,
)


#: Memoized label -> mode and mode -> canonical-index tables.  The lookups
#: run once per simulated coherence decision, so they are dictionary reads
#: rather than linear scans over the enum.
_MODE_BY_LABEL: dict = {mode.value: mode for mode in COHERENCE_MODES}
_MODE_INDEX: dict = {mode: index for index, mode in enumerate(COHERENCE_MODES)}


def mode_from_label(label: str) -> CoherenceMode:
    """Parse a coherence mode from its short label (e.g. ``'coh-dma'``)."""
    try:
        return _MODE_BY_LABEL[label]
    except KeyError:
        raise CoherenceError(f"unknown coherence mode label {label!r}") from None


def mode_index(mode: CoherenceMode) -> int:
    """Return the canonical index of ``mode`` in :data:`COHERENCE_MODES`."""
    return _MODE_INDEX[mode]
