"""Hardware monitoring system (paper Section 4.3, "Evaluate").

The paper adds a lightweight set of memory-mapped counters to every tile:

* per-memory-tile counters of off-chip (DRAM) accesses;
* per-accelerator-tile counters of total execution cycles and of the cycles
  spent communicating with memory (issuing a request or awaiting a
  response).

Software reads the DRAM counters before and after each accelerator
invocation to compute the delta, and reads the accelerator counters (which
are reset when the accelerator starts) at the end of the invocation.  This
module models those registers; the attribution of shared DRAM counters to
individual accelerators is performed by :mod:`repro.runtime.attribution`,
exactly as the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.soc.dram import DramController


class AcceleratorCounters:
    """Cycle counters of one accelerator tile for one invocation."""

    __slots__ = ("total_cycles", "comm_cycles")

    def __init__(self, total_cycles: float = 0.0, comm_cycles: float = 0.0) -> None:
        self.total_cycles = total_cycles
        self.comm_cycles = comm_cycles

    @property
    def comm_ratio(self) -> float:
        """Fraction of execution cycles spent communicating with memory."""
        if self.total_cycles <= 0:
            return 0.0
        return min(self.comm_cycles / self.total_cycles, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AcceleratorCounters(total_cycles={self.total_cycles}, "
            f"comm_cycles={self.comm_cycles})"
        )


class DdrSnapshot:
    """A point-in-time reading of every DRAM controller's access counter.

    Two snapshots are taken per invocation (before/after), hence the
    ``__slots__`` layout.
    """

    __slots__ = ("per_tile",)

    def __init__(self, per_tile: Optional[Dict[int, int]] = None) -> None:
        self.per_tile = per_tile if per_tile is not None else {}

    def delta(self, later: "DdrSnapshot") -> Dict[int, int]:
        """Per-tile difference ``later - self`` (counter overflow-free here)."""
        later_per_tile = later.per_tile
        return {
            tile: later_per_tile.get(tile, 0) - count
            for tile, count in self.per_tile.items()
        }

    @property
    def total(self) -> int:
        """Total accesses across all controllers."""
        return sum(self.per_tile.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DdrSnapshot(per_tile={self.per_tile!r})"


class HardwareMonitors:
    """Access point for all hardware counters of one SoC."""

    def __init__(self, dram_controllers: List[DramController]) -> None:
        self._dram_controllers = list(dram_controllers)
        self._accelerator_counters: Dict[str, AcceleratorCounters] = {}

    # ------------------------------------------------------------------
    # DRAM access counters
    # ------------------------------------------------------------------
    def ddr_snapshot(self) -> DdrSnapshot:
        """Read every DRAM controller's total access counter."""
        return DdrSnapshot(
            per_tile={
                controller.mem_tile: controller.total_accesses
                for controller in self._dram_controllers
            }
        )

    def total_ddr_accesses(self) -> int:
        """Total off-chip accesses since the SoC was built (or reset)."""
        return sum(controller.total_accesses for controller in self._dram_controllers)

    # ------------------------------------------------------------------
    # Accelerator cycle counters
    # ------------------------------------------------------------------
    def reset_accelerator(self, tile_name: str) -> None:
        """Reset the cycle counters of one accelerator tile."""
        self._accelerator_counters[tile_name] = AcceleratorCounters()

    def add_accelerator_cycles(
        self, tile_name: str, total_cycles: float, comm_cycles: float
    ) -> None:
        """Accumulate cycles into an accelerator tile's counters."""
        counters = self._accelerator_counters.setdefault(tile_name, AcceleratorCounters())
        counters.total_cycles += total_cycles
        counters.comm_cycles += comm_cycles

    def read_accelerator(self, tile_name: str) -> AcceleratorCounters:
        """Read the cycle counters of one accelerator tile."""
        return self._accelerator_counters.get(tile_name, AcceleratorCounters())

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear every counter (DRAM counters are owned by the controllers)."""
        self._accelerator_counters.clear()
        for controller in self._dram_controllers:
            controller.reset()
