"""SoC configuration objects and the Table 4 presets.

A :class:`SoCConfig` captures the architectural parameters the paper varies
across its evaluation platforms (Table 4): number of accelerator tiles,
NoC size, number of processor cores, number of memory tiles (each with a
DRAM controller and an LLC partition), cache sizes, and whether accelerator
tiles include a private cache for the fully-coherent mode.

A :class:`TimingConfig` captures the cycle-level cost model: latencies and
bandwidths of the NoC, the LLC, and the DRAM channels, plus software
overheads such as the device-driver invocation cost and the per-line cache
flush cost.  These values are not taken from the paper (which measures a
real FPGA) but are chosen to be representative of the ESP platform; the
experiments only rely on relative behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.units import CACHE_LINE_BYTES, KB, MB


@dataclass(frozen=True)
class TimingConfig:
    """Cycle-level cost model of the SoC."""

    #: Latency of one hop between neighbouring NoC routers.
    noc_hop_cycles: float = 1.0
    #: Bandwidth of a single NoC plane / accelerator DMA engine (32 bits).
    noc_bytes_per_cycle: float = 4.0
    #: Aggregate NoC bandwidth into a memory tile (traffic converges from
    #: several mesh directions and planes, so it exceeds a single link).
    noc_mem_link_bytes_per_cycle: float = 24.0
    #: Per-accelerator DMA engine rate: one accelerator cannot inject or
    #: absorb more than one NoC plane's worth of data per cycle.
    acc_link_bytes_per_cycle: float = 4.0
    #: Fixed lookup latency of an LLC partition.
    llc_lookup_cycles: float = 16.0
    #: Bandwidth of an LLC partition port (bytes per cycle).
    llc_bytes_per_cycle: float = 12.0
    #: Fixed access latency of a DRAM channel (row activation + CAS).
    dram_latency_cycles: float = 100.0
    #: Sustained bandwidth of a DRAM channel (the off-chip channel is much
    #: faster than a single accelerator's 32-bit DMA interface, which is why
    #: a single accelerator never saturates it).
    dram_bytes_per_cycle: float = 24.0
    #: Relative LLC-pipeline occupancy of coherent-DMA requests: they must
    #: consult the directory and possibly recall private-cache lines, so
    #: they keep the partition busy longer per datum than plain LLC-coherent
    #: requests.
    coh_dma_port_factor: float = 1.5
    #: Relative LLC-pipeline occupancy of fully-coherent miss requests
    #: (line-granularity directory transactions).
    full_coh_port_factor: float = 1.15
    #: Hit latency of a private cache.
    l2_hit_cycles: float = 2.0
    #: Local bandwidth of a private cache (bytes per cycle).
    l2_bytes_per_cycle: float = 16.0
    #: Cycles to walk one cache line during a software flush.
    flush_cycles_per_line: float = 2.0
    #: Fixed cost of issuing a software flush command.
    flush_base_cycles: float = 200.0
    #: Latency of recalling/invalidating a line from a private cache.  The
    #: recall round-trips largely overlap with the DMA stream, so the
    #: exposed per-line cost is a fraction of the raw round-trip latency.
    recall_cycles_per_line: float = 8.0
    #: Extra overhead of the fully-coherent miss path per 64-byte line of
    #: misses (requests are issued per cache line rather than as long DMA
    #: bursts, so they amortise protocol latency poorly).
    full_coh_line_overhead_cycles: float = 4.0
    #: Device-driver overhead of one accelerator invocation (including the
    #: TLB load for the accelerator's page table).
    driver_base_cycles: float = 2000.0
    #: Per-DMA-burst overhead of the accelerator's DMA engine.
    dma_burst_overhead_cycles: float = 4.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any value is non-physical."""
        for name in (
            "noc_hop_cycles",
            "noc_bytes_per_cycle",
            "noc_mem_link_bytes_per_cycle",
            "acc_link_bytes_per_cycle",
            "llc_lookup_cycles",
            "llc_bytes_per_cycle",
            "dram_latency_cycles",
            "dram_bytes_per_cycle",
            "l2_hit_cycles",
            "l2_bytes_per_cycle",
            "flush_cycles_per_line",
            "flush_base_cycles",
            "recall_cycles_per_line",
            "full_coh_line_overhead_cycles",
            "driver_base_cycles",
            "dma_burst_overhead_cycles",
            "coh_dma_port_factor",
            "full_coh_port_factor",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"timing parameter {name} must be >= 0")
        if self.noc_bytes_per_cycle <= 0 or self.dram_bytes_per_cycle <= 0:
            raise ConfigurationError("bandwidth parameters must be positive")


@dataclass(frozen=True)
class SoCConfig:
    """Architectural parameters of one SoC instance (cf. Table 4)."""

    name: str
    num_accelerator_tiles: int
    noc_rows: int
    noc_cols: int
    num_cpus: int
    num_mem_tiles: int
    llc_partition_bytes: int
    l2_bytes: int
    acc_l2_bytes: Optional[int] = None
    cache_line_bytes: int = CACHE_LINE_BYTES
    l2_ways: int = 4
    llc_ways: int = 16
    #: Indices of accelerator tiles that do NOT have a private cache (and
    #: therefore cannot use the fully-coherent mode); SoC3 has five such
    #: tiles due to FPGA resource constraints.
    accelerators_without_cache: Tuple[int, ...] = ()
    dram_partition_bytes: int = 512 * MB
    timing: TimingConfig = field(default_factory=TimingConfig)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency of the configuration."""
        if self.num_accelerator_tiles <= 0:
            raise ConfigurationError("an SoC needs at least one accelerator tile")
        if self.num_cpus <= 0:
            raise ConfigurationError("an SoC needs at least one processor tile")
        if self.num_mem_tiles <= 0:
            raise ConfigurationError("an SoC needs at least one memory tile")
        if self.noc_rows <= 0 or self.noc_cols <= 0:
            raise ConfigurationError("NoC dimensions must be positive")
        total_tiles = self.num_accelerator_tiles + self.num_cpus + self.num_mem_tiles
        if total_tiles > self.noc_rows * self.noc_cols:
            raise ConfigurationError(
                f"{self.name}: {total_tiles} tiles do not fit in a "
                f"{self.noc_rows}x{self.noc_cols} NoC"
            )
        if self.llc_partition_bytes <= 0 or self.l2_bytes <= 0:
            raise ConfigurationError("cache sizes must be positive")
        if self.cache_line_bytes <= 0 or self.cache_line_bytes % 2:
            raise ConfigurationError("cache line size must be a positive even value")
        for index in self.accelerators_without_cache:
            if not 0 <= index < self.num_accelerator_tiles:
                raise ConfigurationError(
                    f"accelerator index {index} out of range in "
                    f"accelerators_without_cache"
                )
        self.timing.validate()

    # ------------------------------------------------------------------
    @property
    def accelerator_l2_bytes(self) -> int:
        """Size of an accelerator tile's private cache."""
        return self.acc_l2_bytes if self.acc_l2_bytes is not None else self.l2_bytes

    @property
    def total_llc_bytes(self) -> int:
        """Aggregate LLC capacity across all partitions."""
        return self.llc_partition_bytes * self.num_mem_tiles

    def accelerator_has_cache(self, accelerator_index: int) -> bool:
        """Whether the accelerator tile at ``accelerator_index`` has a cache."""
        return accelerator_index not in self.accelerators_without_cache

    def with_timing(self, **overrides: float) -> "SoCConfig":
        """Return a copy of this config with some timing parameters replaced."""
        return replace(self, timing=replace(self.timing, **overrides))

    def with_line_size(self, line_bytes: int) -> "SoCConfig":
        """Return a copy with a different cache-model granularity.

        Large sweeps can model caches at a coarser granularity (e.g. 256-byte
        blocks) to reduce simulation cost; relative results are unaffected
        because all modes are scaled identically.
        """
        return replace(self, cache_line_bytes=line_bytes)

    def describe(self) -> Dict[str, object]:
        """Return the Table 4 style summary of this configuration."""
        return {
            "name": self.name,
            "accelerators": self.num_accelerator_tiles,
            "noc": f"{self.noc_rows}x{self.noc_cols}",
            "cpus": self.num_cpus,
            "ddrs": self.num_mem_tiles,
            "llc_partition_kb": self.llc_partition_bytes // KB,
            "total_llc_kb": self.total_llc_bytes // KB,
            "l2_kb": self.l2_bytes // KB,
        }


# ----------------------------------------------------------------------
# Table 4 presets
# ----------------------------------------------------------------------

_PRESETS: Dict[str, SoCConfig] = {}


def _register(config: SoCConfig) -> SoCConfig:
    _PRESETS[config.name] = config
    return config


#: SoC0: 12 accelerators, 5x5 NoC, 4 CPUs, 4 DDRs, 512 KB LLC partitions.
SOC0 = _register(
    SoCConfig(
        name="SoC0",
        num_accelerator_tiles=12,
        noc_rows=5,
        noc_cols=5,
        num_cpus=4,
        num_mem_tiles=4,
        llc_partition_bytes=512 * KB,
        l2_bytes=64 * KB,
    )
)

#: SoC1: 7 accelerators, 4x4 NoC, 2 CPUs, 4 DDRs, 256 KB LLC partitions.
SOC1 = _register(
    SoCConfig(
        name="SoC1",
        num_accelerator_tiles=7,
        noc_rows=4,
        noc_cols=4,
        num_cpus=2,
        num_mem_tiles=4,
        llc_partition_bytes=256 * KB,
        l2_bytes=32 * KB,
    )
)

#: SoC2: 9 accelerators, 4x4 NoC, 4 CPUs, 2 DDRs, 512 KB LLC partitions.
SOC2 = _register(
    SoCConfig(
        name="SoC2",
        num_accelerator_tiles=9,
        noc_rows=4,
        noc_cols=4,
        num_cpus=4,
        num_mem_tiles=2,
        llc_partition_bytes=512 * KB,
        l2_bytes=32 * KB,
    )
)

#: SoC3: 16 accelerators, 5x5 NoC, 4 CPUs, 4 DDRs, 256 KB LLC partitions;
#: five accelerators lack a private cache (FPGA resource constraints).
SOC3 = _register(
    SoCConfig(
        name="SoC3",
        num_accelerator_tiles=16,
        noc_rows=5,
        noc_cols=5,
        num_cpus=4,
        num_mem_tiles=4,
        llc_partition_bytes=256 * KB,
        l2_bytes=64 * KB,
        accelerators_without_cache=(11, 12, 13, 14, 15),
    )
)

#: SoC4 (case study, mixed accelerators): 11 accelerators, 5x4 NoC.
SOC4 = _register(
    SoCConfig(
        name="SoC4",
        num_accelerator_tiles=11,
        noc_rows=5,
        noc_cols=4,
        num_cpus=2,
        num_mem_tiles=4,
        llc_partition_bytes=256 * KB,
        l2_bytes=32 * KB,
    )
)

#: SoC5 (case study, collaborative autonomous vehicles): 8 accelerators.
SOC5 = _register(
    SoCConfig(
        name="SoC5",
        num_accelerator_tiles=8,
        noc_rows=4,
        noc_cols=4,
        num_cpus=1,
        num_mem_tiles=4,
        llc_partition_bytes=256 * KB,
        l2_bytes=32 * KB,
    )
)

#: SoC6 (case study, computer vision): 9 accelerators, 2 DDRs, 512 KB LLC.
SOC6 = _register(
    SoCConfig(
        name="SoC6",
        num_accelerator_tiles=9,
        noc_rows=4,
        noc_cols=4,
        num_cpus=1,
        num_mem_tiles=2,
        llc_partition_bytes=256 * KB,
        l2_bytes=32 * KB,
    )
)

#: The SoC used for the Section 3 motivation experiments: 32 KB private
#: caches, a 1 MB LLC split in two partitions, two memory controllers.
MOTIVATION_SOC = _register(
    SoCConfig(
        name="Motivation",
        num_accelerator_tiles=12,
        noc_rows=5,
        noc_cols=4,
        num_cpus=2,
        num_mem_tiles=2,
        llc_partition_bytes=512 * KB,
        l2_bytes=32 * KB,
    )
)


def soc_preset(name: str) -> SoCConfig:
    """Return the Table 4 preset with the given name (e.g. ``'SoC0'``)."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown SoC preset {name!r}; available: {sorted(_PRESETS)}"
        ) from None


def available_presets() -> Tuple[str, ...]:
    """Return the names of all registered SoC presets."""
    return tuple(sorted(_PRESETS))
