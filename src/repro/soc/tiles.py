"""Tile descriptors and floorplanning.

ESP SoCs are grids of tiles of four kinds: processor tiles, accelerator
tiles, memory tiles, and auxiliary tiles.  This module assigns tiles to
mesh coordinates with a simple deterministic floorplan: memory tiles at the
corners (so their links are spread across the mesh), processor tiles along
the top edge, accelerator tiles filling the remaining positions, and one
auxiliary tile if a slot is left over.  Exact placement only affects hop
counts mildly; what matters for the experiments is that different
accelerators sit at different distances from the memory tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.soc.config import SoCConfig
from repro.soc.noc import TileCoordinate


class TileType(Enum):
    """The four ESP tile kinds."""

    CPU = "cpu"
    ACCELERATOR = "accelerator"
    MEMORY = "memory"
    AUXILIARY = "auxiliary"


@dataclass(frozen=True)
class Tile:
    """One tile of the SoC grid."""

    name: str
    tile_type: TileType
    index: int
    position: TileCoordinate
    has_private_cache: bool = False


def _corner_positions(rows: int, cols: int) -> List[TileCoordinate]:
    corners = [
        TileCoordinate(0, 0),
        TileCoordinate(0, cols - 1),
        TileCoordinate(rows - 1, 0),
        TileCoordinate(rows - 1, cols - 1),
    ]
    unique: List[TileCoordinate] = []
    for corner in corners:
        if corner not in unique:
            unique.append(corner)
    return unique


def build_floorplan(config: SoCConfig) -> Tuple[List[Tile], Dict[str, Tile]]:
    """Assign every tile of ``config`` to a mesh position.

    Returns the list of tiles and a name-indexed mapping.
    """
    rows, cols = config.noc_rows, config.noc_cols
    all_positions = [TileCoordinate(r, c) for r in range(rows) for c in range(cols)]
    taken: Dict[TileCoordinate, str] = {}
    tiles: List[Tile] = []

    def claim(position: TileCoordinate, name: str) -> TileCoordinate:
        if position in taken:
            raise ConfigurationError(
                f"floorplan conflict at {position}: {taken[position]} vs {name}"
            )
        taken[position] = name
        return position

    def next_free() -> Optional[TileCoordinate]:
        for position in all_positions:
            if position not in taken:
                return position
        return None

    # Memory tiles at the corners first.
    corner_slots = _corner_positions(rows, cols)
    for index in range(config.num_mem_tiles):
        name = f"mem{index}"
        if index < len(corner_slots) and corner_slots[index] not in taken:
            position = claim(corner_slots[index], name)
        else:
            slot = next_free()
            if slot is None:
                raise ConfigurationError("ran out of mesh slots for memory tiles")
            position = claim(slot, name)
        tiles.append(Tile(name=name, tile_type=TileType.MEMORY, index=index, position=position))

    # Processor tiles along the remaining top-edge slots.
    for index in range(config.num_cpus):
        name = f"cpu{index}"
        slot = None
        for position in all_positions:
            if position.row == 0 and position not in taken:
                slot = position
                break
        if slot is None:
            slot = next_free()
        if slot is None:
            raise ConfigurationError("ran out of mesh slots for processor tiles")
        position = claim(slot, name)
        tiles.append(
            Tile(
                name=name,
                tile_type=TileType.CPU,
                index=index,
                position=position,
                has_private_cache=True,
            )
        )

    # Accelerator tiles fill the rest.
    for index in range(config.num_accelerator_tiles):
        name = f"acc{index}"
        slot = next_free()
        if slot is None:
            raise ConfigurationError("ran out of mesh slots for accelerator tiles")
        position = claim(slot, name)
        tiles.append(
            Tile(
                name=name,
                tile_type=TileType.ACCELERATOR,
                index=index,
                position=position,
                has_private_cache=config.accelerator_has_cache(index),
            )
        )

    # One auxiliary tile if room remains (UART / interrupt controller).
    slot = next_free()
    if slot is not None:
        tiles.append(
            Tile(
                name="aux0",
                tile_type=TileType.AUXILIARY,
                index=0,
                position=claim(slot, "aux0"),
            )
        )

    return tiles, {tile.name: tile for tile in tiles}
