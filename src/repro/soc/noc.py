"""2D-mesh network-on-chip model.

ESP connects all tiles with a 2D-mesh, multi-plane NoC with one-cycle hop
latency between neighbouring routers and 32-bit links.  For the purposes of
coherence-mode comparison the interesting NoC effects are:

* the distance (hop count) between an accelerator tile and the memory tile
  that owns the data it accesses, which adds latency to every transfer; and
* contention on the links entering each memory tile, which is where traffic
  from many accelerators converges (this is what degrades the cached modes
  when many accelerators run concurrently).

The model therefore assigns each tile a mesh coordinate, computes XY-routing
hop counts, and represents the ingress/egress link of each memory tile as a
shared FCFS bandwidth resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.sim.resources import BandwidthResource


@dataclass(frozen=True)
class TileCoordinate:
    """Position of a tile in the mesh."""

    row: int
    col: int

    def hops_to(self, other: "TileCoordinate") -> int:
        """Manhattan (XY-routing) hop count to ``other``."""
        return abs(self.row - other.row) + abs(self.col - other.col)


class MeshNoC:
    """A 2D-mesh NoC with per-memory-tile shared links.

    Parameters
    ----------
    rows, cols:
        Mesh dimensions.
    hop_cycles:
        Latency of one router-to-router hop.
    link_bytes_per_cycle:
        Bandwidth of one memory-tile link (32-bit planes = 4 bytes/cycle).
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        hop_cycles: float,
        link_bytes_per_cycle: float,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigurationError("mesh dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.hop_cycles = hop_cycles
        self.link_bytes_per_cycle = link_bytes_per_cycle
        self._positions: Dict[str, TileCoordinate] = {}
        self._mem_links: Dict[int, BandwidthResource] = {}
        # Route latencies are pure functions of the (static) floorplan, so
        # transfer() memoizes them per (src, dst) pair instead of paying two
        # dictionary lookups and a hop computation per DMA chunk.
        self._route_cache: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place_tile(self, tile_name: str, position: TileCoordinate) -> None:
        """Record the mesh position of a tile."""
        if position.row >= self.rows or position.col >= self.cols:
            raise ConfigurationError(
                f"tile {tile_name!r} placed outside the {self.rows}x{self.cols} mesh"
            )
        if position.row < 0 or position.col < 0:
            raise ConfigurationError("tile positions must be non-negative")
        self._positions[tile_name] = position
        self._route_cache.clear()

    def register_memory_tile(self, mem_tile: int, tile_name: str) -> None:
        """Create the shared ingress/egress link for a memory tile."""
        self._mem_links[mem_tile] = BandwidthResource(
            name=f"noc-link[{tile_name}]",
            bytes_per_cycle=self.link_bytes_per_cycle,
            latency=0.0,
        )

    def position_of(self, tile_name: str) -> TileCoordinate:
        """Return the mesh coordinate of ``tile_name``."""
        try:
            return self._positions[tile_name]
        except KeyError:
            raise ConfigurationError(f"tile {tile_name!r} has not been placed") from None

    # ------------------------------------------------------------------
    # Routing and transfer costs
    # ------------------------------------------------------------------
    def hops(self, src_tile: str, dst_tile: str) -> int:
        """Hop count between two tiles under XY routing."""
        return self.position_of(src_tile).hops_to(self.position_of(dst_tile))

    def route_latency(self, src_tile: str, dst_tile: str) -> float:
        """One-way latency of the route between two tiles."""
        return self.hops(src_tile, dst_tile) * self.hop_cycles

    def memory_link(self, mem_tile: int) -> BandwidthResource:
        """Return the shared link resource of ``mem_tile``."""
        try:
            return self._mem_links[mem_tile]
        except KeyError:
            raise ConfigurationError(
                f"memory tile {mem_tile} has no registered NoC link"
            ) from None

    def transfer(
        self,
        now: float,
        src_tile: str,
        mem_tile: int,
        mem_tile_name: str,
        nbytes: float,
    ) -> float:
        """Move ``nbytes`` between ``src_tile`` and a memory tile.

        Returns the completion time.  The transfer is charged to the memory
        tile's shared link (the contention point) and pays the route latency
        once (cut-through routing pipelines the flits across hops).
        """
        try:
            link = self._mem_links[mem_tile]
        except KeyError:
            raise ConfigurationError(
                f"memory tile {mem_tile} has no registered NoC link"
            ) from None
        key = (src_tile, mem_tile_name)
        latency = self._route_cache.get(key)
        if latency is None:
            latency = self.route_latency(src_tile, mem_tile_name)
            self._route_cache[key] = latency
        return link.serve(now, nbytes, extra_latency=latency)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def link_stats(self) -> Dict[int, Dict[str, float]]:
        """Per-memory-tile link usage counters."""
        return {tile: link.stats.as_dict() for tile, link in self._mem_links.items()}

    def reset(self) -> None:
        """Reset all link queues and counters."""
        for link in self._mem_links.values():
            link.reset()

    def placements(self) -> List[Tuple[str, TileCoordinate]]:
        """Return all tile placements (for floorplan reports)."""
        return sorted(self._positions.items())
