"""SoC performance-model substrate.

This package models the heterogeneous SoC platform the paper prototypes on
FPGA: a grid of tiles connected by a 2D-mesh NoC, private L2 caches for the
processors (and optionally for the accelerators), a last-level cache split
into partitions, and one DRAM controller per memory tile.  The model is
cycle-approximate and event-driven; its purpose is to reproduce the
*relative* behaviour of the four accelerator coherence modes.
"""

from repro.soc.address import AddressMap, Buffer, BufferSegment
from repro.soc.cache import CacheStats, RangeAccessResult, SetAssociativeCache
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.soc.config import SoCConfig, TimingConfig, soc_preset
from repro.soc.monitors import AcceleratorCounters, HardwareMonitors
from repro.soc.soc import Soc

__all__ = [
    "AddressMap",
    "Buffer",
    "BufferSegment",
    "CacheStats",
    "RangeAccessResult",
    "SetAssociativeCache",
    "CoherenceMode",
    "COHERENCE_MODES",
    "SoCConfig",
    "TimingConfig",
    "soc_preset",
    "HardwareMonitors",
    "AcceleratorCounters",
    "Soc",
]
