"""Whole-SoC assembly.

:class:`Soc` instantiates every component of the platform from a
:class:`repro.soc.config.SoCConfig`: the mesh NoC and floorplan, the
processors' private L2 caches, the accelerator tiles' optional private
caches, the LLC partitions, the DRAM controllers, the address map and
big-page allocator, the hardware monitors, and the coherence-mode datapath.
It also owns the discrete-event engine on which invocation processes run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.resources import BandwidthResource
from repro.soc.address import AddressMap, Allocator, Buffer
from repro.soc.cache import SetAssociativeCache
from repro.soc.config import SoCConfig
from repro.soc.datapath import Datapath
from repro.soc.dram import DramController
from repro.soc.llc import LLCPartition
from repro.soc.monitors import HardwareMonitors
from repro.soc.noc import MeshNoC
from repro.soc.tiles import Tile, TileType, build_floorplan


class Soc:
    """One instantiated SoC: tiles, caches, memory, NoC, monitors, datapath."""

    def __init__(self, config: SoCConfig) -> None:
        self.config = config
        timing = config.timing

        # Floorplan and NoC.
        self.tiles, self.tiles_by_name = build_floorplan(config)
        self.noc = MeshNoC(
            rows=config.noc_rows,
            cols=config.noc_cols,
            hop_cycles=timing.noc_hop_cycles,
            link_bytes_per_cycle=timing.noc_mem_link_bytes_per_cycle,
        )
        for tile in self.tiles:
            self.noc.place_tile(tile.name, tile.position)

        # Memory tiles: LLC partitions + DRAM controllers.
        self.llc_partitions: List[LLCPartition] = []
        self.dram_controllers: List[DramController] = []
        for mem_tile in range(config.num_mem_tiles):
            tile_name = f"mem{mem_tile}"
            self.noc.register_memory_tile(mem_tile, tile_name)
            self.llc_partitions.append(
                LLCPartition(
                    mem_tile=mem_tile,
                    size_bytes=config.llc_partition_bytes,
                    line_bytes=config.cache_line_bytes,
                    ways=config.llc_ways,
                    port_bytes_per_cycle=timing.llc_bytes_per_cycle,
                    lookup_cycles=timing.llc_lookup_cycles,
                )
            )
            self.dram_controllers.append(
                DramController(
                    mem_tile=mem_tile,
                    bytes_per_cycle=timing.dram_bytes_per_cycle,
                    latency_cycles=timing.dram_latency_cycles,
                    line_bytes=config.cache_line_bytes,
                )
            )

        # Private caches: one per CPU tile, and one per accelerator tile
        # that supports the fully-coherent mode.
        self.cpu_l2_caches: List[SetAssociativeCache] = [
            SetAssociativeCache(
                name=f"l2[cpu{index}]",
                size_bytes=config.l2_bytes,
                line_bytes=config.cache_line_bytes,
                ways=config.l2_ways,
            )
            for index in range(config.num_cpus)
        ]
        self.accelerator_private_caches: Dict[str, SetAssociativeCache] = {}
        self.accelerator_links: Dict[str, BandwidthResource] = {}
        for index in range(config.num_accelerator_tiles):
            name = f"acc{index}"
            if config.accelerator_has_cache(index):
                self.accelerator_private_caches[name] = SetAssociativeCache(
                    name=f"l2[{name}]",
                    size_bytes=config.accelerator_l2_bytes,
                    line_bytes=config.cache_line_bytes,
                    ways=config.l2_ways,
                )
            # Each accelerator's DMA engine injects at most one NoC plane's
            # worth of data per cycle; this private link is never shared.
            self.accelerator_links[name] = BandwidthResource(
                name=f"acc-link[{name}]",
                bytes_per_cycle=timing.acc_link_bytes_per_cycle,
                latency=0.0,
            )

        # Address space and allocation.
        self.address_map = AddressMap(
            num_mem_tiles=config.num_mem_tiles,
            partition_bytes=config.dram_partition_bytes,
        )
        self.allocator = Allocator(self.address_map)

        # Monitors, datapath, engine.
        self.monitors = HardwareMonitors(self.dram_controllers)
        self._recall_targets: Dict[str, List[SetAssociativeCache]] = {}
        self.datapath = Datapath(self)
        self.engine = Engine()

    # ------------------------------------------------------------------
    # Tile helpers
    # ------------------------------------------------------------------
    def accelerator_tiles(self) -> List[Tile]:
        """All accelerator tiles in index order."""
        tiles = [t for t in self.tiles if t.tile_type is TileType.ACCELERATOR]
        return sorted(tiles, key=lambda t: t.index)

    def cpu_tiles(self) -> List[Tile]:
        """All processor tiles in index order."""
        tiles = [t for t in self.tiles if t.tile_type is TileType.CPU]
        return sorted(tiles, key=lambda t: t.index)

    def memory_tile_name(self, mem_tile: int) -> str:
        """Name of the memory tile with the given index."""
        name = f"mem{mem_tile}"
        if name not in self.tiles_by_name:
            raise ConfigurationError(f"memory tile {mem_tile} does not exist")
        return name

    def accelerator_tile_name(self, accelerator_index: int) -> str:
        """Name of the accelerator tile with the given index."""
        name = f"acc{accelerator_index}"
        if name not in self.tiles_by_name:
            raise ConfigurationError(f"accelerator tile {accelerator_index} does not exist")
        return name

    def private_cache_of(self, acc_tile: str) -> Optional[SetAssociativeCache]:
        """Private cache of an accelerator tile (``None`` if it has none)."""
        return self.accelerator_private_caches.get(acc_tile)

    def private_caches_excluding(self, acc_tile: str) -> List[SetAssociativeCache]:
        """All private caches except the given accelerator's own cache.

        This is the set a coherent-DMA request may need to recall data from:
        the processors' L2 caches plus the other accelerators' caches.  The
        cache population is fixed at construction, so the list is memoized
        per tile (coherent DMA asks for it on every transfer).
        """
        cached = self._recall_targets.get(acc_tile)
        if cached is None:
            cached = list(self.cpu_l2_caches) + [
                cache
                for name, cache in self.accelerator_private_caches.items()
                if name != acc_tile
            ]
            self._recall_targets[acc_tile] = cached
        return cached

    # ------------------------------------------------------------------
    # Data allocation and warm-up
    # ------------------------------------------------------------------
    def allocate_buffer(self, size: int, name: str = "") -> Buffer:
        """Allocate an accelerator data buffer in big pages."""
        return self.allocator.allocate(size, name=name)

    def warm_buffer(self, buffer: Buffer, cpu_index: int = 0, dirty: bool = True) -> None:
        """Model the CPU having initialised ``buffer`` before an invocation.

        The most recently written data remains resident in the initialising
        CPU's private cache (up to its capacity) and in the LLC partitions
        owning the buffer (up to their capacity); it is dirty because the
        CPU produced it.  This reproduces the "warm data" starting condition
        of the paper's motivation experiments.
        """
        if not 0 <= cpu_index < len(self.cpu_l2_caches):
            raise ConfigurationError(f"cpu index {cpu_index} out of range")
        l2 = self.cpu_l2_caches[cpu_index]
        # Warm the LLC partition of each segment with (at most) the last
        # partition-capacity bytes of that segment.
        for segment in buffer.segments:
            partition = self.llc_partitions[segment.mem_tile]
            keep = min(segment.size, partition.size_bytes)
            partition.warm(segment.start + segment.size - keep, keep, dirty=dirty)
        # Warm the CPU L2 with the tail of the buffer (the lines written
        # most recently survive in an LRU cache).
        remaining = min(buffer.size, l2.size_bytes)
        for segment in reversed(buffer.segments):
            if remaining <= 0:
                break
            keep = min(segment.size, remaining)
            l2.install_range(segment.start + segment.size - keep, keep, dirty=dirty)
            remaining -= keep

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset_state(self, clear_allocations: bool = False) -> None:
        """Clear caches, counters, queues, and the event engine.

        With ``clear_allocations`` the big-page allocator is also reset, so
        repeated application runs do not exhaust the address space.
        """
        if clear_allocations:
            self.allocator = Allocator(self.address_map)
        for cache in self.cpu_l2_caches:
            cache.clear()
        for cache in self.accelerator_private_caches.values():
            cache.clear()
        for partition in self.llc_partitions:
            partition.reset()
        for controller in self.dram_controllers:
            controller.reset()
        for link in self.accelerator_links.values():
            link.reset()
        self.noc.reset()
        self.monitors.reset()
        self.engine = Engine()

    def describe(self) -> Dict[str, object]:
        """Summary of the configuration plus the floorplan."""
        summary = dict(self.config.describe())
        summary["tiles"] = [
            (tile.name, tile.tile_type.value, (tile.position.row, tile.position.col))
            for tile in self.tiles
        ]
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Soc(config={self.config.name!r})"
