"""DRAM controller model.

Each memory tile hosts one DRAM controller with a dedicated off-chip
channel (32 bits per cycle in the paper's platform).  The controller is a
FCFS bandwidth resource plus the off-chip access counters that the paper's
hardware monitors expose to software: Cohmeleon's reward function and all
of the evaluation figures are driven by these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.resources import BandwidthResource
from repro.units import bytes_to_lines


@dataclass
class DramCounters:
    """Off-chip access counters for one controller (in cache-line units)."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Total off-chip accesses (reads plus writes)."""
        return self.reads + self.writes

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {"reads": self.reads, "writes": self.writes, "total": self.total}


class DramController:
    """One DRAM controller and its off-chip channel."""

    def __init__(
        self,
        mem_tile: int,
        bytes_per_cycle: float,
        latency_cycles: float,
        line_bytes: int,
    ) -> None:
        self.mem_tile = mem_tile
        self.line_bytes = line_bytes
        self.channel = BandwidthResource(
            name=f"dram[{mem_tile}]",
            bytes_per_cycle=bytes_per_cycle,
            latency=latency_cycles,
        )
        self.counters = DramCounters()

    # ------------------------------------------------------------------
    def read(self, now: float, nbytes: float, bursts: int = 1) -> float:
        """Read ``nbytes`` from DRAM; returns the completion time.

        ``bursts`` is the number of separate DMA transactions the transfer
        is split into; each pays the access latency once, which is how long
        streaming bursts amortise the row-activation cost better than
        line-sized requests.
        """
        if nbytes <= 0:
            return now
        self.counters.reads += bytes_to_lines(int(nbytes), self.line_bytes)
        extra = self.channel.latency * max(bursts - 1, 0)
        return self.channel.serve(now, nbytes, extra_latency=extra)

    def write(self, now: float, nbytes: float, bursts: int = 1) -> float:
        """Write ``nbytes`` to DRAM; returns the completion time."""
        if nbytes <= 0:
            return now
        self.counters.writes += bytes_to_lines(int(nbytes), self.line_bytes)
        extra = self.channel.latency * max(bursts - 1, 0)
        return self.channel.serve(now, nbytes, extra_latency=extra)

    def write_back(self, now: float, lines: int) -> float:
        """Write back ``lines`` evicted dirty lines; returns completion time."""
        if lines <= 0:
            return now
        nbytes = lines * self.line_bytes
        self.counters.writes += lines
        return self.channel.serve(now, nbytes)

    # ------------------------------------------------------------------
    @property
    def total_accesses(self) -> int:
        """Total off-chip accesses observed by this controller."""
        return self.counters.total

    def snapshot(self) -> DramCounters:
        """Return a copy of the counters (monitors read these)."""
        return DramCounters(reads=self.counters.reads, writes=self.counters.writes)

    def reset(self) -> None:
        """Clear counters and the channel queue."""
        self.counters = DramCounters()
        self.channel.reset()
