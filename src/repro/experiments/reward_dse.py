"""Figure 6 — design-space exploration of the reward function.

Fifteen reward weightings (execution time, communication ratio, off-chip
accesses) are each trained on SoC0 and then tested on a different instance
of the evaluation application.  For every trained model — and for the
baseline policies — the figure plots the geometric mean over all phases of
the normalised execution time against the normalised off-chip accesses,
both relative to the fixed non-coherent-DMA policy.

The paper's observation: most weightings land in a near-Pareto-optimal
cluster; only the weightings dominated (> 90 %) by the off-chip-access term
degrade noticeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import CohmeleonPolicy
from repro.core.reward import RewardWeights
from repro.errors import ExperimentError
from repro.experiments.common import (
    REFERENCE_POLICY,
    ExperimentSetup,
    evaluate_policies,
    make_standard_policies,
    traffic_setup,
)
from repro.experiments.isolation import fixed_hetero_modes
from repro.experiments.phases import figure5_application, training_application
from repro.experiments.sweep import SweepRunner
from repro.utils.rng import SeededRNG
from repro.utils.stats import geometric_mean
from repro.workloads.spec import ApplicationSpec

#: The 15 reward weightings explored (percent weights for execution time,
#: communication ratio, and off-chip memory accesses).  They include the
#: two Pareto-optimal examples the paper quotes — (67.5, 7.5, 25) and
#: (12.5, 12.5, 75) — and two memory-dominated (> 90 %) outliers.
REWARD_WEIGHTINGS: Tuple[Tuple[float, float, float], ...] = (
    (100.0, 0.0, 0.0),
    (90.0, 10.0, 0.0),
    (80.0, 10.0, 10.0),
    (75.0, 0.0, 25.0),
    (67.5, 7.5, 25.0),
    (60.0, 20.0, 20.0),
    (50.0, 25.0, 25.0),
    (50.0, 0.0, 50.0),
    (40.0, 20.0, 40.0),
    (33.4, 33.3, 33.3),
    (25.0, 25.0, 50.0),
    (12.5, 12.5, 75.0),
    (10.0, 10.0, 80.0),
    (5.0, 0.0, 95.0),
    (2.5, 2.5, 95.0),
)


@dataclass
class RewardPoint:
    """One point of the Figure 6 scatter plot."""

    label: str
    weights: Optional[Tuple[float, float, float]]
    norm_exec: float
    norm_mem: float
    is_cohmeleon: bool


@dataclass
class RewardDseResult:
    """All points of the Figure 6 scatter plot."""

    setup_name: str
    points: List[RewardPoint]

    def cohmeleon_points(self) -> List[RewardPoint]:
        """Only the learned-policy points."""
        return [point for point in self.points if point.is_cohmeleon]

    def baseline_points(self) -> List[RewardPoint]:
        """Only the baseline-policy points."""
        return [point for point in self.points if not point.is_cohmeleon]

    def pareto_front(self) -> List[RewardPoint]:
        """Points not dominated in (exec, mem) by any other point."""
        front: List[RewardPoint] = []
        for candidate in self.points:
            dominated = any(
                other.norm_exec <= candidate.norm_exec
                and other.norm_mem <= candidate.norm_mem
                and (other.norm_exec < candidate.norm_exec or other.norm_mem < candidate.norm_mem)
                for other in self.points
            )
            if not dominated:
                front.append(candidate)
        return front


def _geomean_normalised(
    evaluation_per_phase: Dict[str, float], reference_per_phase: Dict[str, float]
) -> float:
    ratios = []
    for phase_name, reference_value in reference_per_phase.items():
        value = evaluation_per_phase.get(phase_name, 0.0)
        if reference_value > 0:
            ratios.append(value / reference_value)
        elif value == 0:
            ratios.append(1.0)
    return geometric_mean(ratios) if ratios else 0.0


def run_reward_dse(
    setup: Optional[ExperimentSetup] = None,
    weightings: Sequence[Tuple[float, float, float]] = REWARD_WEIGHTINGS,
    training_iterations: int = 10,
    baseline_kinds: Sequence[str] = (
        "fixed-non-coh-dma",
        "fixed-llc-coh-dma",
        "fixed-coh-dma",
        "fixed-full-coh",
        "rand",
        "fixed-hetero",
        "manual",
    ),
    test_app: Optional[ApplicationSpec] = None,
    seed: int = 13,
    runner: Optional[SweepRunner] = None,
) -> RewardDseResult:
    """Run the Figure 6 design-space exploration."""
    if not weightings:
        raise ExperimentError("at least one reward weighting is required")
    setup = setup if setup is not None else traffic_setup("SoC0", seed=seed)
    test_app = test_app if test_app is not None else figure5_application(setup, seed=seed)
    train_app = training_application(setup, seed=seed + 1)

    hetero = (
        fixed_hetero_modes(setup, runner=runner)
        if "fixed-hetero" in baseline_kinds
        else None
    )

    # Baselines plus one Cohmeleon policy per reward weighting.
    policies = make_standard_policies(baseline_kinds, seed, fixed_hetero_modes=hetero)
    for index, (exec_pct, comm_pct, mem_pct) in enumerate(weightings):
        weights = RewardWeights.from_percentages(exec_pct, comm_pct, mem_pct)
        label = f"cohmeleon[{exec_pct:g}/{comm_pct:g}/{mem_pct:g}]"
        policies[label] = CohmeleonPolicy(
            weights=weights, rng=SeededRNG(seed).spawn("reward-dse", index)
        )

    evaluations = evaluate_policies(
        setup,
        policies,
        test_app,
        training_app=train_app,
        training_iterations=training_iterations,
        runner=runner,
    )
    reference = evaluations[REFERENCE_POLICY]

    points: List[RewardPoint] = []
    for name, evaluation in evaluations.items():
        is_cohmeleon = name.startswith("cohmeleon")
        weights = None
        if is_cohmeleon:
            index = list(policies).index(name) - len(baseline_kinds)
            weights = tuple(weightings[index]) if 0 <= index < len(weightings) else None
        points.append(
            RewardPoint(
                label=name,
                weights=weights,
                norm_exec=_geomean_normalised(
                    evaluation.per_phase_exec, reference.per_phase_exec
                ),
                norm_mem=_geomean_normalised(
                    evaluation.per_phase_ddr, reference.per_phase_ddr
                ),
                is_cohmeleon=is_cohmeleon,
            )
        )
    return RewardDseResult(setup_name=setup.name, points=points)
