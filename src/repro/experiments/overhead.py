"""Cohmeleon runtime-overhead measurement (Section 6, "Cohmeleon Overhead").

The paper measures the fraction of the total execution time spent in
Cohmeleon's status tracking, decision making, and monitor reads: between
3 % and 6 % for small (16 KB) workloads, dropping below 0.1 % for large
(4 MB) workloads.  This harness reproduces that measurement by running
single-accelerator invocations across a footprint sweep under the Cohmeleon
policy and reporting the ratio of the policy's overhead cycles to the total
invocation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.accelerators.descriptor import AcceleratorDescriptor
from repro.core.policies import CohmeleonPolicy
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentSetup, build_runtime, motivation_setup
from repro.experiments.sweep import Job, SweepRunner, SweepSpec, run_spec
from repro.units import KB, MB
from repro.utils.rng import SeededRNG
from repro.utils.stats import mean
from repro.workloads.runner import run_application
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec

#: Footprints swept by the overhead measurement.
OVERHEAD_FOOTPRINTS = (16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB)


@dataclass
class OverheadMeasurement:
    """Overhead fraction at one workload footprint."""

    footprint_bytes: int
    mean_total_cycles: float
    mean_overhead_cycles: float

    @property
    def overhead_fraction(self) -> float:
        """Fraction of the total execution time spent in the runtime."""
        if self.mean_total_cycles <= 0:
            return 0.0
        return self.mean_overhead_cycles / self.mean_total_cycles


def _overhead_job(params: Dict[str, object], rng) -> Dict[str, object]:
    """Sweep job: one (footprint, accelerator) point of the overhead sweep."""
    setup: ExperimentSetup = params["setup"]  # type: ignore[assignment]
    accelerator: AcceleratorDescriptor = params["accelerator"]  # type: ignore[assignment]
    footprint = int(params["footprint_bytes"])  # type: ignore[arg-type]
    seed = int(params["seed"])  # type: ignore[arg-type]
    invocations_per_point = int(params["invocations_per_point"])  # type: ignore[arg-type]

    single = ExperimentSetup(
        name=f"{setup.name}-overhead",
        soc_config=setup.soc_config,
        accelerators=[accelerator],
        seed=setup.seed,
    )
    policy = CohmeleonPolicy(rng=SeededRNG(seed).spawn("overhead", accelerator.name))
    soc, runtime = build_runtime(single, policy)
    app = ApplicationSpec(
        name=f"overhead-{accelerator.name}-{footprint}",
        phases=(
            PhaseSpec(
                name="overhead",
                threads=(
                    ThreadSpec(
                        thread_id="t0",
                        accelerator_chain=(accelerator.name,),
                        footprint_bytes=footprint,
                        loop_count=invocations_per_point,
                    ),
                ),
            ),
        ),
    )
    result = run_application(soc, runtime, app)
    return {
        "totals": [invocation.total_cycles for invocation in result.invocations],
        "overheads": [
            invocation.policy_overhead_cycles for invocation in result.invocations
        ],
    }


def run_overhead_experiment(
    setup: Optional[ExperimentSetup] = None,
    footprints: Sequence[int] = OVERHEAD_FOOTPRINTS,
    accelerators: Optional[Sequence[AcceleratorDescriptor]] = None,
    invocations_per_point: int = 3,
    seed: int = 31,
    runner: Optional[SweepRunner] = None,
) -> List[OverheadMeasurement]:
    """Measure Cohmeleon's runtime overhead across workload footprints."""
    if invocations_per_point <= 0:
        raise ExperimentError("invocations_per_point must be positive")
    setup = setup if setup is not None else motivation_setup(line_bytes=256)
    accelerators = (
        list(accelerators) if accelerators is not None else list(setup.accelerators)[:4]
    )

    jobs = [
        Job(
            # The index keeps keys unique when an accelerator appears twice.
            key=f"{footprint}/{index}-{accelerator.name}",
            fn=_overhead_job,
            params={
                "setup": setup,
                "accelerator": accelerator,
                "footprint_bytes": footprint,
                "seed": seed,
                "invocations_per_point": invocations_per_point,
            },
            seed=seed,
        )
        for footprint in footprints
        for index, accelerator in enumerate(accelerators)
    ]
    spec = SweepSpec(name=f"overhead-{setup.name}", jobs=jobs)
    outcome = run_spec(spec, runner)

    measurements: List[OverheadMeasurement] = []
    for footprint in footprints:
        totals: List[float] = []
        overheads: List[float] = []
        for index, accelerator in enumerate(accelerators):
            payload = outcome[f"{footprint}/{index}-{accelerator.name}"]
            totals.extend(float(value) for value in payload["totals"])
            overheads.extend(float(value) for value in payload["overheads"])
        measurements.append(
            OverheadMeasurement(
                footprint_bytes=footprint,
                mean_total_cycles=mean(totals),
                mean_overhead_cycles=mean(overheads),
            )
        )
    return measurements


def overhead_table(measurements: Sequence[OverheadMeasurement]) -> Dict[str, float]:
    """Return ``{footprint_label: overhead_percent}`` for reporting."""
    table: Dict[str, float] = {}
    for measurement in measurements:
        if measurement.footprint_bytes >= MB:
            label = f"{measurement.footprint_bytes // MB}MB"
        else:
            label = f"{measurement.footprint_bytes // KB}KB"
        table[label] = measurement.overhead_fraction * 100.0
    return table
