"""Figure 5 — phase analysis of the evaluation application on SoC0.

Four phases of the evaluation application, chosen to differ in thread count
and workload size (6 threads with Large workloads, 3 threads with Variable
workloads, 10 threads with Small workloads, and 4 threads with Medium
workloads), run under all eight coherence policies.  Per phase, execution
time and off-chip memory accesses are normalised to the fixed
non-coherent-DMA policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.common import (
    REFERENCE_POLICY,
    STANDARD_POLICY_KINDS,
    ExperimentSetup,
    PolicyEvaluation,
    evaluate_policies,
    make_standard_policies,
    traffic_setup,
)
from repro.experiments.isolation import fixed_hetero_modes
from repro.experiments.sweep import SweepRunner
from repro.utils.rng import SeededRNG
from repro.workloads.generator import ApplicationGenerator, GeneratorConfig
from repro.workloads.sizes import WorkloadSizeClass, footprint_for_class
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec

#: The four phases of Figure 5: (name, thread count, size class or None for
#: per-thread variable sizes).
FIGURE5_PHASES = (
    ("6 Threads: Large", 6, WorkloadSizeClass.LARGE),
    ("3 Threads: Variable", 3, None),
    ("10 Threads: Small", 10, WorkloadSizeClass.SMALL),
    ("4 Threads: Medium", 4, WorkloadSizeClass.MEDIUM),
)


def figure5_application(
    setup: ExperimentSetup,
    loops_per_thread: int = 2,
    chain_length: int = 2,
    seed: int = 7,
) -> ApplicationSpec:
    """Build the four-phase Figure 5 application for ``setup``."""
    rng = SeededRNG(seed).spawn("fig5", setup.name)
    accelerator_names = [descriptor.name for descriptor in setup.accelerators]
    variable_classes = (
        WorkloadSizeClass.SMALL,
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.EXTRA_LARGE,
    )
    phases: List[PhaseSpec] = []
    for phase_name, num_threads, size_class in FIGURE5_PHASES:
        threads = []
        for index in range(num_threads):
            thread_class = size_class or variable_classes[index % len(variable_classes)]
            footprint = footprint_for_class(thread_class, setup.soc_config, rng=rng)
            chain = tuple(
                rng.choice(accelerator_names) for _ in range(chain_length)
            )
            threads.append(
                ThreadSpec(
                    thread_id=f"{phase_name}-{index}",
                    accelerator_chain=chain,
                    footprint_bytes=footprint,
                    loop_count=loops_per_thread,
                    cpu_index=index % setup.soc_config.num_cpus,
                )
            )
        phases.append(PhaseSpec(name=phase_name, threads=tuple(threads)))
    return ApplicationSpec(name=f"figure5-{setup.name}", phases=tuple(phases))


def training_application(
    setup: ExperimentSetup, seed: int = 11, num_phases: int = 5
) -> ApplicationSpec:
    """A randomly configured training instance for ``setup``.

    The instance is deliberately diverse — many phases, a wide range of
    thread counts, and all workload-size classes — so that training visits
    as much of the state space as possible (the paper's training instances
    contain several hundred invocations per iteration and are "designed to
    be as diverse as possible in terms of operating conditions").
    """
    generator = ApplicationGenerator(
        soc_config=setup.soc_config,
        accelerator_names=[descriptor.name for descriptor in setup.accelerators],
        generator_config=GeneratorConfig(
            num_phases=num_phases,
            min_threads=2,
            max_threads=min(10, setup.soc_config.num_accelerator_tiles),
            min_chain_length=1,
            max_chain_length=3,
            min_loops=1,
            max_loops=2,
        ),
        seed=seed,
    )
    return generator.generate(instance=0)


@dataclass
class PhaseAnalysisResult:
    """Normalised per-phase results of the Figure 5 experiment."""

    setup_name: str
    phase_names: List[str]
    #: ``{phase: {policy: {"exec": x, "mem": y}}}`` normalised to the
    #: fixed non-coherent-DMA policy.
    table: Dict[str, Dict[str, Dict[str, float]]]
    evaluations: Dict[str, PolicyEvaluation]


def run_phase_analysis(
    setup: Optional[ExperimentSetup] = None,
    policy_kinds: Sequence[str] = STANDARD_POLICY_KINDS,
    training_iterations: int = 10,
    loops_per_thread: int = 2,
    seed: int = 7,
    runner: Optional[SweepRunner] = None,
) -> PhaseAnalysisResult:
    """Run the Figure 5 experiment and return the normalised table."""
    setup = setup if setup is not None else traffic_setup("SoC0", seed=seed)
    test_app = figure5_application(setup, loops_per_thread=loops_per_thread, seed=seed)
    train_app = training_application(setup, seed=seed + 1)

    hetero_modes = (
        fixed_hetero_modes(setup, runner=runner)
        if "fixed-hetero" in policy_kinds
        else None
    )
    policies = make_standard_policies(policy_kinds, seed, fixed_hetero_modes=hetero_modes)
    evaluations = evaluate_policies(
        setup,
        policies,
        test_app,
        training_app=train_app,
        training_iterations=training_iterations,
        runner=runner,
    )
    if REFERENCE_POLICY not in evaluations:
        raise ExperimentError(
            f"the reference policy {REFERENCE_POLICY!r} must be part of the sweep"
        )

    reference = evaluations[REFERENCE_POLICY]
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for phase in test_app.phases:
        ref_exec = max(reference.per_phase_exec[phase.name], 1e-9)
        ref_mem = reference.per_phase_ddr[phase.name]
        table[phase.name] = {}
        for name, evaluation in evaluations.items():
            exec_cycles = evaluation.per_phase_exec[phase.name]
            mem = evaluation.per_phase_ddr[phase.name]
            table[phase.name][name] = {
                "exec": exec_cycles / ref_exec,
                "mem": (mem / ref_mem) if ref_mem > 0 else (0.0 if mem == 0 else 1.0),
            }
    return PhaseAnalysisResult(
        setup_name=setup.name,
        phase_names=[phase.name for phase in test_app.phases],
        table=table,
        evaluations=evaluations,
    )
