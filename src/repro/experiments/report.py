"""Plain-text reports for every experiment.

The benchmark harnesses print these reports so that ``bench_output.txt``
contains, for every figure and table of the paper, the same rows or series
the paper plots (normalised execution time and off-chip memory accesses per
configuration and policy).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence

from repro.experiments.breakdown import BreakdownResult
from repro.experiments.isolation import IsolationMeasurement, normalize_isolation
from repro.experiments.overhead import OverheadMeasurement, overhead_table
from repro.experiments.parallel import ParallelMeasurement, normalize_parallel
from repro.experiments.phases import PhaseAnalysisResult
from repro.experiments.reward_dse import RewardDseResult
from repro.experiments.socs import SocComparisonResult
from repro.experiments.summary import HeadlineSummary
from repro.experiments.training import TrainingStudyResult
from repro.soc.coherence import COHERENCE_MODES
from repro.utils.tables import format_table

if TYPE_CHECKING:  # imported lazily to keep repro.models optional here
    from repro.models.transfer import TransferMatrix


def report_isolation(measurements: Sequence[IsolationMeasurement]) -> str:
    """Figure 2 report: per accelerator and size, normalised exec/mem per mode."""
    normalised = normalize_isolation(measurements)
    headers = ["accelerator", "size"]
    for mode in COHERENCE_MODES:
        headers.extend([f"{mode.label} time", f"{mode.label} mem"])
    rows: List[List[object]] = []
    for (accelerator, size), row in sorted(normalised.items()):
        cells: List[object] = [accelerator, size]
        for mode in COHERENCE_MODES:
            entry = row.get(mode.label, {"exec": float("nan"), "mem": float("nan")})
            cells.extend([entry["exec"], entry["mem"]])
        rows.append(cells)
    return format_table(headers, rows, title="Figure 2 — accelerators in isolation (normalised to non-coh-dma)")


def report_parallel(measurements: Sequence[ParallelMeasurement]) -> str:
    """Figure 3 report: normalised exec/mem per mode and concurrency level."""
    table = normalize_parallel(measurements)
    headers = ["active accelerators"]
    for mode in COHERENCE_MODES:
        headers.extend([f"{mode.label} time", f"{mode.label} mem"])
    rows: List[List[object]] = []
    for count in sorted(table):
        cells: List[object] = [count]
        for mode in COHERENCE_MODES:
            entry = table[count].get(mode.label, {"exec": float("nan"), "mem": float("nan")})
            cells.extend([entry["exec"], entry["mem"]])
        rows.append(cells)
    return format_table(
        headers, rows, title="Figure 3 — parallel accelerators (normalised to 1x non-coh-dma)"
    )


def report_phases(result: PhaseAnalysisResult) -> str:
    """Figure 5 report: per phase, normalised exec/mem per policy."""
    headers = ["phase", "policy", "norm exec time", "norm off-chip accesses"]
    rows: List[List[object]] = []
    for phase_name in result.phase_names:
        for policy_name, entry in result.table[phase_name].items():
            rows.append([phase_name, policy_name, entry["exec"], entry["mem"]])
    return format_table(
        headers, rows, title=f"Figure 5 — phase analysis on {result.setup_name}"
    )


def report_reward_dse(result: RewardDseResult) -> str:
    """Figure 6 report: the scatter points of the reward-function DSE."""
    headers = ["policy / reward weights", "norm exec time", "norm off-chip accesses"]
    rows = [
        [point.label, point.norm_exec, point.norm_mem]
        for point in sorted(result.points, key=lambda p: (not p.is_cohmeleon, p.label))
    ]
    return format_table(
        headers, rows, title=f"Figure 6 — reward-function DSE on {result.setup_name}"
    )


def report_breakdown(result: BreakdownResult) -> str:
    """Figure 7 report: selection frequency of each mode per policy and size."""
    headers = ["policy", "workload size"] + [mode.label for mode in COHERENCE_MODES]
    rows: List[List[object]] = []
    for policy_name, breakdown in result.breakdowns.items():
        for category, frequencies in breakdown.frequencies.items():
            rows.append(
                [policy_name, category]
                + [100.0 * frequencies.get(mode.label, 0.0) for mode in COHERENCE_MODES]
            )
    return format_table(
        headers,
        rows,
        title="Figure 7 — coherence-mode selection frequency (%)",
    )


def report_training(result: TrainingStudyResult) -> str:
    """Figure 8 report: per-iteration normalised performance per budget."""
    headers = ["total iterations", "iteration", "norm exec time", "norm off-chip accesses"]
    rows: List[List[object]] = []
    for budget, curve in sorted(result.curves.items()):
        for point in curve.points:
            rows.append([budget, point.iteration, point.norm_exec, point.norm_mem])
    return format_table(
        headers, rows, title=f"Figure 8 — performance over training iterations ({result.setup_name})"
    )


def report_socs(result: SocComparisonResult) -> str:
    """Figure 9 report: per SoC, normalised exec/mem per policy."""
    headers = ["SoC", "policy", "norm exec time", "norm off-chip accesses"]
    rows = [
        [point.soc_label, point.policy_name, point.norm_exec, point.norm_mem]
        for point in result.points
    ]
    return format_table(headers, rows, title="Figure 9 — additional SoC configurations")


def report_headline(summary: HeadlineSummary) -> str:
    """Section 6 headline report (paper: 38% speedup, 66% fewer accesses)."""
    rows = [
        ["average speedup vs fixed policies (%)", summary.speedup_vs_fixed * 100.0],
        ["average off-chip access reduction vs fixed policies (%)", summary.mem_reduction_vs_fixed * 100.0],
        ["execution time vs manual heuristic (ratio)", summary.exec_vs_manual],
        ["off-chip accesses vs manual heuristic (ratio)", summary.mem_vs_manual],
    ]
    per_soc = [
        [f"speedup on {soc} (%)", value * 100.0]
        for soc, value in sorted(summary.per_soc_speedup.items())
    ]
    return format_table(
        ["metric", "value"], rows + per_soc, title="Section 6 — headline summary"
    )


def report_overhead(measurements: Sequence[OverheadMeasurement]) -> str:
    """Overhead report: Cohmeleon runtime overhead per workload footprint."""
    table = overhead_table(measurements)
    rows = [[label, value] for label, value in table.items()]
    return format_table(
        ["workload footprint", "overhead (% of execution time)"],
        rows,
        title="Section 6 — Cohmeleon runtime overhead",
    )


def report_transfer_matrix(matrix: "TransferMatrix") -> str:
    """Robustness/transfer report: models x scenarios, normalised per column.

    One row per (model, scenario) cell with execution time and off-chip
    accesses normalised to the reference policy run on the same scenario;
    the last column marks transfer cells (model evaluated off its
    training scenario) versus native ones.
    """
    rows: List[List[object]] = []
    for cell in matrix.cells:
        rows.append(
            [
                cell.model,
                cell.scenario,
                f"{cell.norm_exec:.3f}",
                f"{cell.norm_mem:.3f}",
                cell.digest[:12],
                "transfer" if cell.transfer else "native",
            ]
        )
    return format_table(
        ["model", "scenario", "norm exec", "norm mem", "cell digest", "kind"],
        rows,
        title=(
            f"Transfer matrix — {len(matrix.models)} models x "
            f"{len(matrix.scenarios)} scenarios "
            f"(normalised to {matrix.reference_policy})"
        ),
    )


def report_mapping(title: str, mapping: Mapping[str, float]) -> str:
    """Generic two-column report."""
    return format_table(["key", "value"], sorted(mapping.items()), title=title)
