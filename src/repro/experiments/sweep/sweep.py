"""Declarative sweep grids: jobs, fingerprints, and the seeding contract.

A :class:`Job` is one independently executable cell of an experiment grid —
for example one ``(accelerator, size, mode)`` point of the Figure 2 sweep or
one ``(SoC, policy)`` evaluation of Figure 9.  Jobs carry a module-level
callable plus a picklable parameter mapping, so they can cross process
boundaries, and every job has a stable *fingerprint*: a SHA-256 digest of
the callable's dotted path, a canonical rendering of the parameters, and
the job seed.

The fingerprint is the backbone of two guarantees:

* **Determinism** — a job's RNG stream is derived as
  ``SeededRNG(seed).spawn("sweep-job", fingerprint)``, so the randomness a
  job sees depends only on *what* the job is, never on which worker runs it
  or in which order.  Running a :class:`SweepSpec` serially, with N
  workers, or with its jobs shuffled produces bit-identical results.
* **Caching** — the on-disk result cache (:mod:`repro.experiments.sweep.cache`)
  is keyed by the fingerprint, so a payload is reused only when the
  function, every parameter, and the seed all match.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, is_dataclass
from enum import Enum
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SweepError
from repro.utils.rng import SeededRNG

#: Signature every job function follows: ``fn(params, rng) -> payload`` where
#: the payload is a JSON-serializable dictionary.
JobFunction = Callable[[Dict[str, object], SeededRNG], Dict[str, object]]


# ----------------------------------------------------------------------
# Canonical parameter rendering
# ----------------------------------------------------------------------

def canonicalize(value: object) -> object:
    """Render ``value`` as a JSON-able structure stable across runs.

    Handles the types that appear in experiment parameters: primitives,
    enums, sequences, mappings, dataclasses (recursed field by field, so
    their reprs never leak memory addresses), :class:`SeededRNG` (identified
    by its seed), numpy arrays, callables (by dotted path), and plain
    objects (by class name plus canonicalized ``vars()``).  Anything else
    raises :class:`SweepError` rather than silently producing an unstable
    fingerprint.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() round-trips floats exactly and is stable across platforms.
        return {"__float__": repr(value)}
    if isinstance(value, Enum):
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if isinstance(value, SeededRNG):
        # The construction seed alone is not enough: an RNG that has already
        # been drawn from must not fingerprint like a fresh one, or a cached
        # payload could be reused for a job that would execute differently.
        state_digest = hashlib.sha256(repr(value.state()).encode("utf-8")).hexdigest()
        return {"__rng__": value.seed, "state": state_digest}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__qualname__,
            "fields": {
                f.name: canonicalize(getattr(value, f.name)) for f in fields(value)
            },
        }
    if isinstance(value, Mapping):
        items = [
            [canonicalize(key), canonicalize(item)] for key, item in value.items()
        ]
        items.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return {"__mapping__": items}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        rendered = [canonicalize(item) for item in value]
        rendered.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return {"__set__": rendered}
    try:  # numpy arrays/scalars (the Q-table stores its values in one)
        import numpy as np

        if isinstance(value, np.ndarray):
            return {"__ndarray__": canonicalize(value.tolist())}
        if isinstance(value, np.generic):
            return canonicalize(value.item())
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    if callable(value) and hasattr(value, "__qualname__"):
        return {"__callable__": f"{value.__module__}.{value.__qualname__}"}
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {
            "__object__": type(value).__qualname__,
            "state": canonicalize(dict(state)),
        }
    raise SweepError(
        f"cannot canonicalize {type(value).__qualname__!r} for a job fingerprint; "
        "use primitives, dataclasses, enums, or objects with a __dict__"
    )


def _axis_label(value: object) -> str:
    """A short human-readable label for one axis value of a grid."""
    label = getattr(value, "label", None)
    if isinstance(label, str):
        return label
    if isinstance(value, Enum):
        return str(value.value) if isinstance(value.value, str) else value.name
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return str(value)


# ----------------------------------------------------------------------
# Jobs and sweep specifications
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Job:
    """One independently executable cell of a sweep grid."""

    key: str
    fn: JobFunction
    params: Mapping[str, object] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.key:
            raise SweepError("job key must be non-empty")
        if not callable(self.fn):
            raise SweepError(f"job {self.key}: fn must be callable")
        module = getattr(self.fn, "__module__", None)
        qualname = getattr(self.fn, "__qualname__", "")
        if module is None or "<locals>" in qualname or "<lambda>" in qualname:
            raise SweepError(
                f"job {self.key}: fn must be a module-level function so it can "
                "be pickled into worker processes"
            )

    def fingerprint(self) -> str:
        """Stable identity of this job: function, parameters, and seed.

        Parameters whose names start with an underscore are *transport-only*:
        they are delivered to the job function but excluded from the
        fingerprint.  They exist for delivery details that do not define
        the computation — e.g. the filesystem path a digest-pinned
        artifact is re-loaded from — so relocating such a file never
        invalidates the cache.  A transport-only parameter must never
        change the result; anything content-bearing belongs in a normal
        (fingerprinted) parameter, like the artifact digest that
        accompanies such a path.

        Memoized: canonicalizing a large parameter graph is not free, and
        the fingerprint is needed for the cache lookup, the cache write,
        and the RNG derivation.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            identity = {
                key: value
                for key, value in dict(self.params).items()
                if not key.startswith("_")
            }
            document = {
                "fn": f"{self.fn.__module__}.{self.fn.__qualname__}",
                "params": canonicalize(identity),
                "seed": self.seed,
            }
            text = json.dumps(document, sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(text.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def derive_rng(self) -> SeededRNG:
        """The job's private RNG stream (the sweep seeding contract)."""
        return SeededRNG(self.seed).spawn("sweep-job", self.fingerprint())

    def execute(self) -> Dict[str, object]:
        """Run the job in the current process and return its payload.

        The fn receives a deep copy of the params, so a fn that mutates its
        inputs (training a policy, say) behaves identically whether the job
        runs in-process or was pickled into a worker, and a spec can be run
        repeatedly with identical results.
        """
        return self.fn(copy.deepcopy(dict(self.params)), self.derive_rng())


@dataclass
class SweepSpec:
    """An ordered collection of jobs forming one experiment grid."""

    name: str
    jobs: List[Job] = field(default_factory=list)

    def __post_init__(self) -> None:
        keys = [job.key for job in self.jobs]
        if len(keys) != len(set(keys)):
            duplicates = sorted({key for key in keys if keys.count(key) > 1})
            raise SweepError(f"sweep {self.name}: duplicate job keys {duplicates}")

    def __len__(self) -> int:
        return len(self.jobs)

    def keys(self) -> List[str]:
        """Job keys in grid order."""
        return [job.key for job in self.jobs]

    def shuffled(self, rng: Optional[SeededRNG] = None) -> "SweepSpec":
        """A copy of this spec with its jobs reordered (results must not change)."""
        jobs = list(self.jobs)
        (rng if rng is not None else SeededRNG(0)).shuffle(jobs)
        return SweepSpec(name=self.name, jobs=jobs)

    @classmethod
    def from_grid(
        cls,
        name: str,
        fn: JobFunction,
        axes: Mapping[str, Sequence[object]],
        common_params: Optional[Mapping[str, object]] = None,
        seed: int = 0,
    ) -> "SweepSpec":
        """Build a spec from the cartesian product of ``axes``.

        Every combination becomes one job whose params are ``common_params``
        plus the axis values, keyed ``"label0/label1/..."`` in axis order.
        """
        if not axes:
            raise SweepError(f"sweep {name}: at least one axis is required")
        axis_names = list(axes)
        jobs: List[Job] = []
        for combo in itertools.product(*(axes[axis] for axis in axis_names)):
            params: Dict[str, object] = dict(common_params or {})
            params.update(zip(axis_names, combo))
            key = "/".join(_axis_label(value) for value in combo)
            jobs.append(Job(key=key, fn=fn, params=params, seed=seed))
        return cls(name=name, jobs=jobs)
