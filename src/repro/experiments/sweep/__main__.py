"""``python -m repro.experiments.sweep`` — the sweep CLI under its own name.

Identical to ``python -m repro.experiments``; this alias exists so the
distributed subcommands read naturally on worker hosts::

    python -m repro.experiments.sweep worker --coordinator http://host:8733
    python -m repro.experiments.sweep coordinate socs --port 8733
"""

import sys

from repro.experiments.sweep.cli import main

if __name__ == "__main__":
    sys.exit(main())
