"""Command-line entry point: run any figure harness through the sweep runner.

Examples
--------
::

    python -m repro.experiments socs --workers 8
    python -m repro.experiments isolation --workers 4 --cache-dir .sweep-cache
    python -m repro.experiments phases --no-cache --full

Every figure runs at a reduced ("quick") scale by default so a laptop run
finishes in minutes; ``--full`` switches to the paper-scale grids.  Results
are cached on disk (``--cache-dir``, default ``.sweep-cache``) keyed by job
fingerprints, so re-running a figure re-simulates only the jobs whose
configuration or seed changed; ``--no-cache`` disables the cache entirely.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, TextIO

from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.pool import SweepRunner, autodetect_workers

#: Figure name -> (description, runner function).  Each runner function
#: takes the parsed arguments plus a SweepRunner and returns a report string.
FigureRunner = Callable[[argparse.Namespace, SweepRunner], str]


def _fig_isolation(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.accelerators.library import accelerator_by_name
    from repro.experiments.common import motivation_setup
    from repro.experiments.isolation import run_isolation_experiment
    from repro.experiments.report import report_isolation
    from repro.units import KB, MB

    setup = motivation_setup(line_bytes=256)
    if args.full:
        accelerators, sizes = None, None
    else:
        accelerators = [accelerator_by_name(name) for name in ("FFT", "Sort", "SPMV")]
        sizes = {"Small": 16 * KB, "Medium": 256 * KB, "Large": 2 * MB}
    measurements = run_isolation_experiment(
        setup, accelerators=accelerators, sizes=sizes, runner=runner
    )
    return report_isolation(measurements)


def _fig_parallel(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.parallel import parallel_setup, run_parallel_experiment
    from repro.experiments.report import report_parallel

    counts = (1, 4, 8, 12) if args.full else (1, 4, 12)
    invocations = 4 if args.full else 2
    measurements = run_parallel_experiment(
        parallel_setup(line_bytes=256),
        counts=counts,
        invocations_per_thread=invocations,
        runner=runner,
    )
    return report_parallel(measurements)


def _fig_phases(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.phases import run_phase_analysis
    from repro.experiments.report import report_phases

    result = run_phase_analysis(
        training_iterations=10 if args.full else 3,
        seed=args.seed if args.seed is not None else 7,
        runner=runner,
    )
    return report_phases(result)


def _fig_reward_dse(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.report import report_reward_dse
    from repro.experiments.reward_dse import REWARD_WEIGHTINGS, run_reward_dse

    weightings = REWARD_WEIGHTINGS if args.full else REWARD_WEIGHTINGS[::3]
    result = run_reward_dse(
        weightings=weightings,
        training_iterations=10 if args.full else 3,
        seed=args.seed if args.seed is not None else 13,
        runner=runner,
    )
    return report_reward_dse(result)


def _fig_breakdown(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.breakdown import run_breakdown_experiment
    from repro.experiments.report import report_breakdown

    result = run_breakdown_experiment(
        training_iterations=10 if args.full else 3,
        seed=args.seed if args.seed is not None else 17,
        runner=runner,
    )
    return report_breakdown(result)


def _fig_training(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.report import report_training
    from repro.experiments.training import run_training_study

    budgets = (10, 30, 50) if args.full else (5, 10)
    result = run_training_study(
        budgets=budgets,
        seed=args.seed if args.seed is not None else 23,
        runner=runner,
    )
    return report_training(result)


def _fig_socs(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.report import report_headline, report_socs
    from repro.experiments.socs import FIGURE9_SOC_LABELS, run_soc_comparison
    from repro.experiments.summary import summarize_headline

    labels = (
        FIGURE9_SOC_LABELS
        if args.full
        else ("SoC0-Streaming", "SoC1", "SoC2", "SoC4", "SoC6")
    )
    comparison = run_soc_comparison(
        labels=labels,
        training_iterations=10 if args.full else 4,
        seed=args.seed if args.seed is not None else 29,
        runner=runner,
    )
    summary = summarize_headline(comparison)
    return report_socs(comparison) + "\n\n" + report_headline(summary)


def _fig_overhead(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.overhead import OVERHEAD_FOOTPRINTS, run_overhead_experiment
    from repro.experiments.report import report_overhead

    footprints = OVERHEAD_FOOTPRINTS if args.full else OVERHEAD_FOOTPRINTS[::2]
    measurements = run_overhead_experiment(
        footprints=footprints,
        invocations_per_point=3 if args.full else 2,
        seed=args.seed if args.seed is not None else 31,
        runner=runner,
    )
    return report_overhead(measurements)


FIGURES: Dict[str, FigureRunner] = {
    "isolation": _fig_isolation,
    "parallel": _fig_parallel,
    "phases": _fig_phases,
    "reward_dse": _fig_reward_dse,
    "breakdown": _fig_breakdown,
    "training": _fig_training,
    "socs": _fig_socs,
    "overhead": _fig_overhead,
}


class _StatsRunner(SweepRunner):
    """A SweepRunner that accumulates per-spec execution statistics."""

    def __init__(self, workers: Optional[int], cache: Optional[ResultCache]) -> None:
        super().__init__(workers=workers, cache=cache)
        self.total_jobs = 0
        self.total_hits = 0
        self.total_executed = 0
        self.max_workers_used = 1

    def run(self, spec):
        result = super().run(spec)
        self.total_jobs += len(result)
        self.total_hits += result.cache_hits
        self.total_executed += result.executed
        self.max_workers_used = max(self.max_workers_used, result.workers_used)
        return result


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run a figure harness through the parallel sweep runner.",
    )
    parser.add_argument("figure", choices=sorted(FIGURES), help="figure to regenerate")
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes (default: one per CPU; 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".sweep-cache",
        metavar="DIR",
        help="on-disk result cache location (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the figure's default seed"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper-scale grid instead of the reduced quick grid",
    )
    return parser


def main(argv: Optional[List[str]] = None, stream: Optional[TextIO] = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    workers = args.workers if args.workers is not None else autodetect_workers()
    runner = _StatsRunner(workers=workers, cache=cache)

    started = time.perf_counter()
    report = FIGURES[args.figure](args, runner)
    elapsed = time.perf_counter() - started

    print(report, file=out)
    cache_note = "disabled" if cache is None else str(cache.cache_dir)
    # workers_used can fall short of the request after a serial fallback
    # (no pool support) or when every job was served from the cache.
    print(
        f"\n[sweep] figure={args.figure} jobs={runner.total_jobs} "
        f"executed={runner.total_executed} cache_hits={runner.total_hits} "
        f"workers={workers} workers_used={runner.max_workers_used} "
        f"cache={cache_note} elapsed={elapsed:.1f}s",
        file=out,
    )
    return 0
