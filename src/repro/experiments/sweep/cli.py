"""Command-line entry point: run any figure harness through the sweep runner.

Examples
--------
::

    python -m repro.experiments socs --workers 8
    python -m repro.experiments isolation --workers 4 --cache-dir .sweep-cache
    python -m repro.experiments phases --no-cache --full
    python -m repro.experiments socs --shard 2/3          # one slice of the grid
    python -m repro.experiments merge-shards --cache-dir .sweep-cache
    python -m repro.experiments socs --resume             # continue a killed run
    python -m repro.experiments socs --backend batch --jobs-per-lease 8
    python -m repro.experiments coordinate socs --port 8733
    python -m repro.experiments.sweep worker --coordinator http://host:8733

Every figure runs at a reduced ("quick") scale by default so a laptop run
finishes in minutes; ``--full`` switches to the paper-scale grids.  Results
are cached on disk (``--cache-dir``, default ``.sweep-cache``) keyed by job
fingerprints, so re-running a figure re-simulates only the jobs whose
configuration or seed changed; ``--no-cache`` disables the cache entirely.
Cached runs also checkpoint a per-sweep manifest (under
``<cache-dir>/manifests`` unless ``--manifest-dir`` overrides it), which is
what ``--resume``, ``--shard i/N``, and ``merge-shards`` build on — see
``docs/execution.md`` for the full contract.

Two subcommands span machines: ``coordinate`` runs a figure with the
jobs served as HTTP leases instead of executed locally, and ``worker``
pulls and executes leases from a coordinator — see the "Distributed
execution" section of ``docs/execution.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, TextIO

from repro.errors import SweepError
from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.config import RunConfig, add_runner_arguments
from repro.experiments.sweep.merge import (
    discover_shard_manifests,
    fused_results,
    merge_shards,
)
from repro.experiments.sweep.pool import SweepRunner
from repro.experiments.sweep.shard import ShardIncompleteError
from repro.store.io import read_document

#: Figure name -> (description, runner function).  Each runner function
#: takes the parsed arguments plus a SweepRunner and returns a report string.
FigureRunner = Callable[[argparse.Namespace, SweepRunner], str]


def _fig_isolation(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.accelerators.library import accelerator_by_name
    from repro.experiments.common import motivation_setup
    from repro.experiments.isolation import run_isolation_experiment
    from repro.experiments.report import report_isolation
    from repro.units import KB, MB

    setup = motivation_setup(line_bytes=256)
    if args.full:
        accelerators, sizes = None, None
    else:
        accelerators = [accelerator_by_name(name) for name in ("FFT", "Sort", "SPMV")]
        sizes = {"Small": 16 * KB, "Medium": 256 * KB, "Large": 2 * MB}
    measurements = run_isolation_experiment(
        setup, accelerators=accelerators, sizes=sizes, runner=runner
    )
    return report_isolation(measurements)


def _fig_parallel(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.parallel import parallel_setup, run_parallel_experiment
    from repro.experiments.report import report_parallel

    counts = (1, 4, 8, 12) if args.full else (1, 4, 12)
    invocations = 4 if args.full else 2
    measurements = run_parallel_experiment(
        parallel_setup(line_bytes=256),
        counts=counts,
        invocations_per_thread=invocations,
        runner=runner,
    )
    return report_parallel(measurements)


def _fig_phases(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.phases import run_phase_analysis
    from repro.experiments.report import report_phases

    result = run_phase_analysis(
        training_iterations=10 if args.full else 3,
        seed=args.seed if args.seed is not None else 7,
        runner=runner,
    )
    return report_phases(result)


def _fig_reward_dse(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.report import report_reward_dse
    from repro.experiments.reward_dse import REWARD_WEIGHTINGS, run_reward_dse

    weightings = REWARD_WEIGHTINGS if args.full else REWARD_WEIGHTINGS[::3]
    result = run_reward_dse(
        weightings=weightings,
        training_iterations=10 if args.full else 3,
        seed=args.seed if args.seed is not None else 13,
        runner=runner,
    )
    return report_reward_dse(result)


def _fig_breakdown(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.breakdown import run_breakdown_experiment
    from repro.experiments.report import report_breakdown

    result = run_breakdown_experiment(
        training_iterations=10 if args.full else 3,
        seed=args.seed if args.seed is not None else 17,
        runner=runner,
    )
    return report_breakdown(result)


def _fig_training(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.report import report_training
    from repro.experiments.training import run_training_study

    budgets = (10, 30, 50) if args.full else (5, 10)
    result = run_training_study(
        budgets=budgets,
        seed=args.seed if args.seed is not None else 23,
        runner=runner,
    )
    return report_training(result)


def _fig_socs(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.report import report_headline, report_socs
    from repro.experiments.socs import FIGURE9_SOC_LABELS, run_soc_comparison
    from repro.experiments.summary import summarize_headline

    labels = (
        FIGURE9_SOC_LABELS
        if args.full
        else ("SoC0-Streaming", "SoC1", "SoC2", "SoC4", "SoC6")
    )
    comparison = run_soc_comparison(
        labels=labels,
        training_iterations=10 if args.full else 4,
        seed=args.seed if args.seed is not None else 29,
        runner=runner,
    )
    summary = summarize_headline(comparison)
    return report_socs(comparison) + "\n\n" + report_headline(summary)


def _fig_overhead(args: argparse.Namespace, runner: SweepRunner) -> str:
    from repro.experiments.overhead import OVERHEAD_FOOTPRINTS, run_overhead_experiment
    from repro.experiments.report import report_overhead

    footprints = OVERHEAD_FOOTPRINTS if args.full else OVERHEAD_FOOTPRINTS[::2]
    measurements = run_overhead_experiment(
        footprints=footprints,
        invocations_per_point=3 if args.full else 2,
        seed=args.seed if args.seed is not None else 31,
        runner=runner,
    )
    return report_overhead(measurements)


FIGURES: Dict[str, FigureRunner] = {
    "isolation": _fig_isolation,
    "parallel": _fig_parallel,
    "phases": _fig_phases,
    "reward_dse": _fig_reward_dse,
    "breakdown": _fig_breakdown,
    "training": _fig_training,
    "socs": _fig_socs,
    "overhead": _fig_overhead,
}


class _StatsRunner(SweepRunner):
    """A SweepRunner that accumulates per-spec execution statistics."""

    def __init__(self, config: RunConfig) -> None:
        super().__init__(config=config)
        self.total_jobs = 0
        self.total_hits = 0
        self.total_executed = 0
        self.total_resumed = 0
        self.total_missing = 0
        self.max_workers_used = 1

    def run(self, spec):
        result = super().run(spec)
        self.total_jobs += len(result) + len(result.missing)
        self.total_hits += result.cache_hits
        self.total_executed += result.executed
        self.total_resumed += result.resumed
        self.total_missing += len(result.missing)
        self.max_workers_used = max(self.max_workers_used, result.workers_used)
        return result


def _add_figure_arguments(parser: argparse.ArgumentParser) -> None:
    """The figure selection and scale flags shared by run and coordinate."""
    parser.add_argument("figure", choices=sorted(FIGURES), help="figure to regenerate")
    parser.add_argument(
        "--seed", type=int, default=None, help="override the figure's default seed"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper-scale grid instead of the reduced quick grid",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run a figure harness through the parallel sweep runner.",
    )
    _add_figure_arguments(parser)
    add_runner_arguments(parser)
    return parser


def build_coordinate_parser() -> argparse.ArgumentParser:
    """Parser of the ``coordinate`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments coordinate",
        description="Run a figure with its sweep jobs served as HTTP leases "
        "to remote pull workers instead of executed locally.",
    )
    _add_figure_arguments(parser)
    add_runner_arguments(parser)
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address of the lease server (default: %(default)s)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: an ephemeral port, printed at startup)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="seconds a worker may hold a lease before it is reissued "
        "(default: %(default)s)",
    )
    return parser


def build_worker_parser() -> argparse.ArgumentParser:
    """Parser of the ``worker`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.sweep worker",
        description="Pull and execute sweep leases from a coordinator; "
        "exits cleanly when the coordinator closes.",
    )
    parser.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:8733",
    )
    # The worker is diskless by design: no cache/manifest/shard flags.
    add_runner_arguments(parser, cache=False, manifest=False, shard=False, lease=False)
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="idle polling interval (default: %(default)s)",
    )
    parser.add_argument(
        "--grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long to retry before the first successful contact "
        "(default: %(default)s)",
    )
    return parser


def build_merge_parser() -> argparse.ArgumentParser:
    """Parser of the ``merge-shards`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments merge-shards",
        description="Validate shard manifests (disjoint, complete, digest-"
        "consistent) and fuse them into one result set.",
    )
    parser.add_argument(
        "--cache-dir",
        default=".sweep-cache",
        metavar="DIR",
        help="merged result cache holding every shard's payloads "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="directory of the shard manifests (default: <cache-dir>/manifests)",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="merge only this sweep's manifests (needed when several sweeps "
        "share the manifest directory)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the fused results (payloads included) as JSON",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="FILE",
        help="compare the merged checksums against this committed check "
        "document; non-zero exit on mismatch",
    )
    parser.add_argument(
        "--write-check",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the check document (job count + per-job digests + "
        "checksum) for committing as the CI expectation",
    )
    return parser


def _manifest_dir(args: argparse.Namespace) -> Path:
    """Resolve the manifest directory from ``--manifest-dir``/``--cache-dir``."""
    if args.manifest_dir is not None:
        return Path(args.manifest_dir)
    return Path(args.cache_dir) / "manifests"


def _main_merge(argv: List[str], out: TextIO) -> int:
    """Entry point of ``merge-shards``."""
    args = build_merge_parser().parse_args(argv)
    cache = ResultCache(args.cache_dir)
    manifest_dir = _manifest_dir(args)
    try:
        manifests = discover_shard_manifests(manifest_dir, spec_name=args.spec)
        report = merge_shards(manifests, cache=cache)
    except SweepError as exc:
        print(f"merge-shards: {exc}", file=out)
        return 1
    print(
        f"[merge-shards] spec={report.spec_name} shards={report.shard_count} "
        f"jobs={report.jobs} checksum={report.checksum[:16]}… "
        f"merged_manifest={report.merged_manifest}",
        file=out,
    )
    if args.out is not None:
        document = fused_results(report, manifests, cache)
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote fused results to {args.out}", file=out)
    if args.write_check is not None:
        args.write_check.parent.mkdir(parents=True, exist_ok=True)
        args.write_check.write_text(
            json.dumps(report.check_document(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote check document to {args.write_check}", file=out)
    if args.check is not None:
        expected = read_document(args.check)
        if not isinstance(expected, dict):
            raise SweepError(f"check document {args.check} must be a JSON object")
        problems = report.compare(expected)
        if problems:
            print(
                f"determinism check FAILED against {args.check}:", file=out
            )
            for problem in problems:
                print(f"  - {problem}", file=out)
            return 1
        print(
            f"determinism check passed: {report.jobs} job(s) match {args.check}",
            file=out,
        )
    return 0


def _main_worker(argv: List[str], out: TextIO) -> int:
    """Entry point of the ``worker`` subcommand."""
    from repro.experiments.sweep.distributed import run_worker

    args = build_worker_parser().parse_args(argv)
    return run_worker(
        args.coordinator,
        backend=args.backend,
        workers=args.workers if args.workers is not None else 1,
        poll=args.poll,
        grace=args.grace,
        out=out,
    )


def _main_coordinate(argv: List[str], out: TextIO) -> int:
    """Entry point of the ``coordinate`` subcommand."""
    from repro.experiments.sweep.distributed import DistributedBackend

    args = build_coordinate_parser().parse_args(argv)
    if args.backend != "auto":
        print(
            "error: coordinate always uses the distributed backend; "
            "workers choose their own --backend",
            file=out,
        )
        return 2
    try:
        config = RunConfig.from_args(args)
    except SweepError as exc:
        print(f"error: {exc}", file=out)
        return 2
    backend = DistributedBackend(
        host=args.host,
        port=args.port,
        jobs_per_lease=config.jobs_per_lease,
        lease_timeout=args.lease_timeout,
    )
    try:
        backend.start()
    except SweepError as exc:
        print(f"error: {exc}", file=out)
        return 2
    print(
        f"[coordinate] figure={args.figure} serving leases at {backend.url} "
        f"(lease_timeout={args.lease_timeout:.0f}s, "
        f"jobs_per_lease={config.jobs_per_lease or 1})",
        file=out,
    )
    try:
        return _run_figure(args, config.with_backend(backend), out)
    finally:
        backend.close()


def main(argv: Optional[List[str]] = None, stream: Optional[TextIO] = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = stream if stream is not None else sys.stdout
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "merge-shards":
        return _main_merge(argv[1:], out)
    if argv and argv[0] == "worker":
        return _main_worker(argv[1:], out)
    if argv and argv[0] == "coordinate":
        return _main_coordinate(argv[1:], out)
    args = build_parser().parse_args(argv)
    try:
        config = RunConfig.from_args(args)
    except SweepError as exc:
        print(f"error: {exc}", file=out)
        return 2
    return _run_figure(args, config, out)


def _run_figure(args: argparse.Namespace, config: RunConfig, out: TextIO) -> int:
    """Run one figure harness through ``config`` and print the summary."""
    runner = _StatsRunner(config)

    started = time.perf_counter()
    sharded_out = None
    try:
        report = FIGURES[args.figure](args, runner)
    except ShardIncompleteError as exc:
        # Expected for a sharded run: the harness stopped at the first
        # payload another shard owns.  The executed slice is checkpointed
        # in the cache and manifest; merge-shards fuses the full grid.
        if config.shard is None:
            raise
        report = None
        sharded_out = str(exc)
    elapsed = time.perf_counter() - started

    if report is not None:
        print(report, file=out)
    else:
        print(
            f"[sweep] shard {config.shard.label} of figure {args.figure} "
            "complete; no figure report without the other shards "
            f"({sharded_out})",
            file=out,
        )
    cache_note = "disabled" if config.cache is None else str(config.cache.cache_dir)
    # workers_used can fall short of the request after a serial fallback
    # (no pool support) or when every job was served from the cache.
    print(
        f"\n[sweep] figure={args.figure} jobs={runner.total_jobs} "
        f"executed={runner.total_executed} cache_hits={runner.total_hits} "
        f"resumed={runner.total_resumed} missing={runner.total_missing} "
        f"workers={config.workers} workers_used={runner.max_workers_used} "
        f"cache={cache_note} elapsed={elapsed:.1f}s",
        file=out,
    )
    return 0
