"""The JSON wire contract between the sweep coordinator and its workers.

Everything that crosses the wire is one JSON document per request and one
per response (the same shape as :mod:`repro.serving.protocol`): failures
map to a **typed error envelope** ::

    {"error": {"type": "digest-mismatch", "status": 409, "message": "..."}}

with a closed vocabulary (:data:`ERROR_STATUS`) — a traceback never
crosses the wire.

Jobs travel as pickles (base64-encoded into the JSON document), because a
:class:`~repro.experiments.sweep.sweep.Job` carries an arbitrary params
mapping and a function reference; both ends therefore must run the same
code tree, which is the deployment model anyway (N checkouts of this
repository pointed at one coordinator).  Unpickling is authenticated
against the job's **fingerprint**: :func:`decode_job` rebuilds the job
from its fields and recomputes the SHA-256 fingerprint from scratch, so a
corrupted or tampered blob — anything that changed the function path,
the canonicalized params, or the seed — is rejected before execution.
The transport is plain HTTP intended for a trusted network (the default
bind is loopback); the fingerprint check is an integrity seal, not a
substitute for network-level access control.

Results travel as plain JSON payloads stamped with their
:func:`~repro.experiments.sweep.manifest.payload_digest`; the coordinator
recomputes the digest on receipt, which pins down any canonicalization
drift between hosts before a payload can reach the cache.
"""

from __future__ import annotations

import base64
import pickle
from typing import Dict, Mapping

from repro.errors import SweepError
from repro.experiments.sweep.manifest import payload_digest
from repro.experiments.sweep.sweep import Job
from repro.net.envelope import EnvelopeError, make_envelope

#: Version stamped into every coordinator response; workers refuse to
#: execute leases from a different protocol generation.
DIST_PROTOCOL_VERSION = 1

#: The closed set of error-envelope types and their HTTP status codes.
ERROR_STATUS: Dict[str, int] = {
    "invalid-request": 400,
    "not-found": 404,
    "unknown-job": 409,
    "digest-mismatch": 409,
    "fingerprint-mismatch": 409,
    "payload-too-large": 413,
    "internal-error": 500,
}


class WireError(EnvelopeError, SweepError):
    """A coordinator/worker exchange that failed, with a typed envelope."""

    #: The coordinator/worker vocabulary; see :data:`ERROR_STATUS`.
    vocabulary = ERROR_STATUS

    #: Unknown envelope types are a coordinator-side bug.
    unknown_error = SweepError


def error_envelope(error_type: str, message: str) -> Dict[str, object]:
    """Build the JSON error envelope for ``error_type``."""
    return make_envelope(ERROR_STATUS, error_type, message, SweepError)


def encode_job(job: Job) -> Dict[str, object]:
    """Encode ``job`` for the wire: key, fingerprint, base64 pickle."""
    return {
        "key": job.key,
        "fingerprint": job.fingerprint(),
        "blob": base64.b64encode(pickle.dumps(job)).decode("ascii"),
    }


def decode_job(document: Mapping[str, object]) -> Job:
    """Decode one wire job and verify its fingerprint from scratch.

    The fingerprint the coordinator stamped next to the blob must equal
    the SHA-256 the *receiver* computes over the decoded function path,
    canonicalized params, and seed.  The job is rebuilt field-by-field so
    a memoized fingerprint smuggled inside the pickle can never
    short-circuit the check.
    """
    try:
        expected = document["fingerprint"]
        blob = base64.b64decode(str(document["blob"]), validate=True)
        job = pickle.loads(blob)
    except WireError:
        raise
    except Exception as exc:
        raise WireError("invalid-request", f"undecodable wire job: {exc}") from exc
    if not isinstance(job, Job):
        raise WireError(
            "invalid-request",
            f"wire blob decoded to {type(job).__name__}, expected a Job",
        )
    fresh = Job(key=job.key, fn=job.fn, params=job.params, seed=job.seed)
    if fresh.fingerprint() != expected:
        raise WireError(
            "fingerprint-mismatch",
            f"job {job.key!r}: fingerprint {fresh.fingerprint()[:12]}… does "
            f"not match the coordinator's {str(expected)[:12]}…",
        )
    return fresh


def encode_result(job: Job, payload: Mapping[str, object]) -> Dict[str, object]:
    """Encode one completed job for the wire, stamped with its digest."""
    return {
        "fingerprint": job.fingerprint(),
        "key": job.key,
        "payload": dict(payload),
        "digest": payload_digest(payload),
    }


__all__ = [
    "DIST_PROTOCOL_VERSION",
    "ERROR_STATUS",
    "WireError",
    "decode_job",
    "encode_job",
    "encode_result",
    "error_envelope",
]
