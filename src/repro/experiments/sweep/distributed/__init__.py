"""Distributed multi-host sweep execution: coordinator + pull workers.

The package implements the
:class:`~repro.experiments.sweep.backends.ExecutionBackend` protocol
across machine boundaries with nothing but the standard library:

* :mod:`~repro.experiments.sweep.distributed.protocol` — the JSON wire
  contract: versioned documents, typed error envelopes, and the
  fingerprint-verified job/result encodings;
* :mod:`~repro.experiments.sweep.distributed.lease` — the pure-logic
  lease board: deterministic fingerprint-hash grouping of jobs into
  leases, expiry + reassignment, and idempotent digest-checked
  completion;
* :mod:`~repro.experiments.sweep.distributed.coordinator` —
  :class:`DistributedBackend`, an asyncio HTTP coordinator (same
  hand-rolled keep-alive transport idiom as :mod:`repro.serving`) that
  serves leases to workers and reports completions incrementally on the
  runner's thread, so cache/manifest checkpointing is unchanged;
* :mod:`~repro.experiments.sweep.distributed.worker` — the pull worker
  loop behind ``python -m repro.experiments.sweep worker``.

Determinism is inherited, not negotiated: every job's randomness derives
from its fingerprint, so payloads are bit-identical no matter which
worker (or how many, or in what order) executes them — and the
coordinator *checks* this, by digest, whenever a reassigned lease is
completed twice.
"""

from repro.experiments.sweep.distributed.coordinator import DistributedBackend
from repro.experiments.sweep.distributed.lease import Lease, LeaseBoard
from repro.experiments.sweep.distributed.protocol import (
    DIST_PROTOCOL_VERSION,
    WireError,
    decode_job,
    encode_job,
    encode_result,
)
from repro.experiments.sweep.distributed.worker import run_worker

__all__ = [
    "DIST_PROTOCOL_VERSION",
    "DistributedBackend",
    "Lease",
    "LeaseBoard",
    "WireError",
    "decode_job",
    "encode_job",
    "encode_result",
    "run_worker",
]
