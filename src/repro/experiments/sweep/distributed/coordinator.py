"""The distributed coordinator: an HTTP lease server behind the backend API.

:class:`DistributedBackend` implements the ordinary
:class:`~repro.experiments.sweep.backends.ExecutionBackend` protocol, so
``SweepRunner`` needs no distributed-specific code path — cache writes,
manifest checkpointing, resume, and sharding all behave exactly as they
do for the in-process backends.  What changes is *who executes*: instead
of forking a pool, ``run()`` publishes the pending jobs as leases on an
embedded asyncio HTTP server (the shared keep-alive HTTP/1.1 transport
of :mod:`repro.net.http`, the same one :mod:`repro.serving.http` runs
on) and blocks until remote workers have pulled and completed every
lease.

Routes::

    GET  /healthz      liveness + board counters
    POST /v1/lease     acquire the next lease ({"worker": id})
    POST /v1/complete  push digest-stamped results for a lease
    GET  /v1/status    detailed board snapshot

Threading model: the event loop runs on one background thread owned by
the backend, started lazily on the first ``run()`` (or eagerly via
:meth:`DistributedBackend.start`, which the ``coordinate`` CLI does so it
can print the bound port) and kept alive across ``run()`` calls so one
coordinator can serve a figure harness that dispatches several sweeps.
All board mutation happens on the loop thread; completed ``(job,
payload)`` pairs cross back to the runner's thread through a queue, so
``on_result`` — and therefore every cache/manifest write — runs on the
calling thread, as the backend contract requires.

Resumability is the manifest's: kill the coordinator mid-sweep and the
completed prefix is already checkpointed, so rerunning with ``--resume``
re-serves only the remainder.  Kill a *worker* mid-lease and the lease
simply expires and is reissued (see
:mod:`~repro.experiments.sweep.distributed.lease`).
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import SweepError
from repro.experiments.sweep.backends.base import ExecutionBackend, ResultCallback
from repro.experiments.sweep.distributed.lease import LeaseBoard
from repro.experiments.sweep.distributed.protocol import (
    DIST_PROTOCOL_VERSION,
    WireError,
    encode_job,
    error_envelope,
)
from repro.experiments.sweep.sweep import Job
from repro.net.http import JsonHttpServer

#: Largest accepted request body (bytes); larger bodies get a 413 envelope.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Largest accepted request head (request line + headers, bytes).
MAX_HEAD_BYTES = 64 * 1024


class DistributedBackend(ExecutionBackend, JsonHttpServer):
    """Serves sweep jobs as HTTP leases to remote pull workers.

    Parameters
    ----------
    host / port:
        Bind address of the embedded coordinator server; port ``0``
        picks an ephemeral port (resolved after :meth:`start`).
    jobs_per_lease:
        Jobs per worker round-trip (default 1: maximal balancing; raise
        it to amortize round-trips on grids of many short jobs).
    lease_timeout:
        Seconds a worker may hold a lease before it is reissued.
    """

    name = "distributed"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs_per_lease: Optional[int] = None,
        lease_timeout: float = 60.0,
    ) -> None:
        if jobs_per_lease is not None and jobs_per_lease < 1:
            raise SweepError(f"jobs_per_lease must be >= 1, got {jobs_per_lease}")
        if lease_timeout <= 0:
            raise SweepError(f"lease_timeout must be > 0, got {lease_timeout}")
        super().__init__(
            max_body_bytes=MAX_BODY_BYTES,
            max_head_bytes=MAX_HEAD_BYTES,
            wire_error=WireError,
        )
        self.host = host
        self.port = port
        self.jobs_per_lease = jobs_per_lease
        self.lease_timeout = float(lease_timeout)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        # Current assignment, owned by the loop thread.
        self._board: Optional[LeaseBoard] = None
        self._results: Optional["queue.Queue"] = None
        #: Board counters of the most recently completed ``run()`` —
        #: reissues, workers, lease totals (see ``LeaseBoard.snapshot``).
        self.last_snapshot: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the coordinator server thread is running."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def url(self) -> str:
        """Base URL of the bound coordinator socket."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the coordinator server on its background thread."""
        if self.started:
            return
        self._ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._serve_thread, name="repro-coordinator", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            raise SweepError(f"coordinator failed to start on {self.url}: {error}")

    def close(self) -> None:
        """Stop the server thread and release the listening socket."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            loop, stop = self._loop, self._stop
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join()
        self._thread = None
        self._loop = None
        self._stop = None

    def __enter__(self) -> "DistributedBackend":
        """Start the coordinator on context entry."""
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the coordinator on context exit."""
        self.close()

    def _serve_thread(self) -> None:
        """Thread target: run the asyncio server until :meth:`close`."""
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()/run()
            self._startup_error = exc
            self._ready.set()

    async def _serve(self) -> None:
        """Bind the socket, publish readiness, serve until stopped."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self.handle_connection, host=self.host, port=self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            # Idle keep-alive workers sit in a blocked read; the shared
            # transport cancels them so no handler outlives the server.
            await self.cancel_connections()

    # ------------------------------------------------------------------
    # ExecutionBackend
    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[Job],
        workers: int,
        on_result: ResultCallback,
    ) -> int:
        """Publish ``jobs`` as leases and block until workers complete them.

        The ``workers`` argument (the runner's local worker request) does
        not bound remote parallelism — any number of workers may pull
        leases; it is accepted for protocol compatibility.  Returns the
        number of distinct workers that completed at least one job.
        """
        self.start()
        assert self._loop is not None
        per_lease = self.jobs_per_lease if self.jobs_per_lease is not None else 1
        board = LeaseBoard(
            jobs, jobs_per_lease=per_lease, lease_timeout=self.lease_timeout
        )
        results: "queue.Queue" = queue.Queue()
        self._call_on_loop(self._attach, board, results)
        try:
            completed = 0
            while completed < len(jobs):
                try:
                    job, payload = results.get(timeout=0.25)
                except queue.Empty:
                    if not self.started:
                        raise SweepError(
                            "coordinator server stopped with "
                            f"{len(jobs) - completed} job(s) outstanding"
                        ) from None
                    continue
                on_result(job, payload)
                completed += 1
            return max(1, len(board.workers_completed))
        finally:
            self.last_snapshot = board.snapshot()
            self._call_on_loop(self._attach, None, None)

    def _call_on_loop(self, fn, *args) -> None:
        """Run ``fn(*args)`` on the loop thread and wait for it."""
        assert self._loop is not None
        done = threading.Event()

        def call() -> None:
            try:
                fn(*args)
            finally:
                done.set()

        self._loop.call_soon_threadsafe(call)
        done.wait()

    def _attach(self, board: Optional[LeaseBoard], results) -> None:
        """Install (or clear) the current assignment; loop thread only."""
        self._board = board
        self._results = results

    # ------------------------------------------------------------------
    # Routing (transport plumbing lives in repro.net.http)
    # ------------------------------------------------------------------
    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict]:
        """Route one request, mapping every failure to a typed envelope."""
        try:
            return self._route(method, path, body)
        except WireError as exc:
            return exc.status, exc.envelope()
        except Exception as exc:  # noqa: BLE001 - boundary: everything becomes JSON
            return 500, error_envelope(
                "internal-error", f"unexpected {type(exc).__name__}"
            )

    def _route(self, method: str, path: str, body: bytes) -> Tuple[int, Dict]:
        """The route table proper (exceptions handled by ``dispatch``)."""
        builtin = self.route_builtin(method, path)
        if builtin is not None:
            return builtin
        if path == "/v1/status":
            self.require_method(method, "GET", path)
            return 200, self._status_document()
        if path == "/v1/lease":
            self.require_method(method, "POST", path)
            return 200, self._lease(self.parse_json_body(body))
        if path == "/v1/complete":
            self.require_method(method, "POST", path)
            return 200, self._complete(self.parse_json_body(body))
        raise WireError("not-found", f"no route for {path!r}")

    # ------------------------------------------------------------------
    # Route handlers (loop thread only)
    # ------------------------------------------------------------------
    def healthz_document(self) -> Dict[str, object]:
        """Liveness + board counters for ``/healthz``."""
        document: Dict[str, object] = {
            "status": "ok",
            "protocol": DIST_PROTOCOL_VERSION,
            "serving": self._board is not None,
        }
        if self._board is not None:
            document["jobs"] = self._board.snapshot()
        return document

    def _status_document(self) -> Dict[str, object]:
        """Detailed board snapshot for ``/v1/status``."""
        document: Dict[str, object] = {
            "protocol": DIST_PROTOCOL_VERSION,
            "serving": self._board is not None,
            "lease_timeout": self.lease_timeout,
        }
        if self._board is not None:
            self._board.expire(time.monotonic())
            document["jobs"] = self._board.snapshot()
        return document

    def _lease(self, request: object) -> Dict[str, object]:
        """Handle ``/v1/lease``: issue the next lease or report idle."""
        worker = _worker_of(request)
        base: Dict[str, object] = {"protocol": DIST_PROTOCOL_VERSION}
        if self._board is None:
            return {**base, "idle": True, "done": False}
        lease = self._board.acquire(worker, time.monotonic())
        if lease is None:
            return {**base, "idle": True, "done": self._board.done}
        return {
            **base,
            "lease": {
                "id": lease.lease_id,
                "timeout": self._board.lease_timeout,
                "jobs": [encode_job(job) for job in lease.jobs],
            },
        }

    def _complete(self, request: object) -> Dict[str, object]:
        """Handle ``/v1/complete``: digest-check and record results."""
        worker = _worker_of(request)
        if not isinstance(request, dict) or not isinstance(
            request.get("results"), list
        ):
            raise WireError(
                "invalid-request", "completion requires a 'results' list"
            )
        lease_id = str(request.get("lease", ""))
        if self._board is None or self._results is None:
            raise WireError(
                "invalid-request", "no sweep is currently being coordinated"
            )
        triples = []
        for entry in request["results"]:
            if not isinstance(entry, dict):
                raise WireError("invalid-request", "malformed result entry")
            try:
                triples.append(
                    (
                        str(entry["fingerprint"]),
                        str(entry["digest"]),
                        dict(entry["payload"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise WireError(
                    "invalid-request", f"malformed result entry: {exc}"
                ) from exc
        receipt = self._board.complete(lease_id, worker, triples, time.monotonic())
        for job, payload in receipt.accepted:
            self._results.put((job, payload))
        return {
            "protocol": DIST_PROTOCOL_VERSION,
            "accepted": len(receipt.accepted),
            "duplicates": receipt.duplicates,
            "lease_known": receipt.lease_known,
            "done": self._board.done,
        }


def _worker_of(request: object) -> str:
    """Extract the mandatory worker identity from a request document."""
    if not isinstance(request, dict) or not str(request.get("worker", "")).strip():
        raise WireError("invalid-request", "request requires a 'worker' identity")
    return str(request["worker"])


__all__ = ["DistributedBackend", "MAX_BODY_BYTES", "MAX_HEAD_BYTES"]
