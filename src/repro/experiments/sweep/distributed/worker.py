"""The pull worker: lease, execute locally, push digest-stamped results.

``python -m repro.experiments.sweep worker --coordinator URL`` runs this
loop.  The worker is deliberately stateless and diskless — it holds no
cache, writes no manifest, and keeps nothing between leases — so any
number of workers can be pointed at a coordinator, killed, and restarted
without coordination.  All persistence is the coordinator's job (the
backend contract: ``on_result`` fires in the runner's process).

Lifecycle:

* **before first contact** the worker retries quietly for a startup
  grace period, so workers can be launched before the coordinator
  binds its socket (the natural order in CI scripts);
* **while connected** it pulls one lease at a time over a keep-alive
  connection, executes the lease's jobs through an ordinary local
  backend (``--backend``/``--workers``, default serial), and pushes the
  results stamped with their payload digests;
* **when the coordinator goes away** after first contact, the worker
  treats it as the normal end of the sweep and exits 0 — kill-anywhere
  semantics need no shutdown handshake.

A typed error envelope from the coordinator (for example
``digest-mismatch``, meaning this worker computed a different payload
than an already-recorded completion of the same job) is fatal: the
worker prints the envelope and exits non-zero rather than keep feeding a
broken sweep.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import sys
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO, Tuple
from urllib.parse import urlsplit

from repro.errors import SweepError
from repro.experiments.sweep.backends import create_backend
from repro.experiments.sweep.distributed.protocol import (
    DIST_PROTOCOL_VERSION,
    WireError,
    decode_job,
    encode_result,
)
from repro.experiments.sweep.sweep import Job


@dataclass
class WorkerStats:
    """What one worker process accomplished before the coordinator closed."""

    worker_id: str
    leases: int = 0
    jobs: int = 0
    duplicates: int = 0

    def summary(self) -> str:
        """One-line report for the worker's stdout."""
        return (
            f"[worker] id={self.worker_id} leases={self.leases} "
            f"jobs={self.jobs} duplicates={self.duplicates}"
        )


class _Transport:
    """A keep-alive JSON/HTTP client for one coordinator."""

    def __init__(self, coordinator: str, timeout: float = 30.0) -> None:
        parts = urlsplit(coordinator)
        if parts.scheme != "http" or not parts.hostname:
            raise SweepError(
                f"invalid coordinator URL {coordinator!r}: expected http://host:port"
            )
        self.host = parts.hostname
        self.port = parts.port if parts.port is not None else 80
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def post(self, path: str, document: Dict[str, object]) -> Dict[str, object]:
        """POST one JSON document; raises ``ConnectionError`` when unreachable."""
        body = json.dumps(document).encode("utf-8")
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._conn.request(
                "POST",
                path,
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = self._conn.getresponse()
            payload = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self.close()
            raise ConnectionError(str(exc)) from exc
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(
                "invalid-request", f"undecodable coordinator response: {exc}"
            ) from exc

    def close(self) -> None:
        """Drop the keep-alive connection (reopened on the next request)."""
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None


def _check_envelope(document: Dict[str, object]) -> Dict[str, object]:
    """Raise :class:`WireError` if ``document`` is a typed error envelope."""
    error = document.get("error")
    if isinstance(error, dict):
        raise WireError(
            str(error.get("type", "internal-error")),
            str(error.get("message", "coordinator error")),
        )
    protocol = document.get("protocol")
    if protocol is not None and protocol != DIST_PROTOCOL_VERSION:
        raise WireError(
            "invalid-request",
            f"coordinator speaks protocol {protocol}, this worker speaks "
            f"{DIST_PROTOCOL_VERSION}",
        )
    return document


def _execute_lease(
    jobs: List[Job], backend_spec: Optional[str], workers: int
) -> List[Dict[str, object]]:
    """Run one lease through a local backend; return wire-encoded results."""
    effective = max(1, min(workers, len(jobs)))
    backend = create_backend(
        None if backend_spec in (None, "auto") else backend_spec, effective
    )
    collected: List[Tuple[Job, Dict[str, object]]] = []

    def on_result(job: Job, payload: Dict[str, object]) -> None:
        collected.append((job, payload))

    backend.run(jobs, effective, on_result)
    return [encode_result(job, payload) for job, payload in collected]


def run_worker(
    coordinator: str,
    backend: Optional[str] = None,
    workers: int = 1,
    poll: float = 0.5,
    grace: float = 30.0,
    out: Optional[TextIO] = None,
) -> int:
    """Pull and execute leases from ``coordinator`` until it goes away.

    Returns a process exit code: ``0`` when the coordinator closed after
    at least one successful contact (the normal end of a sweep), ``2``
    when the coordinator could not be reached within ``grace`` seconds
    or a wire error made continuing unsafe.
    """
    stream = out if out is not None else sys.stdout
    worker_id = f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    stats = WorkerStats(worker_id=worker_id)
    try:
        transport = _Transport(coordinator)
    except SweepError as exc:
        print(f"[worker] error: {exc}", file=stream)
        return 2
    connected = False
    deadline = time.monotonic() + grace
    while True:
        try:
            document = _check_envelope(
                transport.post("/v1/lease", {"worker": worker_id})
            )
        except ConnectionError as exc:
            if connected:
                break  # the sweep is over; coordinator released its socket
            if time.monotonic() >= deadline:
                print(
                    f"[worker] error: coordinator {coordinator} unreachable "
                    f"for {grace:.0f}s ({exc})",
                    file=stream,
                )
                return 2
            time.sleep(poll)
            continue
        except WireError as exc:
            print(f"[worker] protocol error: {exc}", file=stream)
            return 2
        connected = True
        lease = document.get("lease")
        if not isinstance(lease, dict):
            time.sleep(poll)
            continue
        try:
            jobs = [decode_job(doc) for doc in lease.get("jobs", [])]
            results = _execute_lease(jobs, backend, workers)
            receipt = _check_envelope(
                transport.post(
                    "/v1/complete",
                    {
                        "worker": worker_id,
                        "lease": str(lease.get("id", "")),
                        "results": results,
                    },
                )
            )
        except ConnectionError:
            break  # coordinator died while we held a lease; nothing to save
        except WireError as exc:
            print(f"[worker] protocol error: {exc}", file=stream)
            return 2
        stats.leases += 1
        stats.jobs += int(receipt.get("accepted", 0))
        stats.duplicates += int(receipt.get("duplicates", 0))
    transport.close()
    print(stats.summary() + " (coordinator closed)", file=stream)
    return 0


__all__ = ["WorkerStats", "run_worker"]
