"""The coordinator's lease board: pure work-assignment logic, no I/O.

A *lease* is a group of jobs handed to one worker for one round-trip.
The board is built once per sweep from the pending job list:

* grouping uses
  :func:`~repro.experiments.sweep.shard.lease_partition` — the shard
  machinery's fingerprint-hash assignment — so the lease layout is a
  pure function of the grid, identical on every coordinator;
* an acquired lease carries a **deadline**; if the worker neither
  completes nor returns it in time (killed mid-lease, network gone),
  :meth:`LeaseBoard.expire` moves it back to the pending queue and the
  next worker to ask gets it reissued.  Expiry is evaluated lazily on
  every acquire/complete, which is sufficient: a lease can only be
  *needed* again when some worker asks for work;
* completion is **idempotent**: a worker that lost the race against its
  own expiry may still push results, and the board accepts them as long
  as every payload digest agrees with what is already recorded — a
  disagreement means the determinism contract broke, and the board
  refuses the payload loudly rather than let either version win.

All methods take an explicit ``now`` (a monotonic timestamp), so the
whole lifecycle is unit-testable without a clock or a server.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.experiments.sweep.distributed.protocol import WireError
from repro.experiments.sweep.manifest import payload_digest
from repro.experiments.sweep.shard import lease_partition
from repro.experiments.sweep.sweep import Job


@dataclass
class Lease:
    """One group of jobs, either waiting in the queue or held by a worker."""

    lease_id: str
    jobs: Tuple[Job, ...]
    #: How many times this lease has been issued (0 while never acquired).
    attempts: int = 0
    #: The worker currently holding the lease, if any.
    worker: Optional[str] = None
    #: Monotonic deadline after which the lease is reclaimable.
    deadline: Optional[float] = None


@dataclass
class CompletionReceipt:
    """What one completion call changed on the board."""

    #: Newly recorded ``(job, payload)`` pairs, in submission order.
    accepted: List[Tuple[Job, dict]] = field(default_factory=list)
    #: Results that were already recorded (digest-verified duplicates).
    duplicates: int = 0
    #: Whether the submitted lease id was still active when it completed.
    lease_known: bool = True


class LeaseBoard:
    """Tracks pending, active, and completed leases for one sweep.

    Parameters
    ----------
    jobs:
        The pending jobs of the sweep, in grid order.
    jobs_per_lease:
        Target lease size (see
        :func:`~repro.experiments.sweep.shard.lease_partition`).
    lease_timeout:
        Seconds a worker may hold a lease before it is reclaimable.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        jobs_per_lease: int = 1,
        lease_timeout: float = 60.0,
    ) -> None:
        self.lease_timeout = float(lease_timeout)
        self._jobs: Dict[str, Job] = {job.fingerprint(): job for job in jobs}
        groups = lease_partition(list(jobs), jobs_per_lease)
        self._pending: Deque[Lease] = deque(
            Lease(lease_id=f"lease-{index:04d}", jobs=tuple(group))
            for index, group in enumerate(groups)
        )
        self._active: Dict[str, Lease] = {}
        self._digests: Dict[str, str] = {}
        #: Leases reclaimed after their deadline and queued for reissue.
        self.reissues = 0
        #: Workers that have completed at least one result.
        self.workers_completed: set = set()

    # ------------------------------------------------------------------
    @property
    def total_jobs(self) -> int:
        """Number of jobs the board was built with."""
        return len(self._jobs)

    @property
    def completed_jobs(self) -> int:
        """Number of jobs with a recorded payload digest."""
        return len(self._digests)

    @property
    def done(self) -> bool:
        """Whether every job has a recorded (digest-verified) payload."""
        return len(self._digests) == len(self._jobs)

    def snapshot(self) -> Dict[str, object]:
        """Counters for the status route (and tests)."""
        return {
            "jobs": self.total_jobs,
            "completed": self.completed_jobs,
            "pending_leases": len(self._pending),
            "active_leases": len(self._active),
            "reissues": self.reissues,
            "workers": sorted(self.workers_completed),
        }

    # ------------------------------------------------------------------
    def expire(self, now: float) -> int:
        """Reclaim active leases whose deadline has passed; return count."""
        overdue = [
            lease
            for lease in self._active.values()
            if lease.deadline is not None and now >= lease.deadline
        ]
        for lease in overdue:
            del self._active[lease.lease_id]
            lease.worker = None
            lease.deadline = None
            self._pending.append(lease)
            self.reissues += 1
        return len(overdue)

    def acquire(self, worker: str, now: float) -> Optional[Lease]:
        """Issue the next pending lease to ``worker``, or ``None`` if idle.

        Jobs that were completed through another attempt of the same
        lease are filtered out before reissue; leases with nothing left
        to do are dropped.
        """
        self.expire(now)
        while self._pending:
            lease = self._pending.popleft()
            remaining = tuple(
                job for job in lease.jobs if job.fingerprint() not in self._digests
            )
            if not remaining:
                continue
            lease.jobs = remaining
            lease.attempts += 1
            lease.worker = worker
            lease.deadline = now + self.lease_timeout
            self._active[lease.lease_id] = lease
            return lease
        return None

    def complete(
        self,
        lease_id: str,
        worker: str,
        results: Sequence[Tuple[str, str, dict]],
        now: float,
    ) -> CompletionReceipt:
        """Record ``(fingerprint, digest, payload)`` results for a lease.

        Unknown fingerprints are rejected; a digest disagreeing with the
        payload, or with an already recorded completion of the same job,
        raises :class:`WireError` (``digest-mismatch``) — both sides of
        the exchange computed the same canonical JSON digest if and only
        if the results are bit-identical.  A stale ``lease_id`` (expired
        and reissued, or already completed) is *not* an error: the
        results are still digest-checked and recorded or deduplicated.
        """
        self.expire(now)
        receipt = CompletionReceipt(lease_known=lease_id in self._active)
        for fingerprint, digest, payload in results:
            job = self._jobs.get(fingerprint)
            if job is None:
                raise WireError(
                    "unknown-job",
                    f"completion for unknown job fingerprint {fingerprint[:12]}…",
                )
            actual = payload_digest(payload)
            if actual != digest:
                raise WireError(
                    "digest-mismatch",
                    f"job {job.key!r}: payload digest {actual[:12]}… does not "
                    f"match the stamped digest {digest[:12]}…",
                )
            recorded = self._digests.get(fingerprint)
            if recorded is not None:
                if recorded != digest:
                    raise WireError(
                        "digest-mismatch",
                        f"job {job.key!r}: reassigned lease produced digest "
                        f"{digest[:12]}… but {recorded[:12]}… is already "
                        "recorded — the determinism contract is broken",
                    )
                receipt.duplicates += 1
                continue
            self._digests[fingerprint] = digest
            receipt.accepted.append((job, payload))
        if receipt.accepted or receipt.duplicates:
            self.workers_completed.add(worker)
        active = self._active.get(lease_id)
        if active is not None and all(
            job.fingerprint() in self._digests for job in active.jobs
        ):
            del self._active[lease_id]
        return receipt


__all__ = ["CompletionReceipt", "Lease", "LeaseBoard"]
