"""On-disk JSON result cache keyed by job fingerprints.

Layout: ``<cache_dir>/<fp[:2]>/<fingerprint>.json`` where each file holds

.. code-block:: json

    {"fingerprint": "...", "key": "...", "payload": {...}}

Payloads are serialized with sorted keys and fixed separators, so a cache
hit returns a payload byte-identical to the one originally stored.  Writes
are atomic (temp file + ``os.replace``), which makes the cache safe to share
between a parent process and the sweep workers, and between repeated CLI
invocations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import SweepError
from repro.store.io import canonical_text
from repro.utils.fileio import atomic_write_text


class ResultCache:
    """Persistent store of job payloads, addressed by fingerprint."""

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        """Filesystem location of the entry for ``fingerprint``."""
        if not fingerprint:
            raise SweepError("empty fingerprint")
        return self.cache_dir / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """Return the cached payload, or ``None`` on a miss.

        A corrupt or unreadable entry is treated as a miss: the job simply
        re-executes and overwrites it.
        """
        path = self.path_for(fingerprint)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        payload = entry.get("payload") if isinstance(entry, dict) else None
        return payload if isinstance(payload, dict) else None

    def put(self, fingerprint: str, key: str, payload: Dict[str, object]) -> None:
        """Persist ``payload`` for ``fingerprint`` atomically."""
        try:
            text = canonical_text(
                {"fingerprint": fingerprint, "key": key, "payload": payload}
            )
        except (TypeError, ValueError) as exc:
            raise SweepError(
                f"job {key}: payload is not JSON-serializable: {exc}"
            ) from exc
        # A failed write cleans its own temp file; orphans from *killed*
        # processes are swept by clear().
        atomic_write_text(self.path_for(fingerprint), text)

    # ------------------------------------------------------------------
    @staticmethod
    def _is_entry(path: Path) -> bool:
        """Whether ``path`` is a committed entry (not an in-flight temp file).

        A worker killed mid-:meth:`put` leaves a ``….tmp.<pid>`` file
        behind; such orphans are never entries and every read path skips
        them defensively.
        """
        return path.suffix == ".json" and ".tmp" not in path.name

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).is_file()

    def fingerprints(self) -> Iterator[str]:
        """Iterate over the fingerprints currently stored."""
        for path in sorted(self.cache_dir.glob("*/*.json")):
            if self._is_entry(path):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())

    def stale_tmp_files(self) -> List[Path]:
        """In-flight temp files orphaned by killed writers, oldest path first."""
        return sorted(
            path
            for path in self.cache_dir.glob("*/*.tmp.*")
            if not self._is_entry(path)
        )

    def clear(self) -> int:
        """Delete every entry (and sweep orphaned temp files).

        Returns how many *entries* were removed; swept temp files — left
        behind when a writer was killed between ``write_text`` and
        ``os.replace`` — do not count, since they never became entries.
        """
        removed = 0
        for path in list(self.cache_dir.glob("*/*.json")):
            if not self._is_entry(path):
                continue
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.stale_tmp_files():
            path.unlink(missing_ok=True)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.cache_dir)!r})"
