"""The sweep runner: cache, manifest, shard, and backend orchestration.

:class:`SweepRunner` executes a :class:`~repro.experiments.sweep.sweep.SweepSpec`
through a pluggable :class:`~repro.experiments.sweep.backends.ExecutionBackend`
(serial, process pool, or thread pool — see
:mod:`repro.experiments.sweep.backends`).  Because every job derives its
randomness from its own fingerprint, results are bit-identical regardless
of backend, worker count, or completion order; the runner re-orders
payloads into grid order before returning them.

Around the backend the runner layers three persistence concerns, all owned
by the calling process (workers never touch disk):

* **cache** — payloads keyed by job fingerprint, written the moment each
  job completes, so an interrupted sweep loses at most in-flight jobs;
* **manifest** — a per-sweep checkpoint file recording the grid and a
  digest per completed payload (:mod:`repro.experiments.sweep.manifest`);
  with ``resume=True`` the runner skips jobs the manifest records, after
  verifying the cached payload still matches the recorded digest;
* **shard** — a :class:`~repro.experiments.sweep.shard.ShardSpec`
  restricts execution to the grid slice the shard owns; payloads the
  shard neither owns nor finds in the cache are *missing*, and reading
  one from the result raises
  :class:`~repro.experiments.sweep.shard.ShardIncompleteError`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union
from warnings import warn

from repro.errors import SweepError
from repro.experiments.sweep.backends import ExecutionBackend, create_backend
from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.manifest import SweepManifest, payload_digest
from repro.experiments.sweep.shard import ShardIncompleteError, ShardSpec
from repro.experiments.sweep.sweep import Job, SweepSpec


def autodetect_workers() -> int:
    """Number of workers to use when none is specified: one per CPU."""
    return max(1, os.cpu_count() or 1)


@dataclass
class SweepResult:
    """Payloads of one sweep run, in grid order, plus execution statistics."""

    spec_name: str
    payloads: "OrderedDict[str, Dict[str, object]]" = field(default_factory=OrderedDict)
    cache_hits: int = 0
    executed: int = 0
    workers_used: int = 1
    #: Jobs skipped because a resumed manifest recorded them complete (and
    #: the cached payload matched the recorded digest).
    resumed: int = 0
    #: Keys of jobs this (sharded) run neither owned nor found cached, in
    #: grid order.  Empty for unsharded runs.
    missing: Tuple[str, ...] = ()
    #: The shard this result covers, or ``None`` for a full run.
    shard: Optional[ShardSpec] = None

    def __getitem__(self, key: str) -> Dict[str, object]:
        try:
            return self.payloads[key]
        except KeyError:
            if key in self.missing:
                raise ShardIncompleteError(
                    f"sweep {self.spec_name!r}: job {key!r} belongs to another "
                    f"shard (this run covered shard {self.shard.label}); fuse "
                    "the shards with 'merge-shards' or run without --shard"
                    if self.shard is not None
                    else f"sweep {self.spec_name!r}: job {key!r} was not executed"
                ) from None
            raise

    def __len__(self) -> int:
        return len(self.payloads)

    def __iter__(self) -> Iterator[str]:
        return iter(self.payloads)

    def items(self):
        """``(key, payload)`` pairs in grid order."""
        return self.payloads.items()

    @property
    def complete(self) -> bool:
        """Whether every job of the grid has a payload in this result."""
        return not self.missing


def run_spec(spec: SweepSpec, runner: Optional["SweepRunner"] = None) -> SweepResult:
    """Run ``spec`` on ``runner``, defaulting to a serial in-process runner.

    This is the one idiom every experiment harness uses to dispatch its
    grid: ``runner=None`` (the harness default) means serial execution with
    no cache or manifest, which is also safe inside sweep workers (no
    nested pools).
    """
    return (runner if runner is not None else SweepRunner(workers=1)).run(spec)


class SweepRunner:
    """Executes sweep specs through a backend, a cache, and a manifest.

    Parameters
    ----------
    workers:
        Requested parallelism; ``None`` autodetects one worker per CPU,
        ``1`` runs serially.
    cache:
        Optional :class:`ResultCache`; payloads are looked up before
        execution and written as each job completes.
    backend:
        ``None`` (process pool when ``workers > 1``, else serial), a
        registered backend name (``"serial"``/``"process"``/``"thread"``),
        or an :class:`ExecutionBackend` instance.
    manifest_dir:
        Directory for per-sweep checkpoint manifests; ``None`` disables
        manifests (and therefore ``resume``).
    resume:
        Reload an existing manifest and skip its completed jobs after
        digest-verifying their cached payloads.  Requires ``cache`` and
        ``manifest_dir``.
    shard:
        Execute only the grid slice this :class:`ShardSpec` owns.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        backend: Union[str, ExecutionBackend, None] = None,
        manifest_dir: Union[str, os.PathLike, None] = None,
        resume: bool = False,
        shard: Optional[ShardSpec] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        if resume and manifest_dir is None:
            raise SweepError("resume requires a manifest_dir")
        if resume and cache is None:
            raise SweepError(
                "resume requires a cache (manifests record digests, payloads "
                "live in the result cache)"
            )
        self.workers = workers
        self.cache = cache
        self.backend = backend
        self.manifest_dir = manifest_dir
        self.resume = resume
        self.shard = shard

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute ``spec`` and return its payloads in grid order.

        Jobs are satisfied, in priority order, by: a resumed manifest
        record (digest-verified against the cache), a cache hit, or
        execution on the backend.  With a shard, only owned jobs execute;
        cache hits still fill in foreign jobs when available.
        """
        manifest: Optional[SweepManifest] = None
        if self.manifest_dir is not None:
            manifest = SweepManifest.open(
                self.manifest_dir, spec, shard=self.shard, resume=self.resume
            )

        payloads: Dict[str, Dict[str, object]] = {}
        cache_hits = resumed = 0
        pending: List[Job] = []
        for job in spec.jobs:
            fingerprint = job.fingerprint()
            cached = self.cache.get(fingerprint) if self.cache is not None else None
            if manifest is not None and self.resume:
                recorded = manifest.completed.get(fingerprint)
                if recorded is not None:
                    if cached is not None and payload_digest(cached) == recorded:
                        payloads[job.key] = cached
                        resumed += 1
                        continue
                    warn(
                        f"sweep {spec.name}: resumed manifest records job "
                        f"{job.key!r} complete but the cached payload is "
                        "missing or stale; re-executing it",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    # The cached bytes failed digest verification — never
                    # serve them through the plain cache-hit path below.
                    cached = None
            if cached is not None:
                payloads[job.key] = cached
                cache_hits += 1
                if manifest is not None:
                    manifest.mark_done(job, cached)
                continue
            if self.shard is None or self.shard.owns(fingerprint):
                pending.append(job)

        workers_used = 1
        if pending:
            workers = self.workers if self.workers is not None else autodetect_workers()
            workers = max(1, min(workers, len(pending)))
            backend = create_backend(self.backend, workers)

            def on_result(job: Job, payload: Dict[str, object]) -> None:
                payloads[job.key] = payload
                if self.cache is not None:
                    self.cache.put(job.fingerprint(), job.key, payload)
                if manifest is not None:
                    manifest.mark_done(job, payload)

            workers_used = backend.run(pending, workers, on_result)

        ordered: "OrderedDict[str, Dict[str, object]]" = OrderedDict(
            (job.key, payloads[job.key])
            for job in spec.jobs
            if job.key in payloads
        )
        return SweepResult(
            spec_name=spec.name,
            payloads=ordered,
            cache_hits=cache_hits,
            executed=len(pending),
            workers_used=workers_used,
            resumed=resumed,
            missing=tuple(key for key in spec.keys() if key not in payloads),
            shard=self.shard,
        )
