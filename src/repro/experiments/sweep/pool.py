"""Parallel sweep execution with a serial fallback.

:class:`SweepRunner` executes a :class:`~repro.experiments.sweep.sweep.SweepSpec`
either in-process (``workers=1``, the default and the fallback) or on a
``multiprocessing`` pool.  Because every job derives its randomness from its
own fingerprint (see :mod:`repro.experiments.sweep.sweep`), the results are
identical regardless of worker count or completion order; the runner
re-orders payloads into grid order before returning them.

Cache lookups and writes happen in the parent process only, so the cache
never sees concurrent writers from one run.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SweepError
from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.sweep import Job, SweepSpec


def autodetect_workers() -> int:
    """Number of workers to use when none is specified: one per CPU."""
    return max(1, os.cpu_count() or 1)


def _execute_job(job: Job) -> Tuple[str, Dict[str, object]]:
    """Worker entry point: run one job, return ``(key, payload)``."""
    return job.key, job.execute()


@dataclass
class SweepResult:
    """Payloads of one sweep run, in grid order, plus execution statistics."""

    spec_name: str
    payloads: "OrderedDict[str, Dict[str, object]]" = field(default_factory=OrderedDict)
    cache_hits: int = 0
    executed: int = 0
    workers_used: int = 1

    def __getitem__(self, key: str) -> Dict[str, object]:
        return self.payloads[key]

    def __len__(self) -> int:
        return len(self.payloads)

    def __iter__(self) -> Iterator[str]:
        return iter(self.payloads)

    def items(self):
        """``(key, payload)`` pairs in grid order."""
        return self.payloads.items()


def run_spec(spec: SweepSpec, runner: Optional["SweepRunner"] = None) -> SweepResult:
    """Run ``spec`` on ``runner``, defaulting to a serial in-process runner.

    This is the one idiom every experiment harness uses to dispatch its
    grid: ``runner=None`` (the harness default) means serial execution with
    no cache, which is also safe inside sweep workers (no nested pools).
    """
    return (runner if runner is not None else SweepRunner(workers=1)).run(spec)


class SweepRunner:
    """Executes sweep specs, optionally in parallel and through a cache.

    ``workers=None`` autodetects one worker per CPU; ``workers=1`` runs
    serially in-process.  When a pool cannot be created (no ``fork``/
    semaphore support, or the runner is already inside a daemonic worker),
    the runner falls back to serial execution with a warning — results are
    identical either way.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute every job of ``spec`` and return payloads in grid order."""
        payloads: Dict[str, Dict[str, object]] = {}
        cache_hits = 0
        pending: List[Job] = []
        for job in spec.jobs:
            if self.cache is not None:
                cached = self.cache.get(job.fingerprint())
                if cached is not None:
                    payloads[job.key] = cached
                    cache_hits += 1
                    continue
            pending.append(job)

        workers_used = 1
        if pending:
            workers = self.workers if self.workers is not None else autodetect_workers()
            workers = max(1, min(workers, len(pending)))
            executed: Optional[Dict[str, Dict[str, object]]] = None
            if workers > 1:
                executed = self._run_pool(pending, workers)
                if executed is not None:
                    workers_used = workers
            if executed is None:
                executed = dict(_execute_job(job) for job in pending)
            for job in pending:
                payload = executed[job.key]
                payloads[job.key] = payload
                if self.cache is not None:
                    self.cache.put(job.fingerprint(), job.key, payload)

        ordered: "OrderedDict[str, Dict[str, object]]" = OrderedDict(
            (job.key, payloads[job.key]) for job in spec.jobs
        )
        return SweepResult(
            spec_name=spec.name,
            payloads=ordered,
            cache_hits=cache_hits,
            executed=len(pending),
            workers_used=workers_used,
        )

    # ------------------------------------------------------------------
    def _run_pool(
        self, jobs: List[Job], workers: int
    ) -> Optional[Dict[str, Dict[str, object]]]:
        """Run ``jobs`` on a process pool; ``None`` if no pool is available."""
        try:
            pool = multiprocessing.get_context().Pool(processes=workers)
        except Exception as exc:  # daemonic nesting, missing sem_open, ...
            warnings.warn(
                f"sweep: cannot create a {workers}-worker pool ({exc}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        try:
            with pool:
                return dict(pool.imap_unordered(_execute_job, jobs))
        finally:
            pool.join()
