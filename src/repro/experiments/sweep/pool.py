"""The sweep runner: cache, manifest, shard, and backend orchestration.

:class:`SweepRunner` executes a :class:`~repro.experiments.sweep.sweep.SweepSpec`
through a pluggable :class:`~repro.experiments.sweep.backends.ExecutionBackend`
(serial, process pool, thread pool, batched dispatch, or the distributed
coordinator — see :mod:`repro.experiments.sweep.backends` and
:mod:`repro.experiments.sweep.distributed`), configured by one frozen
:class:`~repro.experiments.sweep.config.RunConfig`.  Because every job
derives its
randomness from its own fingerprint, results are bit-identical regardless
of backend, worker count, or completion order; the runner re-orders
payloads into grid order before returning them.

Around the backend the runner layers three persistence concerns, all owned
by the calling process (workers never touch disk):

* **cache** — payloads keyed by job fingerprint, written the moment each
  job completes, so an interrupted sweep loses at most in-flight jobs;
* **manifest** — a per-sweep checkpoint file recording the grid and a
  digest per completed payload (:mod:`repro.experiments.sweep.manifest`);
  with ``resume=True`` the runner skips jobs the manifest records, after
  verifying the cached payload still matches the recorded digest;
* **shard** — a :class:`~repro.experiments.sweep.shard.ShardSpec`
  restricts execution to the grid slice the shard owns; payloads the
  shard neither owns nor finds in the cache are *missing*, and reading
  one from the result raises
  :class:`~repro.experiments.sweep.shard.ShardIncompleteError`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union
from warnings import warn

from repro.errors import SweepError
from repro.experiments.sweep.backends import ExecutionBackend, create_backend
from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.config import RunConfig, autodetect_workers
from repro.experiments.sweep.manifest import SweepManifest, payload_digest
from repro.experiments.sweep.shard import ShardIncompleteError, ShardSpec
from repro.experiments.sweep.sweep import Job, SweepSpec

#: Sentinel distinguishing "not passed" from every legal kwarg value in
#: the deprecated keyword form of :class:`SweepRunner`.
_UNSET = object()


@dataclass
class SweepResult:
    """Payloads of one sweep run, in grid order, plus execution statistics."""

    spec_name: str
    payloads: "OrderedDict[str, Dict[str, object]]" = field(default_factory=OrderedDict)
    cache_hits: int = 0
    executed: int = 0
    workers_used: int = 1
    #: Jobs skipped because a resumed manifest recorded them complete (and
    #: the cached payload matched the recorded digest).
    resumed: int = 0
    #: Keys of jobs this (sharded) run neither owned nor found cached, in
    #: grid order.  Empty for unsharded runs.
    missing: Tuple[str, ...] = ()
    #: The shard this result covers, or ``None`` for a full run.
    shard: Optional[ShardSpec] = None

    def __getitem__(self, key: str) -> Dict[str, object]:
        try:
            return self.payloads[key]
        except KeyError:
            if key in self.missing:
                raise ShardIncompleteError(
                    f"sweep {self.spec_name!r}: job {key!r} belongs to another "
                    f"shard (this run covered shard {self.shard.label}); fuse "
                    "the shards with 'merge-shards' or run without --shard"
                    if self.shard is not None
                    else f"sweep {self.spec_name!r}: job {key!r} was not executed"
                ) from None
            raise

    def __len__(self) -> int:
        return len(self.payloads)

    def __iter__(self) -> Iterator[str]:
        return iter(self.payloads)

    def items(self):
        """``(key, payload)`` pairs in grid order."""
        return self.payloads.items()

    @property
    def complete(self) -> bool:
        """Whether every job of the grid has a payload in this result."""
        return not self.missing


def run_spec(spec: SweepSpec, runner: Optional["SweepRunner"] = None) -> SweepResult:
    """Run ``spec`` on ``runner``, defaulting to a serial in-process runner.

    This is the one idiom every experiment harness uses to dispatch its
    grid: ``runner=None`` (the harness default) means serial execution with
    no cache or manifest, which is also safe inside sweep workers (no
    nested pools).
    """
    return (runner if runner is not None else SweepRunner(config=RunConfig())).run(spec)


class SweepRunner:
    """Executes sweep specs through a backend, a cache, and a manifest.

    The runner is configured by one frozen :class:`RunConfig`::

        SweepRunner(config=RunConfig(workers=4, cache=cache, resume=True,
                                     manifest_dir=manifest_dir))

    See :class:`~repro.experiments.sweep.config.RunConfig` for the
    meaning of each field.  The pre-``RunConfig`` keyword form
    (``SweepRunner(workers=, cache=, backend=, manifest_dir=, resume=,
    shard=, jobs_per_lease=)``) is still accepted but deprecated: the
    keywords are adapted into a ``RunConfig`` and a
    :class:`DeprecationWarning` is emitted.  Mixing ``config=`` with
    legacy keywords is an error.  The configuration remains readable
    through the ``workers``/``cache``/``backend``/``manifest_dir``/
    ``resume``/``shard``/``jobs_per_lease`` properties.
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        workers: Optional[int] = _UNSET,  # type: ignore[assignment]
        cache: Optional[ResultCache] = _UNSET,  # type: ignore[assignment]
        backend: Union[str, ExecutionBackend, None] = _UNSET,  # type: ignore[assignment]
        manifest_dir: Union[str, os.PathLike, None] = _UNSET,  # type: ignore[assignment]
        resume: bool = _UNSET,  # type: ignore[assignment]
        shard: Optional[ShardSpec] = _UNSET,  # type: ignore[assignment]
        jobs_per_lease: Optional[int] = _UNSET,  # type: ignore[assignment]
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("workers", workers),
                ("cache", cache),
                ("backend", backend),
                ("manifest_dir", manifest_dir),
                ("resume", resume),
                ("shard", shard),
                ("jobs_per_lease", jobs_per_lease),
            )
            if value is not _UNSET
        }
        if legacy:
            if config is not None:
                raise SweepError(
                    "pass either SweepRunner(config=RunConfig(...)) or the "
                    "deprecated keyword arguments, not both"
                )
            warn(
                "SweepRunner(workers=, cache=, backend=, ...) is deprecated; "
                "pass SweepRunner(config=RunConfig(...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = RunConfig(**legacy)
        elif config is None:
            config = RunConfig()
        if not isinstance(config, RunConfig):
            raise SweepError(
                f"config must be a RunConfig, got {type(config).__name__}"
            )
        self.config = config

    # -- read-only views of the frozen configuration -------------------
    @property
    def workers(self) -> Optional[int]:
        """Requested parallelism (``None`` = autodetect)."""
        return self.config.workers

    @property
    def cache(self) -> Optional[ResultCache]:
        """The result cache, or ``None`` when caching is disabled."""
        return self.config.cache

    @property
    def backend(self) -> Union[str, ExecutionBackend, None]:
        """The configured backend name/instance (``None`` = default policy)."""
        return self.config.backend

    @property
    def manifest_dir(self) -> Union[str, os.PathLike, None]:
        """Directory of the per-sweep checkpoint manifests, if any."""
        return self.config.manifest_dir

    @property
    def resume(self) -> bool:
        """Whether completed manifest entries are skipped on re-run."""
        return self.config.resume

    @property
    def shard(self) -> Optional[ShardSpec]:
        """The grid slice this runner executes, or ``None`` for all of it."""
        return self.config.shard

    @property
    def jobs_per_lease(self) -> Optional[int]:
        """Lease granularity for batching backends (``None`` = default)."""
        return self.config.jobs_per_lease

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute ``spec`` and return its payloads in grid order.

        Jobs are satisfied, in priority order, by: a resumed manifest
        record (digest-verified against the cache), a cache hit, or
        execution on the backend.  With a shard, only owned jobs execute;
        cache hits still fill in foreign jobs when available.
        """
        manifest: Optional[SweepManifest] = None
        if self.manifest_dir is not None:
            manifest = SweepManifest.open(
                self.manifest_dir, spec, shard=self.shard, resume=self.resume
            )

        payloads: Dict[str, Dict[str, object]] = {}
        cache_hits = resumed = 0
        pending: List[Job] = []
        for job in spec.jobs:
            fingerprint = job.fingerprint()
            cached = self.cache.get(fingerprint) if self.cache is not None else None
            if manifest is not None and self.resume:
                recorded = manifest.completed.get(fingerprint)
                if recorded is not None:
                    if cached is not None and payload_digest(cached) == recorded:
                        payloads[job.key] = cached
                        resumed += 1
                        continue
                    warn(
                        f"sweep {spec.name}: resumed manifest records job "
                        f"{job.key!r} complete but the cached payload is "
                        "missing or stale; re-executing it",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    # The cached bytes failed digest verification — never
                    # serve them through the plain cache-hit path below.
                    cached = None
            if cached is not None:
                payloads[job.key] = cached
                cache_hits += 1
                if manifest is not None:
                    manifest.mark_done(job, cached)
                continue
            if self.shard is None or self.shard.owns(fingerprint):
                pending.append(job)

        workers_used = 1
        if pending:
            workers = self.workers if self.workers is not None else autodetect_workers()
            workers = max(1, min(workers, len(pending)))
            backend = create_backend(
                self.backend, workers, jobs_per_lease=self.jobs_per_lease
            )

            def on_result(job: Job, payload: Dict[str, object]) -> None:
                payloads[job.key] = payload
                if self.cache is not None:
                    self.cache.put(job.fingerprint(), job.key, payload)
                if manifest is not None:
                    manifest.mark_done(job, payload)

            workers_used = backend.run(pending, workers, on_result)

        ordered: "OrderedDict[str, Dict[str, object]]" = OrderedDict(
            (job.key, payloads[job.key])
            for job in spec.jobs
            if job.key in payloads
        )
        return SweepResult(
            spec_name=spec.name,
            payloads=ordered,
            cache_hits=cache_hits,
            executed=len(pending),
            workers_used=workers_used,
            resumed=resumed,
            missing=tuple(key for key in spec.keys() if key not in payloads),
            shard=self.shard,
        )
