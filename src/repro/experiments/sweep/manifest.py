"""Checkpointed sweep manifests: on-disk progress records for one grid.

A manifest is a JSON-lines file describing one run of one
:class:`~repro.experiments.sweep.sweep.SweepSpec` (optionally one shard of
it).  The first line is a header carrying the sweep's identity; every
following line records one completed job::

    {"kind": "header", "version": 1, "spec": "socs", "grid_digest": "…",
     "shard": {"index": 2, "count": 3} | null,
     "jobs": [{"key": "SoC1", "fingerprint": "…"}, …]}
    {"kind": "result", "fingerprint": "…", "key": "SoC1", "digest": "…"}

``grid_digest`` identifies the grid *content* — the sorted set of job
fingerprints — so it is invariant under job order, and ``digest`` is the
SHA-256 of the job's canonical JSON payload (the byte-identity the resume
and merge checks compare).  Result lines are appended and flushed as jobs
complete, which makes the file crash-tolerant by construction: killing a
sweep can at worst truncate the final line, and :meth:`SweepManifest.load`
ignores a trailing partial record.  Payloads themselves live in the
:class:`~repro.experiments.sweep.cache.ResultCache`; the manifest holds
only their digests, so resuming can verify that a cached payload is the
exact bytes the interrupted run produced.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import DocumentError, SweepError
from repro.experiments.sweep.shard import ShardSpec
from repro.experiments.sweep.sweep import Job, SweepSpec
from repro.store.io import canonical_digest
from repro.store.readers import (
    MANIFEST_SUFFIX,
    MANIFEST_VERSION,
    grid_digest,
    load_sweep_manifest,
)


def payload_digest(payload: Dict[str, object]) -> str:
    """SHA-256 of the canonical JSON rendering of a job payload.

    Delegates to :func:`repro.store.io.canonical_digest` — the one
    content-digest implementation — so equal digests always mean
    byte-identical cached payloads.
    """
    return canonical_digest(payload)


def _safe_name(name: str) -> str:
    """Render a spec name as a filesystem-safe fragment."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name)


class SweepManifest:
    """Progress record of one (possibly sharded) run of one sweep grid.

    Instances are either *attached* (created by :meth:`open`, with a file
    they append to as jobs complete) or *loaded* (created by :meth:`load`
    for inspection and merging, read-only).
    """

    def __init__(
        self,
        path: Path,
        spec_name: str,
        grid: List[Tuple[str, str]],
        shard: Optional[ShardSpec],
        completed: Optional[Dict[str, str]] = None,
    ) -> None:
        self.path = path
        self.spec_name = spec_name
        #: ``(key, fingerprint)`` pairs in grid order.
        self.grid = grid
        self.shard = shard
        #: fingerprint -> payload digest for every recorded completion.
        self.completed: Dict[str, str] = dict(completed or {})

    # ------------------------------------------------------------------
    @property
    def grid_digest(self) -> str:
        """Content digest of this manifest's grid."""
        return grid_digest(self.grid)

    @property
    def keys_by_fingerprint(self) -> Dict[str, str]:
        """Mapping of fingerprint -> job key for the whole grid."""
        return {fingerprint: key for key, fingerprint in self.grid}

    def pending(self) -> List[Tuple[str, str]]:
        """Grid entries with no completion record yet, in grid order."""
        return [
            (key, fingerprint)
            for key, fingerprint in self.grid
            if fingerprint not in self.completed
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def path_for(
        directory: Union[str, Path], spec: SweepSpec, shard: Optional[ShardSpec] = None
    ) -> Path:
        """Canonical manifest location for ``spec`` (and shard) in ``directory``.

        The name embeds the grid digest, so two grids that share a spec
        name (for example quick vs. ``--full`` scales) never collide, and
        each shard of a grid gets its own file.
        """
        jobs = [(job.key, job.fingerprint()) for job in spec.jobs]
        stem = f"{_safe_name(spec.name)}-{grid_digest(jobs)[:12]}"
        if shard is not None:
            stem += f".shard{shard.index}of{shard.count}"
        return Path(directory) / f"{stem}{MANIFEST_SUFFIX}"

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        spec: SweepSpec,
        shard: Optional[ShardSpec] = None,
        resume: bool = False,
    ) -> "SweepManifest":
        """Create (or, with ``resume``, reload) the manifest for ``spec``.

        Without ``resume`` any existing file is truncated and a fresh
        header written.  With ``resume``, an existing manifest for the
        same grid is reloaded and its completion records kept; a manifest
        whose grid digest differs (the spec changed since the interrupted
        run) raises :class:`~repro.errors.SweepError` rather than silently
        mixing two grids.  The reloaded file is rewritten in one pass so
        any truncated trailing record from a crash is dropped on disk too.
        """
        grid = [(job.key, job.fingerprint()) for job in spec.jobs]
        path = cls.path_for(directory, spec, shard)
        completed: Dict[str, str] = {}
        if resume and path.exists():
            previous = cls.load(path)
            if previous.grid_digest != grid_digest(grid):
                raise SweepError(
                    f"cannot resume sweep {spec.name!r}: manifest {path} records a "
                    "different grid (the spec changed since the interrupted run); "
                    "delete the manifest or rerun without --resume"
                )
            valid = {fingerprint for _, fingerprint in grid}
            completed = {
                fingerprint: digest
                for fingerprint, digest in previous.completed.items()
                if fingerprint in valid
            }
        manifest = cls(path, spec.name, grid, shard, completed)
        manifest._rewrite()
        return manifest

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepManifest":
        """Parse a manifest file, tolerating a truncated final line.

        The parse itself — including the crash-tolerance rule for a
        truncated trailing record — lives in
        :func:`repro.store.readers.load_sweep_manifest`, shared with
        every other manifest consumer; this wrapper only rehydrates the
        attachable class and maps failures to the sweep domain.
        """
        try:
            document = load_sweep_manifest(path)
        except DocumentError as exc:
            raise SweepError(str(exc)) from exc
        shard = (
            ShardSpec(index=document.shard[0], count=document.shard[1])
            if document.shard is not None
            else None
        )
        return cls(
            document.path,
            document.spec_name,
            document.grid,
            shard,
            document.completed,
        )

    # ------------------------------------------------------------------
    def mark_done(self, job: Job, payload: Dict[str, object]) -> str:
        """Record ``job`` as complete; append-and-flush, return the digest."""
        digest = payload_digest(payload)
        fingerprint = job.fingerprint()
        if self.completed.get(fingerprint) == digest:
            return digest
        self.completed[fingerprint] = digest
        record = {
            "kind": "result",
            "fingerprint": fingerprint,
            "key": job.key,
            "digest": digest,
        }
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return digest

    def _header_document(self) -> Dict[str, object]:
        return {
            "kind": "header",
            "version": MANIFEST_VERSION,
            "spec": self.spec_name,
            "grid_digest": self.grid_digest,
            "shard": (
                {"index": self.shard.index, "count": self.shard.count}
                if self.shard is not None
                else None
            ),
            "jobs": [
                {"key": key, "fingerprint": fingerprint}
                for key, fingerprint in self.grid
            ],
        }

    def _rewrite(self) -> None:
        """Write the whole manifest (header + known completions) afresh."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        keys = self.keys_by_fingerprint
        lines = [json.dumps(self._header_document(), sort_keys=True)]
        for key, fingerprint in self.grid:
            digest = self.completed.get(fingerprint)
            if digest is not None:
                lines.append(
                    json.dumps(
                        {
                            "kind": "result",
                            "fingerprint": fingerprint,
                            "key": keys[fingerprint],
                            "digest": digest,
                        },
                        sort_keys=True,
                    )
                )
        self.path.write_text("\n".join(lines) + "\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepManifest({self.spec_name!r}, {len(self.completed)}/"
            f"{len(self.grid)} done, shard={self.shard})"
        )
