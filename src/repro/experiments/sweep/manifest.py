"""Checkpointed sweep manifests: on-disk progress records for one grid.

A manifest is a JSON-lines file describing one run of one
:class:`~repro.experiments.sweep.sweep.SweepSpec` (optionally one shard of
it).  The first line is a header carrying the sweep's identity; every
following line records one completed job::

    {"kind": "header", "version": 1, "spec": "socs", "grid_digest": "…",
     "shard": {"index": 2, "count": 3} | null,
     "jobs": [{"key": "SoC1", "fingerprint": "…"}, …]}
    {"kind": "result", "fingerprint": "…", "key": "SoC1", "digest": "…"}

``grid_digest`` identifies the grid *content* — the sorted set of job
fingerprints — so it is invariant under job order, and ``digest`` is the
SHA-256 of the job's canonical JSON payload (the byte-identity the resume
and merge checks compare).  Result lines are appended and flushed as jobs
complete, which makes the file crash-tolerant by construction: killing a
sweep can at worst truncate the final line, and :meth:`SweepManifest.load`
ignores a trailing partial record.  Payloads themselves live in the
:class:`~repro.experiments.sweep.cache.ResultCache`; the manifest holds
only their digests, so resuming can verify that a cached payload is the
exact bytes the interrupted run produced.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SweepError
from repro.experiments.sweep.shard import ShardSpec
from repro.experiments.sweep.sweep import Job, SweepSpec

MANIFEST_VERSION = 1
MANIFEST_SUFFIX = ".manifest.jsonl"


def payload_digest(payload: Dict[str, object]) -> str:
    """SHA-256 of the canonical JSON rendering of a job payload.

    Uses the same ``sort_keys`` / fixed-separator rendering as the result
    cache, so equal digests mean byte-identical cached payloads.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def grid_digest(grid: Sequence[Tuple[str, str]]) -> str:
    """Content digest of a grid: its sorted ``(key, fingerprint)`` pairs."""
    blob = json.dumps(sorted(grid), separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _safe_name(name: str) -> str:
    """Render a spec name as a filesystem-safe fragment."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name)


class SweepManifest:
    """Progress record of one (possibly sharded) run of one sweep grid.

    Instances are either *attached* (created by :meth:`open`, with a file
    they append to as jobs complete) or *loaded* (created by :meth:`load`
    for inspection and merging, read-only).
    """

    def __init__(
        self,
        path: Path,
        spec_name: str,
        grid: List[Tuple[str, str]],
        shard: Optional[ShardSpec],
        completed: Optional[Dict[str, str]] = None,
    ) -> None:
        self.path = path
        self.spec_name = spec_name
        #: ``(key, fingerprint)`` pairs in grid order.
        self.grid = grid
        self.shard = shard
        #: fingerprint -> payload digest for every recorded completion.
        self.completed: Dict[str, str] = dict(completed or {})

    # ------------------------------------------------------------------
    @property
    def grid_digest(self) -> str:
        """Content digest of this manifest's grid."""
        return grid_digest(self.grid)

    @property
    def keys_by_fingerprint(self) -> Dict[str, str]:
        """Mapping of fingerprint -> job key for the whole grid."""
        return {fingerprint: key for key, fingerprint in self.grid}

    def pending(self) -> List[Tuple[str, str]]:
        """Grid entries with no completion record yet, in grid order."""
        return [
            (key, fingerprint)
            for key, fingerprint in self.grid
            if fingerprint not in self.completed
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def path_for(
        directory: Union[str, Path], spec: SweepSpec, shard: Optional[ShardSpec] = None
    ) -> Path:
        """Canonical manifest location for ``spec`` (and shard) in ``directory``.

        The name embeds the grid digest, so two grids that share a spec
        name (for example quick vs. ``--full`` scales) never collide, and
        each shard of a grid gets its own file.
        """
        jobs = [(job.key, job.fingerprint()) for job in spec.jobs]
        stem = f"{_safe_name(spec.name)}-{grid_digest(jobs)[:12]}"
        if shard is not None:
            stem += f".shard{shard.index}of{shard.count}"
        return Path(directory) / f"{stem}{MANIFEST_SUFFIX}"

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        spec: SweepSpec,
        shard: Optional[ShardSpec] = None,
        resume: bool = False,
    ) -> "SweepManifest":
        """Create (or, with ``resume``, reload) the manifest for ``spec``.

        Without ``resume`` any existing file is truncated and a fresh
        header written.  With ``resume``, an existing manifest for the
        same grid is reloaded and its completion records kept; a manifest
        whose grid digest differs (the spec changed since the interrupted
        run) raises :class:`~repro.errors.SweepError` rather than silently
        mixing two grids.  The reloaded file is rewritten in one pass so
        any truncated trailing record from a crash is dropped on disk too.
        """
        grid = [(job.key, job.fingerprint()) for job in spec.jobs]
        path = cls.path_for(directory, spec, shard)
        completed: Dict[str, str] = {}
        if resume and path.exists():
            previous = cls.load(path)
            if previous.grid_digest != grid_digest(grid):
                raise SweepError(
                    f"cannot resume sweep {spec.name!r}: manifest {path} records a "
                    "different grid (the spec changed since the interrupted run); "
                    "delete the manifest or rerun without --resume"
                )
            valid = {fingerprint for _, fingerprint in grid}
            completed = {
                fingerprint: digest
                for fingerprint, digest in previous.completed.items()
                if fingerprint in valid
            }
        manifest = cls(path, spec.name, grid, shard, completed)
        manifest._rewrite()
        return manifest

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepManifest":
        """Parse a manifest file, tolerating a truncated final line."""
        path = Path(path)
        try:
            lines = path.read_text().splitlines()
        except OSError as exc:
            raise SweepError(f"cannot read manifest {path}: {exc}") from exc
        if not lines:
            raise SweepError(f"manifest {path} is empty")
        header = cls._parse_line(lines[0])
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise SweepError(f"manifest {path} does not start with a header line")
        if header.get("version") != MANIFEST_VERSION:
            raise SweepError(
                f"manifest {path} has version {header.get('version')!r}; "
                f"this build reads version {MANIFEST_VERSION}"
            )
        try:
            grid = [(entry["key"], entry["fingerprint"]) for entry in header["jobs"]]
            spec_name = str(header["spec"])
            raw_shard = header.get("shard")
            shard = (
                ShardSpec(index=int(raw_shard["index"]), count=int(raw_shard["count"]))
                if raw_shard
                else None
            )
        except (KeyError, TypeError) as exc:
            raise SweepError(f"manifest {path} has a malformed header: {exc}") from exc
        completed: Dict[str, str] = {}
        for line in lines[1:]:
            record = cls._parse_line(line)
            if (
                isinstance(record, dict)
                and record.get("kind") == "result"
                and isinstance(record.get("fingerprint"), str)
                and isinstance(record.get("digest"), str)
            ):
                completed[record["fingerprint"]] = record["digest"]
        return cls(path, spec_name, grid, shard, completed)

    @staticmethod
    def _parse_line(line: str) -> Optional[object]:
        """JSON-decode one line; ``None`` for a blank or truncated line."""
        line = line.strip()
        if not line:
            return None
        try:
            return json.loads(line)
        except ValueError:
            return None

    # ------------------------------------------------------------------
    def mark_done(self, job: Job, payload: Dict[str, object]) -> str:
        """Record ``job`` as complete; append-and-flush, return the digest."""
        digest = payload_digest(payload)
        fingerprint = job.fingerprint()
        if self.completed.get(fingerprint) == digest:
            return digest
        self.completed[fingerprint] = digest
        record = {
            "kind": "result",
            "fingerprint": fingerprint,
            "key": job.key,
            "digest": digest,
        }
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return digest

    def _header_document(self) -> Dict[str, object]:
        return {
            "kind": "header",
            "version": MANIFEST_VERSION,
            "spec": self.spec_name,
            "grid_digest": self.grid_digest,
            "shard": (
                {"index": self.shard.index, "count": self.shard.count}
                if self.shard is not None
                else None
            ),
            "jobs": [
                {"key": key, "fingerprint": fingerprint}
                for key, fingerprint in self.grid
            ],
        }

    def _rewrite(self) -> None:
        """Write the whole manifest (header + known completions) afresh."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        keys = self.keys_by_fingerprint
        lines = [json.dumps(self._header_document(), sort_keys=True)]
        for key, fingerprint in self.grid:
            digest = self.completed.get(fingerprint)
            if digest is not None:
                lines.append(
                    json.dumps(
                        {
                            "kind": "result",
                            "fingerprint": fingerprint,
                            "key": keys[fingerprint],
                            "digest": digest,
                        },
                        sort_keys=True,
                    )
                )
        self.path.write_text("\n".join(lines) + "\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepManifest({self.spec_name!r}, {len(self.completed)}/"
            f"{len(self.grid)} done, shard={self.shard})"
        )
