"""Parallel sweep orchestration for the experiment harnesses.

The subsystem has five layers plus a CLI:

* :mod:`repro.experiments.sweep.sweep` — declarative :class:`SweepSpec` /
  :class:`Job` grids with stable fingerprints and per-job RNG derivation;
* :mod:`repro.experiments.sweep.backends` — pluggable
  :class:`ExecutionBackend` implementations (serial, process pool, thread
  pool, batched dispatch) behind one incremental-completion contract;
* :mod:`repro.experiments.sweep.distributed` — the coordinator/worker
  execution layer (:class:`DistributedBackend`) serving work leases over
  HTTP to pull workers on other hosts;
* :mod:`repro.experiments.sweep.config` — :class:`RunConfig`, the one
  frozen description of how a sweep executes, shared by the
  programmatic API and every CLI front end;
* :mod:`repro.experiments.sweep.pool` — :class:`SweepRunner`, which
  orchestrates cache, manifest, shard, and backend for each spec;
* :mod:`repro.experiments.sweep.cache` — :class:`ResultCache`, an on-disk
  JSON store keyed by job fingerprints;
* :mod:`repro.experiments.sweep.manifest` / ``shard`` / ``merge`` —
  checkpointed sweep manifests, deterministic fingerprint sharding, and
  the validated ``merge-shards`` fusion they enable;
* :mod:`repro.experiments.sweep.cli` — ``python -m repro.experiments`` to
  run any figure by name with ``--workers`` / ``--backend`` / ``--cache-dir``
  / ``--resume`` / ``--shard``, plus the ``merge-shards`` subcommand.
"""

from repro.experiments.sweep.backends import (
    BACKEND_NAMES,
    BACKENDS,
    BatchBackend,
    ExecutionBackend,
    create_backend,
)
from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.config import RunConfig, add_runner_arguments
from repro.experiments.sweep.distributed import DistributedBackend, run_worker
from repro.experiments.sweep.manifest import SweepManifest, grid_digest, payload_digest
from repro.experiments.sweep.merge import MergeReport, discover_shard_manifests, merge_shards
from repro.experiments.sweep.pool import (
    SweepResult,
    SweepRunner,
    autodetect_workers,
    run_spec,
)
from repro.experiments.sweep.shard import (
    ShardIncompleteError,
    ShardSpec,
    lease_partition,
)
from repro.experiments.sweep.sweep import Job, SweepSpec, canonicalize

__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "BatchBackend",
    "DistributedBackend",
    "ExecutionBackend",
    "Job",
    "MergeReport",
    "ResultCache",
    "RunConfig",
    "ShardIncompleteError",
    "ShardSpec",
    "SweepManifest",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "add_runner_arguments",
    "autodetect_workers",
    "canonicalize",
    "create_backend",
    "discover_shard_manifests",
    "grid_digest",
    "lease_partition",
    "merge_shards",
    "payload_digest",
    "run_spec",
]
