"""Parallel sweep orchestration for the experiment harnesses.

The subsystem has three layers plus a CLI:

* :mod:`repro.experiments.sweep.sweep` — declarative :class:`SweepSpec` /
  :class:`Job` grids with stable fingerprints and per-job RNG derivation;
* :mod:`repro.experiments.sweep.pool` — :class:`SweepRunner`, a
  ``multiprocessing`` executor with worker autodetection and a serial
  fallback;
* :mod:`repro.experiments.sweep.cache` — :class:`ResultCache`, an on-disk
  JSON store keyed by job fingerprints;
* :mod:`repro.experiments.sweep.cli` — ``python -m repro.experiments`` to
  run any figure by name with ``--workers`` / ``--cache-dir`` / ``--no-cache``.
"""

from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.pool import (
    SweepResult,
    SweepRunner,
    autodetect_workers,
    run_spec,
)
from repro.experiments.sweep.sweep import Job, SweepSpec, canonicalize

__all__ = [
    "Job",
    "ResultCache",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "autodetect_workers",
    "canonicalize",
    "run_spec",
]
