"""The unified run configuration behind every sweep-runner entry point.

:class:`RunConfig` is the one object that describes *how* a sweep
executes — parallelism, backend, cache, manifest, resume, shard, and
lease granularity — separated from *what* executes (the
:class:`~repro.experiments.sweep.sweep.SweepSpec`).  Before this module
existed the same six keyword arguments were re-plumbed through four CLI
front ends and :class:`~repro.experiments.sweep.pool.SweepRunner`
individually, and each front end exposed a slightly different subset of
flags.  Now there is exactly one source of truth, used three ways:

* ``SweepRunner(config=RunConfig(...))`` — the programmatic API (the old
  keyword form is accepted-but-deprecated via one adapter in
  :mod:`repro.experiments.sweep.pool`);
* :func:`add_runner_arguments` — registers the shared CLI flag set
  (``--workers/--cache-dir/--no-cache/--backend/--manifest-dir/--resume/
  --shard/--jobs-per-lease``) on any argparse parser, so
  ``python -m repro.experiments``, ``python -m repro.scenarios run``,
  ``python -m repro.models train/eval``, and the distributed
  ``worker``/``coordinate`` subcommands behave identically;
* :meth:`RunConfig.from_args` — turns the parsed namespace back into a
  validated config, applying the same defaulting rules everywhere
  (autodetected workers, ``<cache-dir>/manifests``).

Validation lives in ``__post_init__`` so a bad combination fails at
construction time with the same :class:`~repro.errors.SweepError`
messages the runner has always raised.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.errors import SweepError
from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.shard import ShardSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pool -> config)
    from repro.experiments.sweep.backends import ExecutionBackend


def autodetect_workers() -> int:
    """Number of workers to use when none is specified: one per CPU."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class RunConfig:
    """Frozen description of how a sweep executes.

    Parameters
    ----------
    workers:
        Requested parallelism; ``None`` autodetects one worker per CPU,
        ``1`` runs serially.
    cache:
        Optional :class:`ResultCache`; payloads are looked up before
        execution and written as each job completes.
    backend:
        ``None`` (process pool when ``workers > 1``, else serial), a
        registered backend name (see
        :data:`~repro.experiments.sweep.backends.BACKEND_NAMES`), or an
        :class:`~repro.experiments.sweep.backends.ExecutionBackend`
        instance (for example a configured
        :class:`~repro.experiments.sweep.distributed.DistributedBackend`).
    manifest_dir:
        Directory for per-sweep checkpoint manifests; ``None`` disables
        manifests (and therefore ``resume``).
    resume:
        Reload an existing manifest and skip its completed jobs after
        digest-verifying their cached payloads.  Requires ``cache`` and
        ``manifest_dir``.
    shard:
        Execute only the grid slice this :class:`ShardSpec` owns.
    jobs_per_lease:
        Lease granularity for the batch and distributed backends: how
        many jobs travel per worker round-trip.  ``None`` lets each
        backend pick its own default; other backends ignore it.
    """

    workers: Optional[int] = 1
    cache: Optional[ResultCache] = None
    backend: Union[str, "ExecutionBackend", None] = None
    manifest_dir: Union[str, os.PathLike, None] = None
    resume: bool = False
    shard: Optional[ShardSpec] = None
    jobs_per_lease: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise SweepError(f"workers must be >= 1, got {self.workers}")
        if self.resume and self.manifest_dir is None:
            raise SweepError("resume requires a manifest_dir")
        if self.resume and self.cache is None:
            raise SweepError(
                "resume requires a cache (manifests record digests, payloads "
                "live in the result cache)"
            )
        if self.jobs_per_lease is not None and self.jobs_per_lease < 1:
            raise SweepError(
                f"jobs_per_lease must be >= 1, got {self.jobs_per_lease}"
            )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "RunConfig":
        """Build a validated config from :func:`add_runner_arguments` flags.

        Applies the shared defaulting rules: ``--workers`` falls back to
        one worker per CPU, the manifest directory falls back to
        ``<cache-dir>/manifests`` whenever the cache is enabled, and
        ``--backend auto`` maps to ``None`` (the runner's default
        policy).  Flags a particular parser chose not to register are
        treated as their defaults, so every front end can share this one
        constructor.
        """
        no_cache = bool(getattr(args, "no_cache", False))
        cache_dir = getattr(args, "cache_dir", None)
        cache = None if (no_cache or cache_dir is None) else ResultCache(cache_dir)
        resume = bool(getattr(args, "resume", False))
        shard = getattr(args, "shard", None)
        if cache is None and (resume or shard is not None):
            raise SweepError(
                "--resume and --shard need the result cache; drop --no-cache"
            )
        manifest_dir = getattr(args, "manifest_dir", None)
        if manifest_dir is not None:
            manifest_dir = Path(manifest_dir)
        elif cache is not None:
            manifest_dir = Path(cache_dir) / "manifests"
        backend = getattr(args, "backend", "auto")
        workers = getattr(args, "workers", None)
        return cls(
            workers=workers if workers is not None else autodetect_workers(),
            cache=cache,
            backend=None if backend in (None, "auto") else backend,
            manifest_dir=manifest_dir,
            resume=resume,
            shard=shard,
            jobs_per_lease=getattr(args, "jobs_per_lease", None),
        )

    def with_backend(self, backend: Union[str, "ExecutionBackend", None]) -> "RunConfig":
        """Return a copy of this config pinned to ``backend``."""
        return replace(self, backend=backend)


def positive_int(text: str) -> int:
    """Argparse type for integer flags that must be >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def shard_arg(text: str) -> ShardSpec:
    """Parse ``--shard I/N``, mapping SweepError onto a clean usage error."""
    try:
        return ShardSpec.parse(text)
    except SweepError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def add_runner_arguments(
    parser: argparse.ArgumentParser,
    *,
    cache: bool = True,
    manifest: bool = True,
    shard: bool = True,
    lease: bool = True,
) -> None:
    """Register the shared sweep-runner flag set on ``parser``.

    This is the single source of the runner CLI surface: every front end
    (``repro.experiments``, ``repro.scenarios run/matrix``,
    ``repro.models train/eval``, and the distributed ``worker``/
    ``coordinate`` subcommands) calls this function, so the flags spell,
    default, and validate identically everywhere.  The keyword toggles
    let a front end drop a *group* of flags it cannot honour (the
    distributed worker, for example, never touches disk and therefore
    takes no cache/manifest/shard flags) without redefining the rest.
    """
    from repro.experiments.sweep.backends import BACKEND_NAMES

    parser.add_argument(
        "--workers",
        type=positive_int,
        default=None,
        metavar="N",
        help="worker processes (default: one per CPU; 1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto",) + BACKEND_NAMES,
        default="auto",
        help="execution backend (default: process pool when workers > 1)",
    )
    if cache:
        parser.add_argument(
            "--cache-dir",
            default=".sweep-cache",
            metavar="DIR",
            help="on-disk result cache location (default: %(default)s)",
        )
        parser.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the result cache entirely",
        )
    if manifest:
        parser.add_argument(
            "--manifest-dir",
            default=None,
            metavar="DIR",
            help="sweep manifest location (default: <cache-dir>/manifests)",
        )
        parser.add_argument(
            "--resume",
            action="store_true",
            help="skip jobs an existing manifest records complete "
            "(digest-verified against the cache)",
        )
    if shard:
        parser.add_argument(
            "--shard",
            type=shard_arg,
            default=None,
            metavar="I/N",
            help="execute only shard I of N (fingerprint-hash partition); "
            "fuse shards afterwards with the merge-shards subcommand",
        )
    if lease:
        parser.add_argument(
            "--jobs-per-lease",
            type=positive_int,
            default=None,
            metavar="N",
            help="jobs per lease for the batch/distributed backends "
            "(default: backend-specific)",
        )


__all__ = [
    "RunConfig",
    "add_runner_arguments",
    "autodetect_workers",
    "positive_int",
    "shard_arg",
]
