"""Pluggable execution backends for the sweep runner.

The package exposes a tiny registry mapping stable names to
:class:`~repro.experiments.sweep.backends.base.ExecutionBackend`
implementations:

========== =========================================================
``serial``  one job after another in the calling process (reference)
``process`` a ``multiprocessing`` pool with a warned serial fallback
``thread``  a ``concurrent.futures`` thread pool
========== =========================================================

All backends satisfy the same contract — every pending job executed
exactly once, completions reported incrementally on the calling thread —
and all produce bit-identical payloads, because determinism lives in the
jobs (fingerprint-derived RNG streams), not in the executor.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type, Union

from repro.errors import SweepError
from repro.experiments.sweep.backends.base import ExecutionBackend, ResultCallback
from repro.experiments.sweep.backends.process import ProcessPoolBackend
from repro.experiments.sweep.backends.serial import SerialBackend
from repro.experiments.sweep.backends.thread import ThreadPoolBackend

#: Registered backend classes, keyed by their stable names.
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    backend.name: backend
    for backend in (SerialBackend, ProcessPoolBackend, ThreadPoolBackend)
}

#: Backend names in stable (sorted) order, for CLI choices and docs.
BACKEND_NAMES: Tuple[str, ...] = tuple(sorted(BACKENDS))


def create_backend(spec: Union[str, ExecutionBackend, None], workers: int) -> ExecutionBackend:
    """Resolve a backend argument to an instance.

    ``None`` selects the default policy: the process pool when more than
    one worker is requested, otherwise serial.  A string is looked up in
    the registry; an :class:`ExecutionBackend` instance passes through.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        return ProcessPoolBackend() if workers > 1 else SerialBackend()
    try:
        return BACKENDS[spec]()
    except KeyError:
        raise SweepError(
            f"unknown execution backend {spec!r}; choose from {', '.join(BACKEND_NAMES)}"
        ) from None


__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "ResultCallback",
    "SerialBackend",
    "ThreadPoolBackend",
    "create_backend",
]
