"""Pluggable execution backends for the sweep runner.

The package exposes a tiny registry mapping stable names to
:class:`~repro.experiments.sweep.backends.base.ExecutionBackend`
implementations:

========== =========================================================
``serial``  one job after another in the calling process (reference)
``process`` a ``multiprocessing`` pool with a warned serial fallback
``thread``  a ``concurrent.futures`` thread pool
``batch``   the process pool, dispatching job *groups* per round-trip
========== =========================================================

The distributed coordinator backend
(:class:`~repro.experiments.sweep.distributed.DistributedBackend`) also
implements the protocol but is not name-registered — it needs host/port
configuration, so it is constructed explicitly (or via the
``coordinate`` subcommand) and passed as an instance.

All backends satisfy the same contract — every pending job executed
exactly once, completions reported incrementally on the calling thread —
and all produce bit-identical payloads, because determinism lives in the
jobs (fingerprint-derived RNG streams), not in the executor.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type, Union

from repro.errors import SweepError
from repro.experiments.sweep.backends.base import ExecutionBackend, ResultCallback
from repro.experiments.sweep.backends.batch import BatchBackend
from repro.experiments.sweep.backends.process import ProcessPoolBackend
from repro.experiments.sweep.backends.serial import SerialBackend
from repro.experiments.sweep.backends.thread import ThreadPoolBackend

#: Registered backend classes, keyed by their stable names.
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    backend.name: backend
    for backend in (SerialBackend, ProcessPoolBackend, ThreadPoolBackend, BatchBackend)
}

#: Backend names in stable (sorted) order, for CLI choices and docs.
BACKEND_NAMES: Tuple[str, ...] = tuple(sorted(BACKENDS))


def create_backend(
    spec: Union[str, ExecutionBackend, None],
    workers: int,
    jobs_per_lease: Optional[int] = None,
) -> ExecutionBackend:
    """Resolve a backend argument to an instance.

    ``None`` selects the default policy: the process pool when more than
    one worker is requested, otherwise serial.  A string is looked up in
    the registry; an :class:`ExecutionBackend` instance passes through.
    ``jobs_per_lease`` configures lease granularity for backends that
    batch dispatch (currently ``batch``); others ignore it.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        return ProcessPoolBackend() if workers > 1 else SerialBackend()
    try:
        cls = BACKENDS[spec]
    except KeyError:
        raise SweepError(
            f"unknown execution backend {spec!r}; choose from {', '.join(BACKEND_NAMES)}"
        ) from None
    if cls is BatchBackend:
        return BatchBackend(jobs_per_lease=jobs_per_lease)
    return cls()


__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "BatchBackend",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "ResultCallback",
    "SerialBackend",
    "ThreadPoolBackend",
    "create_backend",
]
