"""Batched multiprocessing dispatch: job *groups* per worker round-trip.

The plain process backend pays one pickle/unpickle/IPC round-trip per
job, which dominates wall clock on grids of many short jobs — the
committed scaling benchmark recorded a 0.96x "speedup" at 2 workers for
exactly this reason.  :class:`BatchBackend` fixes the dispatch economics
without touching the determinism contract:

* jobs are grouped into leases by
  :func:`~repro.experiments.sweep.shard.lease_partition` — the same
  deterministic fingerprint-hash assignment shards use, so the grouping
  never depends on grid order or machine;
* each pool task executes one whole group and returns its results as one
  vector of ``(key, payload)`` pairs, so pickling overhead (including
  parameter objects shared across a group, which the pickler memoizes
  once per lease instead of once per job) and pool round-trips are paid
  per *lease*, not per job;
* completions are still reported incrementally on the calling thread —
  one lease at a time — so the runner's cache/manifest checkpointing
  contract is unchanged, and payloads stay bit-identical to serial
  execution because job randomness derives from job fingerprints.

``jobs_per_lease`` trades checkpoint granularity against dispatch
overhead; the default aims at a few leases per worker so the pool stays
load-balanced while round-trips are amortized.
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import List, Optional, Sequence, Tuple

from repro.errors import SweepError
from repro.experiments.sweep.backends.base import ExecutionBackend, ResultCallback
from repro.experiments.sweep.backends.serial import SerialBackend, execute_job
from repro.experiments.sweep.shard import lease_partition
from repro.experiments.sweep.sweep import Job

#: Default leases handed to each worker over a run's lifetime; a few per
#: worker keeps the pool load-balanced even when job costs are skewed.
LEASES_PER_WORKER = 4


def _execute_batch(jobs: Sequence[Job]) -> List[Tuple[str, dict]]:
    """Worker entry point: run one lease, return its ``(key, payload)`` vector."""
    return [(job.key, execute_job(job)) for job in jobs]


def default_jobs_per_lease(job_count: int, workers: int) -> int:
    """Lease size giving ~:data:`LEASES_PER_WORKER` leases per worker."""
    return max(1, -(-job_count // (max(1, workers) * LEASES_PER_WORKER)))


class BatchBackend(ExecutionBackend):
    """Fans job *groups* out over a ``multiprocessing`` pool.

    Identical contract to the process backend — every pending job
    executed exactly once, incremental completions on the calling
    thread, warned serial fallback when no pool can be created — but
    dispatch and result collection are vectorized per lease.
    """

    name = "batch"

    def __init__(self, jobs_per_lease: Optional[int] = None) -> None:
        if jobs_per_lease is not None and jobs_per_lease < 1:
            raise SweepError(
                f"jobs_per_lease must be >= 1, got {jobs_per_lease}"
            )
        self.jobs_per_lease = jobs_per_lease

    def run(
        self,
        jobs: Sequence[Job],
        workers: int,
        on_result: ResultCallback,
    ) -> int:
        """Execute ``jobs`` in leases, falling back to serial without a pool."""
        if workers <= 1:
            return SerialBackend().run(jobs, 1, on_result)
        per_lease = (
            self.jobs_per_lease
            if self.jobs_per_lease is not None
            else default_jobs_per_lease(len(jobs), workers)
        )
        groups = lease_partition(jobs, per_lease)
        try:
            pool = multiprocessing.get_context().Pool(processes=workers)
        except Exception as exc:  # daemonic nesting, missing sem_open, ...
            warnings.warn(
                f"sweep: cannot create a {workers}-worker pool ({exc}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return SerialBackend().run(jobs, 1, on_result)
        by_key = {job.key: job for job in jobs}
        try:
            with pool:
                for results in pool.imap_unordered(_execute_batch, groups):
                    for key, payload in results:
                        on_result(by_key[key], payload)
        finally:
            pool.join()
        return workers
