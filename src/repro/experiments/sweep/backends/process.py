"""Multiprocessing pool execution with a warned serial fallback.

This is the backend behind ``--workers N`` (N > 1): jobs are pickled into a
``multiprocessing`` pool and their payloads stream back through
``imap_unordered``, so the caller checkpoints each result as soon as the
pool delivers it.  When a pool cannot be created at all (no ``fork``/
semaphore support, or the runner is already inside a daemonic worker) the
backend degrades to serial execution with a warning — results are
bit-identical either way.
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import Sequence, Tuple

from repro.experiments.sweep.backends.base import ExecutionBackend, ResultCallback
from repro.experiments.sweep.backends.serial import SerialBackend, execute_job
from repro.experiments.sweep.sweep import Job


def _execute_job(job: Job) -> Tuple[str, dict]:
    """Worker entry point: run one job, return ``(key, payload)``."""
    return job.key, execute_job(job)


class ProcessPoolBackend(ExecutionBackend):
    """Fans jobs out over a ``multiprocessing`` pool of worker processes.

    Results are consumed in completion order in the parent process, so
    ``on_result`` (and therefore every cache/manifest write) runs in the
    parent only — workers never see the cache.
    """

    name = "process"

    def run(
        self,
        jobs: Sequence[Job],
        workers: int,
        on_result: ResultCallback,
    ) -> int:
        """Execute ``jobs`` on a pool, falling back to serial if none exists."""
        if workers <= 1:
            return SerialBackend().run(jobs, 1, on_result)
        try:
            pool = multiprocessing.get_context().Pool(processes=workers)
        except Exception as exc:  # daemonic nesting, missing sem_open, ...
            warnings.warn(
                f"sweep: cannot create a {workers}-worker pool ({exc}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return SerialBackend().run(jobs, 1, on_result)
        by_key = {job.key: job for job in jobs}
        try:
            with pool:
                for key, payload in pool.imap_unordered(_execute_job, jobs):
                    on_result(by_key[key], payload)
        finally:
            pool.join()
        return workers
