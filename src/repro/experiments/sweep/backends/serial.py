"""In-process serial execution — the default and the universal fallback."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.sweep.backends.base import ExecutionBackend, ResultCallback
from repro.experiments.sweep.sweep import Job


def execute_job(job: Job) -> Dict[str, object]:
    """Run one job in the current process and return its payload.

    Module-level so the process-pool backend can reuse it as its worker
    entry point (the function must be picklable by dotted path).
    """
    return job.execute()


class SerialBackend(ExecutionBackend):
    """Runs every job in the calling process, one after the other.

    This is the reference implementation of the execution contract: the
    other backends must be observationally equivalent to it, payload for
    payload.  It is also the backend used inside sweep workers (nested
    pools are never created) and on platforms without ``multiprocessing``
    support.
    """

    name = "serial"

    def run(
        self,
        jobs: Sequence[Job],
        workers: int,
        on_result: ResultCallback,
    ) -> int:
        """Execute ``jobs`` sequentially in grid order; always returns 1."""
        for job in jobs:
            on_result(job, execute_job(job))
        return 1
