"""The :class:`ExecutionBackend` protocol every sweep backend implements.

A backend is a *strategy for executing pending jobs*: it receives the jobs
that survived cache and manifest filtering, runs them in whatever execution
domain it manages (in-process, a process pool, a thread pool, ...), and
reports each completed job through a callback **from the caller's thread of
control**.  That last point is the checkpointing contract: because
``on_result`` fires incrementally as jobs finish — not in one batch at the
end — the runner can persist every payload to the result cache and the
sweep manifest the moment it exists, so an interrupted sweep loses at most
the jobs that were in flight.

Backends never touch the cache or the manifest themselves, and they never
reorder or filter the results semantically: every job in ``jobs`` must be
reported exactly once (in any completion order).  Determinism is owned by
the jobs — each derives its RNG stream from its own fingerprint — so a
spec produces bit-identical payloads on every backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Sequence

from repro.experiments.sweep.sweep import Job

#: Callback invoked once per completed job with ``(job, payload)``.  Always
#: called from the thread that invoked :meth:`ExecutionBackend.run`, so the
#: caller may perform cache and manifest writes without locking.
ResultCallback = Callable[[Job, Dict[str, object]], None]


class ExecutionBackend(ABC):
    """Strategy interface for executing the pending jobs of one sweep.

    Subclasses set :attr:`name` (the registry key and the ``--backend``
    CLI value) and implement :meth:`run`.  Instances are stateless between
    :meth:`run` calls and may be reused across specs.
    """

    #: Registry key; subclasses override with a short stable identifier.
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        jobs: Sequence[Job],
        workers: int,
        on_result: ResultCallback,
    ) -> int:
        """Execute ``jobs``, reporting each completion through ``on_result``.

        Parameters
        ----------
        jobs:
            Pending jobs, already filtered by cache/manifest/shard.  Each
            must be executed exactly once.
        workers:
            Requested degree of parallelism (already clamped to
            ``len(jobs)`` by the runner); backends without parallelism
            ignore it.
        on_result:
            Invoked with ``(job, payload)`` as each job completes, from
            the calling thread, so the caller can checkpoint immediately.

        Returns
        -------
        int
            The degree of parallelism actually achieved (1 after a
            fallback to serial execution), reported as
            ``SweepResult.workers_used``.
        """
