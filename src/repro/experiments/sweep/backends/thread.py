"""Thread-pool execution for jobs that release the GIL or block on I/O.

Simulation jobs are pure Python and therefore GIL-bound — for them the
process backend is the one that actually scales.  The thread backend earns
its keep where process pools cannot go: platforms without ``fork``/
semaphore support, jobs dominated by I/O or native code, and debugging
(breakpoints and shared state work, nothing is pickled).

Safety relies on two standing guarantees: :meth:`Job.execute` deep-copies
the parameters before calling the job function (so concurrently running
jobs never share mutable state, even when specs share a ``setup`` object),
and each job's RNG stream is derived from its own fingerprint (so
scheduling order cannot leak into results).  Completed futures are drained
on the calling thread, which is where ``on_result`` fires — the
checkpointing contract of :mod:`~repro.experiments.sweep.backends.base`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Sequence

from repro.experiments.sweep.backends.base import ExecutionBackend, ResultCallback
from repro.experiments.sweep.backends.serial import execute_job
from repro.experiments.sweep.sweep import Job


class ThreadPoolBackend(ExecutionBackend):
    """Fans jobs out over a ``concurrent.futures`` thread pool."""

    name = "thread"

    def run(
        self,
        jobs: Sequence[Job],
        workers: int,
        on_result: ResultCallback,
    ) -> int:
        """Execute ``jobs`` on ``workers`` threads, draining incrementally.

        Fails fast: when a job raises, the not-yet-started jobs are
        cancelled before the exception propagates (matching the serial and
        process backends, which stop dispatching on the first failure).
        """
        workers = max(1, workers)
        with ThreadPoolExecutor(max_workers=workers) as executor:
            pending = {executor.submit(execute_job, job): job for job in jobs}
            try:
                for future in as_completed(pending):
                    on_result(pending[future], future.result())
            except BaseException:
                executor.shutdown(wait=True, cancel_futures=True)
                raise
        return workers
