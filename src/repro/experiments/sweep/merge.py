"""Fusing shard manifests back into one complete, verified result set.

``merge-shards`` is the second half of the sharding contract: N CI jobs
each run ``--shard i/N`` against their own cache, upload the cache and
manifest directories, and a final job calls :func:`merge_shards` over the
downloaded pile.  The merge refuses to produce a result set unless the
shards provably cover the grid:

* every manifest describes the **same grid** (same spec name and grid
  digest) and the **same shard count**;
* the shard indices form the **complete set** ``1..N`` with no duplicates;
* every shard has a completion record for **every job it owns** under the
  fingerprint-hash partition (disjointness is inherent in the partition;
  a job two shards both executed — via warm caches — must have **agreeing
  digests**, a free cross-shard determinism check);
* every payload is **present in the cache and byte-identical** to the
  digest its shard recorded.

On success the merge writes a fused (shard-free) manifest, so a subsequent
``--resume`` run over the merged cache skips every job, and returns a
:class:`MergeReport` whose ``checksum`` digests the per-job payload
digests in grid order — the value the CI determinism gate compares against
the committed expectation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SweepError
from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.manifest import (
    MANIFEST_SUFFIX,
    SweepManifest,
    _safe_name,
    payload_digest,
)
from repro.experiments.sweep.shard import ShardSpec


@dataclass
class MergeReport:
    """Outcome of one successful :func:`merge_shards` call."""

    spec_name: str
    grid_digest: str
    shard_count: int
    #: ``(key, digest)`` pairs in grid order — the merged result identity.
    per_job: List[Tuple[str, str]] = field(default_factory=list)
    #: Path of the fused manifest written next to the shard manifests.
    merged_manifest: Optional[Path] = None

    @property
    def jobs(self) -> int:
        """Number of jobs in the merged grid."""
        return len(self.per_job)

    @property
    def checksum(self) -> str:
        """SHA-256 over the per-job digests in grid order."""
        blob = json.dumps(
            [[key, digest] for key, digest in self.per_job], separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def check_document(self) -> Dict[str, object]:
        """The JSON document the CI determinism gate commits and compares."""
        return {
            "spec": self.spec_name,
            "grid_digest": self.grid_digest,
            "jobs": self.jobs,
            "checksum": self.checksum,
            "per_job": {key: digest for key, digest in self.per_job},
        }

    def compare(self, expected: Dict[str, object]) -> List[str]:
        """Differences between this merge and a committed check document."""
        actual = self.check_document()
        problems: List[str] = []
        for field_name in ("spec", "grid_digest", "jobs", "checksum"):
            if actual[field_name] != expected.get(field_name):
                problems.append(
                    f"{field_name}: expected {expected.get(field_name)!r}, "
                    f"got {actual[field_name]!r}"
                )
        expected_jobs = expected.get("per_job")
        if isinstance(expected_jobs, dict):
            for key, digest in actual["per_job"].items():  # type: ignore[union-attr]
                want = expected_jobs.get(key)
                if want != digest:
                    problems.append(
                        f"job {key!r}: expected digest {want!r}, got {digest!r}"
                    )
            for key in expected_jobs:
                if key not in actual["per_job"]:  # type: ignore[operator]
                    problems.append(f"job {key!r}: missing from merged results")
        return problems


def discover_shard_manifests(
    directory: Union[str, Path], spec_name: Optional[str] = None
) -> List[SweepManifest]:
    """Load every shard manifest under ``directory`` (optionally one spec's).

    Merged (shard-free) manifests are ignored, so a merge can be re-run
    over a directory that already contains its own output.
    """
    manifests = []
    for path in sorted(Path(directory).glob(f"*{MANIFEST_SUFFIX}")):
        manifest = SweepManifest.load(path)
        if manifest.shard is None:
            continue
        if spec_name is not None and manifest.spec_name != spec_name:
            continue
        manifests.append(manifest)
    return manifests


def _validate_shard_set(manifests: Sequence[SweepManifest]) -> int:
    """Check the manifests form one complete shard family; return its count."""
    if not manifests:
        raise SweepError("merge-shards: no shard manifests found")
    names = {manifest.spec_name for manifest in manifests}
    if len(names) > 1:
        raise SweepError(
            f"merge-shards: manifests span multiple sweeps {sorted(names)}; "
            "pass --spec to select one"
        )
    digests = {manifest.grid_digest for manifest in manifests}
    if len(digests) > 1:
        raise SweepError(
            "merge-shards: manifests describe different grids "
            f"({len(digests)} distinct grid digests); shards must come from "
            "identical sweep invocations"
        )
    counts = {manifest.shard.count for manifest in manifests}  # type: ignore[union-attr]
    if len(counts) > 1:
        raise SweepError(
            f"merge-shards: inconsistent shard counts {sorted(counts)}"
        )
    count = counts.pop()
    indices = sorted(manifest.shard.index for manifest in manifests)  # type: ignore[union-attr]
    if len(indices) != len(set(indices)):
        raise SweepError(f"merge-shards: duplicate shard indices {indices}")
    missing = sorted(set(range(1, count + 1)) - set(indices))
    if missing:
        raise SweepError(
            f"merge-shards: missing shard(s) {missing} of {count}; "
            f"found indices {indices}"
        )
    return count


def merge_shards(
    manifests: Sequence[SweepManifest],
    cache: Optional[ResultCache] = None,
    out_dir: Optional[Union[str, Path]] = None,
) -> MergeReport:
    """Validate a complete shard family and fuse it into one result set.

    ``cache`` (when given) is the merged payload store the fused results
    are verified against, byte for byte.  ``out_dir`` (default: the
    directory of the first manifest) receives the fused manifest.
    """
    count = _validate_shard_set(manifests)
    ordered = sorted(manifests, key=lambda manifest: manifest.shard.index)  # type: ignore[union-attr]
    grid = ordered[0].grid
    keys = ordered[0].keys_by_fingerprint

    merged: Dict[str, str] = {}
    problems: List[str] = []
    for manifest in ordered:
        owner = ShardSpec(index=manifest.shard.index, count=count)  # type: ignore[union-attr]
        owned = [fp for _, fp in grid if owner.owns(fp)]
        missing = [fp for fp in owned if fp not in manifest.completed]
        if missing:
            problems.append(
                f"shard {owner.label} is incomplete: missing "
                f"{len(missing)}/{len(owned)} owned job(s) "
                f"({', '.join(sorted(keys[fp] for fp in missing))})"
            )
        for fingerprint, digest in manifest.completed.items():
            previous = merged.get(fingerprint)
            if previous is not None and previous != digest:
                problems.append(
                    f"job {keys.get(fingerprint, fingerprint)!r}: shards disagree "
                    f"on the payload digest ({previous[:12]}… vs {digest[:12]}…)"
                )
            merged[fingerprint] = digest
    uncovered = [keys[fp] for _, fp in grid if fp not in merged]
    if uncovered:
        problems.append(
            f"{len(uncovered)} job(s) completed by no shard: {sorted(uncovered)}"
        )
    if cache is not None and not problems:
        for key, fingerprint in grid:
            payload = cache.get(fingerprint)
            if payload is None:
                problems.append(f"job {key!r}: payload missing from the cache")
            elif payload_digest(payload) != merged[fingerprint]:
                problems.append(
                    f"job {key!r}: cached payload does not match the digest "
                    "its shard recorded"
                )
    if problems:
        raise SweepError(
            "merge-shards validation failed:\n  - " + "\n  - ".join(problems)
        )

    report = MergeReport(
        spec_name=ordered[0].spec_name,
        grid_digest=ordered[0].grid_digest,
        shard_count=count,
        per_job=[(key, merged[fingerprint]) for key, fingerprint in grid],
    )
    directory = Path(out_dir) if out_dir is not None else ordered[0].path.parent
    # Rebuild the stem exactly as SweepManifest.path_for does, so the fused
    # manifest is the one a subsequent --resume run of the same grid finds.
    stem = f"{_safe_name(ordered[0].spec_name)}-{ordered[0].grid_digest[:12]}"
    fused = SweepManifest(
        path=directory / f"{stem}{MANIFEST_SUFFIX}",
        spec_name=ordered[0].spec_name,
        grid=list(grid),
        shard=None,
        completed=merged,
    )
    fused._rewrite()
    report.merged_manifest = fused.path
    return report


def fused_results(
    report: MergeReport, manifests: Sequence[SweepManifest], cache: ResultCache
) -> Dict[str, object]:
    """Full merged results document (payloads included), in grid order."""
    ordered = sorted(manifests, key=lambda manifest: manifest.shard.index)  # type: ignore[union-attr]
    results: Dict[str, Dict[str, object]] = {}
    for key, fingerprint in ordered[0].grid:
        payload = cache.get(fingerprint)
        if payload is None:
            raise SweepError(f"job {key!r}: payload missing from the cache")
        results[key] = payload
    return {
        "spec": report.spec_name,
        "grid_digest": report.grid_digest,
        "checksum": report.checksum,
        "results": results,
    }
