"""Deterministic sharding: partitioning a sweep grid by fingerprint hash.

A shard is described as ``index/count`` (1-based, e.g. ``2/3``) and owns
every job whose fingerprint, read as a hexadecimal integer, is congruent to
``index - 1`` modulo ``count``.  Because the fingerprint depends only on
the job's function, parameters, and seed, the partition is

* **disjoint and complete** — every job belongs to exactly one shard;
* **order-insensitive** — shuffling the grid, or building it twice, never
  moves a job between shards;
* **machine-independent** — three CI jobs given ``1/3``, ``2/3``, ``3/3``
  agree on ownership without talking to each other.

Shard *balance* is statistical, not exact: SHA-256 residues spread jobs
uniformly, so shards of a large grid are near-equal, but a small grid may
give one shard an extra job (or, degenerately, some shard none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import SweepError
from repro.experiments.sweep.sweep import Job


class ShardIncompleteError(SweepError):
    """A payload was requested that this shard did not own or execute.

    Raised when code consumes the result of a sharded run as if it were
    complete (for example a figure harness building its report).  The
    remaining payloads live in the sibling shards; fuse them with
    ``python -m repro.experiments merge-shards`` and re-run with a warm
    cache, or run without ``--shard``.
    """


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a sharded sweep: shard ``index`` of ``count`` (1-based)."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SweepError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise SweepError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"index/count"`` (for example ``"2/3"``)."""
        head, sep, tail = text.partition("/")
        try:
            if not sep:
                raise ValueError(text)
            return cls(index=int(head), count=int(tail))
        except ValueError:
            raise SweepError(
                f"invalid shard {text!r}: expected INDEX/COUNT, e.g. 2/3"
            ) from None

    @property
    def label(self) -> str:
        """Canonical rendering, ``"index/count"``."""
        return f"{self.index}/{self.count}"

    def owns(self, fingerprint: str) -> bool:
        """Whether the job with ``fingerprint`` belongs to this shard."""
        return int(fingerprint, 16) % self.count == self.index - 1


def partition(jobs: Sequence[Job], count: int) -> List[List[Job]]:
    """Split ``jobs`` into the ``count`` shards their fingerprints select.

    Returns one list per shard index (1..count), preserving each shard's
    grid order.  This is the same assignment every :class:`ShardSpec`
    computes independently; it exists for tests and capacity planning.
    """
    if count < 1:
        raise SweepError(f"shard count must be >= 1, got {count}")
    shards: List[List[Job]] = [[] for _ in range(count)]
    for job in jobs:
        shards[int(job.fingerprint(), 16) % count].append(job)
    return shards


def lease_partition(jobs: Sequence[Job], jobs_per_lease: int) -> List[List[Job]]:
    """Group ``jobs`` into leases of roughly ``jobs_per_lease`` each.

    This is the grouping behind batched dispatch (the ``batch`` backend)
    and distributed work leases: the job list is split into
    ``ceil(len(jobs) / jobs_per_lease)`` groups by the same
    fingerprint-hash assignment :func:`partition` uses for shards, so the
    grouping is deterministic, order-insensitive, and machine-independent
    — every coordinator computes the same leases for the same grid.
    Empty groups are dropped; like shard balance, group sizes are
    statistical, so a group may hold a few more (or fewer) jobs than
    requested.
    """
    if jobs_per_lease < 1:
        raise SweepError(f"jobs_per_lease must be >= 1, got {jobs_per_lease}")
    if not jobs:
        return []
    count = max(1, -(-len(jobs) // jobs_per_lease))
    return [group for group in partition(jobs, count) if group]


def ownership(jobs: Sequence[Job], count: int) -> Dict[str, int]:
    """Map each job fingerprint to its owning 1-based shard index."""
    return {
        job.fingerprint(): int(job.fingerprint(), 16) % count + 1 for job in jobs
    }
