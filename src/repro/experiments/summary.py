"""Section 6 headline numbers.

The paper's headline claim: "Across all SoC configurations, Cohmeleon gives
an average speedup of 38 % with a 66 % reduction in off-chip memory
accesses when compared to the five fixed policies" (the four fixed
homogeneous policies plus the profiled fixed-heterogeneous policy).  This
module aggregates a Figure 9 style sweep into those two numbers, plus the
comparison against the manually-tuned runtime heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import ExperimentError
from repro.experiments.socs import SocComparisonPoint, SocComparisonResult
from repro.utils.stats import geometric_mean, mean

#: The design-time baselines the headline numbers are computed against.
FIXED_POLICY_NAMES = (
    "fixed-non-coh-dma",
    "fixed-llc-coh-dma",
    "fixed-coh-dma",
    "fixed-full-coh",
    "fixed-hetero",
)


@dataclass
class HeadlineSummary:
    """The paper's headline comparison, computed from a SoC sweep."""

    #: Average speedup of Cohmeleon over the fixed policies (0.38 = 38 %).
    speedup_vs_fixed: float
    #: Average reduction of off-chip accesses vs the fixed policies.
    mem_reduction_vs_fixed: float
    #: Execution-time ratio of Cohmeleon to the manual heuristic (1.0 = match).
    exec_vs_manual: float
    #: Off-chip access ratio of Cohmeleon to the manual heuristic.
    mem_vs_manual: float
    #: Per-SoC speedups (diagnostics).
    per_soc_speedup: Dict[str, float]
    per_soc_mem_reduction: Dict[str, float]


def _points_by_policy(
    points: Iterable[SocComparisonPoint],
) -> Dict[str, Dict[str, SocComparisonPoint]]:
    table: Dict[str, Dict[str, SocComparisonPoint]] = {}
    for point in points:
        table.setdefault(point.soc_label, {})[point.policy_name] = point
    return table


def summarize_headline(
    comparison: SocComparisonResult,
    fixed_policies: Sequence[str] = FIXED_POLICY_NAMES,
    subject_policy: str = "cohmeleon",
    manual_policy: str = "manual",
) -> HeadlineSummary:
    """Aggregate a Figure 9 sweep into the Section 6 headline numbers."""
    per_soc = _points_by_policy(comparison.points)
    if not per_soc:
        raise ExperimentError("the SoC comparison contains no data points")

    per_soc_speedup: Dict[str, float] = {}
    per_soc_reduction: Dict[str, float] = {}
    exec_vs_manual: List[float] = []
    mem_vs_manual: List[float] = []

    for soc_label, policies in per_soc.items():
        subject = policies.get(subject_policy)
        if subject is None:
            raise ExperimentError(f"no {subject_policy!r} point for {soc_label}")
        speedups: List[float] = []
        reductions: List[float] = []
        for fixed_name in fixed_policies:
            fixed_point = policies.get(fixed_name)
            if fixed_point is None:
                continue
            if subject.norm_exec > 0:
                speedups.append(fixed_point.norm_exec / subject.norm_exec)
            if fixed_point.norm_mem > 0:
                reductions.append(max(0.0, 1.0 - subject.norm_mem / fixed_point.norm_mem))
            elif subject.norm_mem == 0:
                reductions.append(0.0)
        if speedups:
            per_soc_speedup[soc_label] = geometric_mean(speedups) - 1.0
        if reductions:
            per_soc_reduction[soc_label] = mean(reductions)

        manual_point = policies.get(manual_policy)
        if manual_point is not None and manual_point.norm_exec > 0:
            exec_vs_manual.append(subject.norm_exec / manual_point.norm_exec)
            # Guard against near-zero access counts (a SoC where the manual
            # policy causes essentially no off-chip traffic would otherwise
            # dominate the ratio).
            if manual_point.norm_mem > 0.01:
                mem_vs_manual.append(subject.norm_mem / manual_point.norm_mem)

    return HeadlineSummary(
        speedup_vs_fixed=mean(list(per_soc_speedup.values())),
        mem_reduction_vs_fixed=mean(list(per_soc_reduction.values())),
        exec_vs_manual=geometric_mean(exec_vs_manual) if exec_vs_manual else 0.0,
        mem_vs_manual=geometric_mean(mem_vs_manual) if mem_vs_manual else 0.0,
        per_soc_speedup=per_soc_speedup,
        per_soc_mem_reduction=per_soc_reduction,
    )
