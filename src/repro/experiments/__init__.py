"""Experiment harnesses that regenerate the paper's tables and figures.

Each module reproduces one artefact of the evaluation (see DESIGN.md for
the experiment index):

* :mod:`repro.experiments.isolation` — Figure 2 (accelerators in isolation)
  and the profiling pass behind the fixed-heterogeneous baseline;
* :mod:`repro.experiments.parallel` — Figure 3 (parallel accelerators);
* :mod:`repro.experiments.phases` — Figure 5 (phase analysis on SoC0);
* :mod:`repro.experiments.reward_dse` — Figure 6 (reward-function DSE);
* :mod:`repro.experiments.breakdown` — Figure 7 (coherence-decision
  breakdown);
* :mod:`repro.experiments.training` — Figure 8 (training-time study);
* :mod:`repro.experiments.socs` — Figure 9 (additional SoCs);
* :mod:`repro.experiments.summary` — the Section 6 headline numbers;
* :mod:`repro.experiments.overhead` — the Cohmeleon-overhead measurement.

All harnesses are deterministic given their seed and accept scaling
parameters so they can run at reduced cost inside the benchmark suite.
"""

from repro.experiments.common import (
    STANDARD_POLICY_KINDS,
    ExperimentSetup,
    PolicyEvaluation,
    build_runtime,
    evaluate_policies,
    motivation_setup,
    traffic_setup,
)

__all__ = [
    "ExperimentSetup",
    "PolicyEvaluation",
    "STANDARD_POLICY_KINDS",
    "build_runtime",
    "evaluate_policies",
    "motivation_setup",
    "traffic_setup",
]
