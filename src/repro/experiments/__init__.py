"""Experiment harnesses that regenerate the paper's tables and figures.

Each module reproduces one artefact of the evaluation (see DESIGN.md for
the experiment index):

* :mod:`repro.experiments.isolation` — Figure 2 (accelerators in isolation)
  and the profiling pass behind the fixed-heterogeneous baseline;
* :mod:`repro.experiments.parallel` — Figure 3 (parallel accelerators);
* :mod:`repro.experiments.phases` — Figure 5 (phase analysis on SoC0);
* :mod:`repro.experiments.reward_dse` — Figure 6 (reward-function DSE);
* :mod:`repro.experiments.breakdown` — Figure 7 (coherence-decision
  breakdown);
* :mod:`repro.experiments.training` — Figure 8 (training-time study);
* :mod:`repro.experiments.socs` — Figure 9 (additional SoCs);
* :mod:`repro.experiments.summary` — the Section 6 headline numbers;
* :mod:`repro.experiments.overhead` — the Cohmeleon-overhead measurement.

All harnesses are deterministic given their seed and accept scaling
parameters so they can run at reduced cost inside the benchmark suite.

Every harness accepts an optional ``runner`` (a
:class:`repro.experiments.sweep.SweepRunner`) that fans its grid out over
worker processes and caches job results on disk; ``python -m
repro.experiments <figure>`` exposes the same machinery on the command
line.
"""

from repro.experiments.common import (
    STANDARD_POLICY_KINDS,
    ExperimentSetup,
    PolicyEvaluation,
    build_runtime,
    evaluate_policies,
    motivation_setup,
    traffic_setup,
)
from repro.experiments.sweep import (
    Job,
    ResultCache,
    SweepResult,
    SweepRunner,
    SweepSpec,
    autodetect_workers,
)

__all__ = [
    "ExperimentSetup",
    "Job",
    "PolicyEvaluation",
    "ResultCache",
    "STANDARD_POLICY_KINDS",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "autodetect_workers",
    "build_runtime",
    "evaluate_policies",
    "motivation_setup",
    "traffic_setup",
]
