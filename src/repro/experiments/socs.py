"""Figure 9 — evaluation across eight SoC configurations.

The experiment repeats the policy comparison on eight platforms: SoC0
restricted to streaming traffic generators, SoC0 restricted to irregular
traffic generators, SoC1, SoC2, and SoC3 with mixed traffic generators, and
the three case-study SoCs (SoC4 mixed accelerators, SoC5 autonomous
driving, SoC6 computer vision).  Cohmeleon uses the (67.5 %, 7.5 %, 25 %)
reward function and 10 training iterations, as in the paper.  Per SoC, the
plotted values are the geometric mean over all phases of execution time and
off-chip accesses normalised to the fixed non-coherent-DMA policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.accelerators.descriptor import AccessPattern
from repro.errors import ExperimentError
from repro.experiments.common import (
    EXPERIMENT_LINE_BYTES,
    REFERENCE_POLICY,
    STANDARD_POLICY_KINDS,
    ExperimentSetup,
    PolicyEvaluation,
    evaluate_policies,
    make_standard_policies,
    traffic_setup,
)
from repro.experiments.isolation import fixed_hetero_modes
from repro.experiments.sweep import Job, SweepRunner, SweepSpec, run_spec
from repro.soc.config import soc_preset
from repro.utils.stats import geometric_mean
from repro.workloads.case_studies import case_study_accelerators, case_study_application
from repro.workloads.generator import ApplicationGenerator, GeneratorConfig
from repro.workloads.spec import ApplicationSpec

#: The eight SoC configurations of Figure 9.
FIGURE9_SOC_LABELS = (
    "SoC0-Streaming",
    "SoC0-Irregular",
    "SoC1",
    "SoC2",
    "SoC3",
    "SoC4",
    "SoC5",
    "SoC6",
)


@dataclass
class SocComparisonPoint:
    """One (SoC, policy) point of Figure 9."""

    soc_label: str
    policy_name: str
    norm_exec: float
    norm_mem: float


@dataclass
class SocComparisonResult:
    """All points of Figure 9 plus the raw evaluations."""

    points: List[SocComparisonPoint]
    evaluations: Dict[str, Dict[str, PolicyEvaluation]]

    def for_soc(self, soc_label: str) -> Dict[str, SocComparisonPoint]:
        """Points of one SoC keyed by policy name."""
        return {
            point.policy_name: point
            for point in self.points
            if point.soc_label == soc_label
        }

    def for_policy(self, policy_name: str) -> Dict[str, SocComparisonPoint]:
        """Points of one policy keyed by SoC label."""
        return {
            point.soc_label: point
            for point in self.points
            if point.policy_name == policy_name
        }


def figure9_setup(label: str, seed: int = 0) -> ExperimentSetup:
    """Build the experiment setup for one Figure 9 SoC label."""
    if label == "SoC0-Streaming":
        return traffic_setup("SoC0", pattern=AccessPattern.STREAMING, seed=seed)
    if label == "SoC0-Irregular":
        return traffic_setup("SoC0", pattern=AccessPattern.IRREGULAR, seed=seed)
    if label in ("SoC1", "SoC2", "SoC3"):
        return traffic_setup(label, seed=seed)
    if label in ("SoC4", "SoC5", "SoC6"):
        config = soc_preset(label).with_line_size(EXPERIMENT_LINE_BYTES)
        return ExperimentSetup(
            name=label,
            soc_config=config,
            accelerators=case_study_accelerators(label),
            seed=seed,
        )
    raise ExperimentError(f"unknown Figure 9 SoC label {label!r}")


def figure9_applications(
    label: str, setup: ExperimentSetup, seed: int = 0
) -> tuple:
    """Return the (training, testing) application pair for one SoC label."""
    if label in ("SoC4", "SoC5", "SoC6"):
        return case_study_application(label, instance=0), case_study_application(label, instance=1)
    generator = ApplicationGenerator(
        soc_config=setup.soc_config,
        accelerator_names=[descriptor.name for descriptor in setup.accelerators],
        generator_config=GeneratorConfig(num_phases=3, min_threads=2, max_threads=6),
        seed=seed + 41,
    )
    return generator.generate_pair()


def _geomean_normalised(values: Dict[str, float], reference: Dict[str, float]) -> float:
    ratios = []
    for name, reference_value in reference.items():
        value = values.get(name, 0.0)
        if reference_value > 0:
            ratios.append(value / reference_value)
        elif value == 0:
            ratios.append(1.0)
    return geometric_mean(ratios) if ratios else 0.0


def _soc_label_job(params: Dict[str, object], rng) -> Dict[str, object]:
    """Sweep job: the full policy comparison on one Figure 9 SoC label."""
    label = str(params["label"])
    seed = int(params["seed"])  # type: ignore[arg-type]
    policy_kinds = tuple(str(kind) for kind in params["policy_kinds"])  # type: ignore[arg-type]
    training_iterations = int(params["training_iterations"])  # type: ignore[arg-type]

    setup = figure9_setup(label, seed=seed)
    train_app, test_app = figure9_applications(label, setup, seed=seed)
    hetero = fixed_hetero_modes(setup) if "fixed-hetero" in policy_kinds else None
    policies = make_standard_policies(policy_kinds, seed, fixed_hetero_modes=hetero)
    evaluations = evaluate_policies(
        setup,
        policies,
        test_app,
        training_app=train_app,
        training_iterations=training_iterations,
    )
    return {
        "evaluations": {name: ev.to_dict() for name, ev in evaluations.items()}
    }


def run_soc_comparison(
    labels: Sequence[str] = FIGURE9_SOC_LABELS,
    policy_kinds: Sequence[str] = STANDARD_POLICY_KINDS,
    training_iterations: int = 10,
    seed: int = 29,
    runner: Optional[SweepRunner] = None,
) -> SocComparisonResult:
    """Run the Figure 9 sweep over SoC configurations (one job per SoC)."""
    jobs = [
        Job(
            key=label,
            fn=_soc_label_job,
            params={
                "label": label,
                "seed": seed,
                "policy_kinds": tuple(policy_kinds),
                "training_iterations": training_iterations,
            },
            seed=seed,
        )
        for label in labels
    ]
    spec = SweepSpec(name="socs", jobs=jobs)
    outcome = run_spec(spec, runner)

    points: List[SocComparisonPoint] = []
    evaluations_per_soc: Dict[str, Dict[str, PolicyEvaluation]] = {}
    for label in labels:
        payload = outcome[label]
        # Rebuild in policy_kinds order: the cache stores JSON objects with
        # sorted keys, so the payload's own ordering is not meaningful.
        evaluations = {
            kind: PolicyEvaluation.from_dict(payload["evaluations"][kind])
            for kind in policy_kinds
        }
        evaluations_per_soc[label] = evaluations
        reference = evaluations[REFERENCE_POLICY]
        for policy_name, evaluation in evaluations.items():
            points.append(
                SocComparisonPoint(
                    soc_label=label,
                    policy_name=policy_name,
                    norm_exec=_geomean_normalised(
                        evaluation.per_phase_exec, reference.per_phase_exec
                    ),
                    norm_mem=_geomean_normalised(
                        evaluation.per_phase_ddr, reference.per_phase_ddr
                    ),
                )
            )
    return SocComparisonResult(points=points, evaluations=evaluations_per_soc)


def build_case_study_application(label: str, instance: int = 0) -> ApplicationSpec:
    """Convenience re-export used by the examples and tests."""
    return case_study_application(label, instance=instance)
