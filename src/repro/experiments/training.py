"""Figure 8 — performance as a function of training time.

The experiment alternates one training iteration of Cohmeleon on one
instance of the evaluation application with a frozen evaluation on a
different instance, for budgets of 10, 30, and 50 total iterations (the
epsilon/alpha decay schedule spans the budget, so the decay rate differs
per budget).  Iteration 0 corresponds to the untrained model, i.e. the
random policy.  Reported values are the geometric mean over all phases of
the test application, normalised to the fixed non-coherent-DMA policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.policies import CohmeleonPolicy, FixedPolicy
from repro.core.reward import DEFAULT_REWARD_WEIGHTS, RewardWeights
from repro.errors import ExperimentError
from repro.experiments.common import (
    ExperimentSetup,
    build_runtime,
    evaluate_policy,
    traffic_setup,
)
from repro.experiments.phases import figure5_application, training_application
from repro.experiments.sweep import Job, SweepRunner, SweepSpec, run_spec
from repro.soc.coherence import CoherenceMode
from repro.utils.rng import SeededRNG
from repro.utils.stats import geometric_mean
from repro.workloads.runner import run_application
from repro.workloads.spec import ApplicationSpec

#: Training budgets evaluated by the paper.
TRAINING_BUDGETS = (10, 30, 50)


@dataclass
class TrainingCurvePoint:
    """Test performance after a given number of training iterations."""

    iteration: int
    norm_exec: float
    norm_mem: float


@dataclass
class TrainingCurve:
    """One training curve (one total-iteration budget)."""

    total_iterations: int
    points: List[TrainingCurvePoint] = field(default_factory=list)

    def final_point(self) -> TrainingCurvePoint:
        """Performance at the end of training."""
        if not self.points:
            raise ExperimentError("training curve has no points")
        return self.points[-1]

    def initial_point(self) -> TrainingCurvePoint:
        """Performance of the untrained model (iteration 0)."""
        if not self.points:
            raise ExperimentError("training curve has no points")
        return self.points[0]


@dataclass
class TrainingStudyResult:
    """Figure 8: one curve per training budget."""

    setup_name: str
    curves: Dict[int, TrainingCurve]

    def convergence_iteration(self, budget: int, tolerance: float = 0.05) -> int:
        """First iteration whose exec time is within ``tolerance`` of the final one."""
        curve = self.curves[budget]
        final = curve.final_point().norm_exec
        for point in curve.points:
            if point.norm_exec <= final * (1.0 + tolerance):
                return point.iteration
        return curve.final_point().iteration


def _normalised_geomeans(
    result_phases: Dict[str, float], reference_phases: Dict[str, float]
) -> float:
    ratios = []
    for name, reference in reference_phases.items():
        value = result_phases.get(name, 0.0)
        if reference > 0:
            ratios.append(value / reference)
        elif value == 0:
            ratios.append(1.0)
    return geometric_mean(ratios) if ratios else 0.0


def _evaluate_frozen(
    setup: ExperimentSetup,
    policy: CohmeleonPolicy,
    test_app: ApplicationSpec,
    reference_exec: Dict[str, float],
    reference_mem: Dict[str, float],
) -> TrainingCurvePoint:
    """Evaluate the current model without touching its learning state."""
    saved_epsilon = policy.agent.epsilon
    saved_alpha = policy.agent.alpha
    saved_learning = policy.agent.learning_enabled
    policy.freeze()
    result = evaluate_policy(setup, policy, test_app)
    policy.agent.learning_enabled = saved_learning
    policy.agent.epsilon = saved_epsilon
    policy.agent.alpha = saved_alpha
    per_phase_exec = {phase.name: phase.execution_cycles for phase in result.phases}
    per_phase_mem = {phase.name: float(phase.ddr_accesses) for phase in result.phases}
    return TrainingCurvePoint(
        iteration=0,
        norm_exec=_normalised_geomeans(per_phase_exec, reference_exec),
        norm_mem=_normalised_geomeans(per_phase_mem, reference_mem),
    )


def _training_budget_job(params: Dict[str, object], rng) -> Dict[str, object]:
    """Sweep job: one training-budget curve of the Figure 8 study."""
    setup: ExperimentSetup = params["setup"]  # type: ignore[assignment]
    budget = int(params["budget"])  # type: ignore[arg-type]
    seed = int(params["seed"])  # type: ignore[arg-type]
    test_app: ApplicationSpec = params["test_app"]  # type: ignore[assignment]
    train_app: ApplicationSpec = params["train_app"]  # type: ignore[assignment]
    reference_exec = {str(k): float(v) for k, v in dict(params["reference_exec"]).items()}  # type: ignore[arg-type]
    reference_mem = {str(k): float(v) for k, v in dict(params["reference_mem"]).items()}  # type: ignore[arg-type]

    policy = CohmeleonPolicy(
        weights=params["weights"],  # type: ignore[arg-type]
        rng=SeededRNG(seed).spawn("training-study", budget),
    )
    points: List[Dict[str, float]] = []

    # Iteration 0: untrained model (equivalent to the random policy).
    point = _evaluate_frozen(setup, policy, test_app, reference_exec, reference_mem)
    point.iteration = 0
    points.append({"iteration": 0, "norm_exec": point.norm_exec, "norm_mem": point.norm_mem})

    soc, runtime = build_runtime(setup, policy)
    for iteration in range(budget):
        policy.set_training_progress(iteration / budget)
        run_application(soc, runtime, train_app)
        point = _evaluate_frozen(setup, policy, test_app, reference_exec, reference_mem)
        points.append(
            {
                "iteration": iteration + 1,
                "norm_exec": point.norm_exec,
                "norm_mem": point.norm_mem,
            }
        )
    return {"total_iterations": budget, "points": points}


def run_training_study(
    setup: Optional[ExperimentSetup] = None,
    budgets: Sequence[int] = TRAINING_BUDGETS,
    weights: RewardWeights = DEFAULT_REWARD_WEIGHTS,
    seed: int = 23,
    test_app: Optional[ApplicationSpec] = None,
    train_app: Optional[ApplicationSpec] = None,
    runner: Optional[SweepRunner] = None,
) -> TrainingStudyResult:
    """Run the Figure 8 training-time study (one sweep job per budget)."""
    if not budgets:
        raise ExperimentError("at least one training budget is required")
    setup = setup if setup is not None else traffic_setup("SoC0", seed=seed)
    test_app = test_app if test_app is not None else figure5_application(setup, seed=seed)
    train_app = (
        train_app if train_app is not None else training_application(setup, seed=seed + 1)
    )

    # Reference: the fixed non-coherent-DMA policy on the test application.
    reference_result = evaluate_policy(
        setup, FixedPolicy(CoherenceMode.NON_COH_DMA), test_app
    )
    reference_exec = {p.name: p.execution_cycles for p in reference_result.phases}
    reference_mem = {p.name: float(p.ddr_accesses) for p in reference_result.phases}

    jobs = [
        Job(
            # The index keeps keys unique if a budget is repeated.
            key=f"{index}-budget-{budget}",
            fn=_training_budget_job,
            params={
                "setup": setup,
                "budget": budget,
                "seed": seed,
                "weights": weights,
                "test_app": test_app,
                "train_app": train_app,
                "reference_exec": reference_exec,
                "reference_mem": reference_mem,
            },
            seed=seed,
        )
        for index, budget in enumerate(budgets)
    ]
    spec = SweepSpec(name=f"training-{setup.name}", jobs=jobs)
    outcome = run_spec(spec, runner)

    curves: Dict[int, TrainingCurve] = {}
    for budget, payload in zip(budgets, outcome.payloads.values()):
        curves[budget] = TrainingCurve(
            total_iterations=budget,
            points=[
                TrainingCurvePoint(
                    iteration=int(entry["iteration"]),
                    norm_exec=float(entry["norm_exec"]),
                    norm_mem=float(entry["norm_mem"]),
                )
                for entry in payload["points"]
            ],
        )
    return TrainingStudyResult(setup_name=setup.name, curves=curves)
