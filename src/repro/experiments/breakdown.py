"""Figure 7 — breakdown of coherence decisions.

For the trained Cohmeleon model and for the manually-tuned heuristic, the
figure reports which fraction of invocations used each coherence mode,
both overall and split by workload-size class (S/M/L/XL).  The paper's
observation: Cohmeleon learns a distribution similar to the manual
algorithm's, but relies less on non-coherent DMA and more on coherent /
LLC-coherent DMA for workloads that fit on chip, because its bi-objective
reward also penalises off-chip accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.accelerators.invocation import InvocationResult
from repro.errors import ExperimentError
from repro.experiments.common import (
    ExperimentSetup,
    PolicyEvaluation,
    evaluate_policies,
    make_standard_policies,
    traffic_setup,
)
from repro.experiments.phases import figure5_application, training_application
from repro.experiments.sweep import SweepRunner
from repro.soc.coherence import COHERENCE_MODES
from repro.workloads.sizes import WorkloadSizeClass, size_class_of

#: Row labels of Figure 7: the overall breakdown plus one row per size class.
BREAKDOWN_CATEGORIES = ("All", "S", "M", "L", "XL")


@dataclass
class DecisionBreakdown:
    """Coherence-mode selection frequencies for one policy."""

    policy_name: str
    #: ``{category: {mode_label: fraction}}`` with fractions summing to one
    #: per category (categories with no invocations are omitted).
    frequencies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def frequency(self, category: str, mode_label: str) -> float:
        """Selection frequency of ``mode_label`` within ``category``."""
        return self.frequencies.get(category, {}).get(mode_label, 0.0)


def breakdown_from_invocations(
    policy_name: str,
    invocations: Sequence[InvocationResult],
    setup: ExperimentSetup,
) -> DecisionBreakdown:
    """Compute the Figure 7 breakdown from a set of invocation results."""
    if not invocations:
        raise ExperimentError("cannot compute a breakdown from zero invocations")
    per_category_counts: Dict[str, Dict[str, int]] = {
        category: {mode.label: 0 for mode in COHERENCE_MODES}
        for category in BREAKDOWN_CATEGORIES
    }
    totals: Dict[str, int] = {category: 0 for category in BREAKDOWN_CATEGORIES}
    for invocation in invocations:
        size_class = size_class_of(invocation.footprint_bytes, setup.soc_config)
        for category in ("All", size_class.value):
            per_category_counts[category][invocation.mode.label] += 1
            totals[category] += 1

    frequencies: Dict[str, Dict[str, float]] = {}
    for category, counts in per_category_counts.items():
        total = totals[category]
        if total == 0:
            continue
        frequencies[category] = {
            mode_label: count / total for mode_label, count in counts.items()
        }
    return DecisionBreakdown(
        policy_name=policy_name, frequencies=frequencies, counts=dict(totals)
    )


@dataclass
class BreakdownResult:
    """Figure 7: breakdowns for Cohmeleon and the manual heuristic."""

    setup_name: str
    breakdowns: Dict[str, DecisionBreakdown]
    evaluations: Dict[str, PolicyEvaluation]

    def non_coherent_reliance(self, policy_name: str) -> float:
        """Overall fraction of invocations run non-coherently by a policy."""
        return self.breakdowns[policy_name].frequency("All", "non-coh-dma")


def run_breakdown_experiment(
    setup: Optional[ExperimentSetup] = None,
    policy_kinds: Sequence[str] = ("manual", "cohmeleon"),
    training_iterations: int = 10,
    seed: int = 17,
    runner: Optional[SweepRunner] = None,
) -> BreakdownResult:
    """Run the Figure 7 experiment."""
    setup = setup if setup is not None else traffic_setup("SoC0", seed=seed)
    test_app = figure5_application(setup, seed=seed)
    train_app = training_application(setup, seed=seed + 1)
    policies = make_standard_policies(policy_kinds, seed)
    evaluations = evaluate_policies(
        setup,
        policies,
        test_app,
        training_app=train_app,
        training_iterations=training_iterations,
        runner=runner,
    )
    breakdowns = {
        name: breakdown_from_invocations(name, evaluation.result.invocations, setup)
        for name, evaluation in evaluations.items()
    }
    return BreakdownResult(
        setup_name=setup.name, breakdowns=breakdowns, evaluations=evaluations
    )


def workload_size_distribution(
    invocations: Sequence[InvocationResult], setup: ExperimentSetup
) -> Dict[str, int]:
    """Count invocations per workload-size class (diagnostic helper)."""
    distribution: Dict[str, int] = {cls.value: 0 for cls in WorkloadSizeClass}
    for invocation in invocations:
        distribution[size_class_of(invocation.footprint_bytes, setup.soc_config).value] += 1
    return distribution
