"""Shared infrastructure for the experiment harnesses.

An :class:`ExperimentSetup` bundles a SoC configuration with the accelerator
descriptors bound to its tiles; :func:`evaluate_policies` runs the standard
set of eight coherence policies (the four fixed homogeneous policies, the
random policy, the profiled fixed-heterogeneous policy, the manually-tuned
heuristic, and Cohmeleon) on a training/testing application pair, training
the learning-based policy online exactly as the paper describes: learn on a
randomly configured instance of the evaluation application with linearly
decaying epsilon/alpha, freeze, and evaluate on a different instance.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.accelerators.descriptor import AccessPattern, AcceleratorDescriptor
from repro.accelerators.library import ACCELERATOR_LIBRARY
from repro.accelerators.traffic import TrafficGeneratorFactory
from repro.core.policies import (
    CoherencePolicy,
    CohmeleonPolicy,
    FixedHeterogeneousPolicy,
    FixedPolicy,
    ManualPolicy,
    RandomPolicy,
)
from repro.core.reward import DEFAULT_REWARD_WEIGHTS, RewardWeights
from repro.errors import ExperimentError
from repro.experiments.sweep import Job, SweepRunner, SweepSpec, run_spec
from repro.runtime.api import EspRuntime
from repro.soc.coherence import CoherenceMode
from repro.soc.config import SoCConfig, soc_preset
from repro.soc.soc import Soc
from repro.utils.rng import SeededRNG
from repro.workloads.runner import ApplicationResult, run_application
from repro.workloads.spec import ApplicationSpec

#: The coherence policies compared throughout Section 6, in figure order.
STANDARD_POLICY_KINDS: Tuple[str, ...] = (
    "fixed-non-coh-dma",
    "fixed-llc-coh-dma",
    "fixed-coh-dma",
    "fixed-full-coh",
    "rand",
    "fixed-hetero",
    "manual",
    "cohmeleon",
)

#: The policy every figure normalises against.
REFERENCE_POLICY = "fixed-non-coh-dma"

#: Cache-model granularity used by the large experiment sweeps.  Modelling
#: caches at 256-byte blocks (instead of 64-byte lines) cuts simulation cost
#: roughly four-fold without changing any relative result, because every
#: coherence mode is scaled identically.
EXPERIMENT_LINE_BYTES = 256


@dataclass
class ExperimentSetup:
    """A SoC configuration plus the accelerators bound to its tiles."""

    name: str
    soc_config: SoCConfig
    accelerators: List[AcceleratorDescriptor]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.accelerators:
            raise ExperimentError(f"setup {self.name}: no accelerators")
        if len(self.accelerators) > self.soc_config.num_accelerator_tiles:
            raise ExperimentError(
                f"setup {self.name}: {len(self.accelerators)} accelerators do not fit "
                f"in {self.soc_config.num_accelerator_tiles} tiles"
            )

    @property
    def accelerator_names(self) -> List[str]:
        """Distinct accelerator names available in this setup."""
        return sorted({descriptor.name for descriptor in self.accelerators})

    def with_config(self, soc_config: SoCConfig) -> "ExperimentSetup":
        """Return a copy of this setup targeting a different SoC config."""
        return replace(self, soc_config=soc_config)


def build_runtime(
    setup: ExperimentSetup, policy: CoherencePolicy
) -> Tuple[Soc, EspRuntime]:
    """Instantiate a fresh SoC for ``setup`` and bind its accelerators."""
    soc = Soc(setup.soc_config)
    runtime = EspRuntime(soc, policy)
    runtime.bind_library(setup.accelerators)
    return soc, runtime


# ----------------------------------------------------------------------
# Setup factories
# ----------------------------------------------------------------------

def motivation_setup(
    accelerators: Optional[Sequence[AcceleratorDescriptor]] = None,
    line_bytes: Optional[int] = None,
) -> ExperimentSetup:
    """The Section 3 motivation SoC: 32 KB private caches, 2 x 512 KB LLC."""
    config = soc_preset("Motivation")
    if line_bytes is not None:
        config = config.with_line_size(line_bytes)
    descriptors = list(accelerators) if accelerators is not None else list(ACCELERATOR_LIBRARY)
    return ExperimentSetup(name="Motivation", soc_config=config, accelerators=descriptors)


def traffic_setup(
    soc_name: str,
    pattern: Optional[AccessPattern] = None,
    seed: int = 0,
    line_bytes: int = EXPERIMENT_LINE_BYTES,
) -> ExperimentSetup:
    """A traffic-generator SoC (SoC0-SoC3), optionally pattern-restricted."""
    config = soc_preset(soc_name).with_line_size(line_bytes)
    factory = TrafficGeneratorFactory(SeededRNG(seed).spawn("traffic", soc_name, pattern))
    if pattern is None:
        accelerators = factory.build_mixed_set(config.num_accelerator_tiles)
    else:
        accelerators = factory.build_set(config.num_accelerator_tiles, pattern)
    label = soc_name if pattern is None else f"{soc_name}-{pattern.value}"
    return ExperimentSetup(name=label, soc_config=config, accelerators=accelerators, seed=seed)


# ----------------------------------------------------------------------
# Policy construction and evaluation
# ----------------------------------------------------------------------

def make_standard_policies(
    kinds: Sequence[str],
    seed: int,
    fixed_hetero_modes: Optional[Dict[str, CoherenceMode]] = None,
    reward_weights: RewardWeights = DEFAULT_REWARD_WEIGHTS,
) -> Dict[str, CoherencePolicy]:
    """Build the requested policies, in order, keyed by their display name."""
    policies: Dict[str, CoherencePolicy] = {}
    for kind in kinds:
        rng = SeededRNG(seed).spawn("policy", kind)
        if kind.startswith("fixed-") and kind != "fixed-hetero":
            mode_label = kind[len("fixed-"):]
            policies[kind] = FixedPolicy(
                next(m for m in CoherenceMode if m.value == mode_label)
            )
        elif kind == "fixed-hetero":
            policies[kind] = FixedHeterogeneousPolicy(fixed_hetero_modes or {})
        elif kind == "rand":
            policies[kind] = RandomPolicy(rng=rng)
        elif kind == "manual":
            policies[kind] = ManualPolicy()
        elif kind == "cohmeleon":
            policies[kind] = CohmeleonPolicy(weights=reward_weights, rng=rng)
        else:
            raise ExperimentError(f"unknown policy kind {kind!r}")
    return policies


@dataclass
class PolicyEvaluation:
    """Result of evaluating one policy on the test application."""

    policy_name: str
    result: ApplicationResult
    training_results: List[ApplicationResult] = field(default_factory=list)

    @property
    def per_phase_exec(self) -> Dict[str, float]:
        """Execution cycles of each test-application phase."""
        return {phase.name: phase.execution_cycles for phase in self.result.phases}

    @property
    def per_phase_ddr(self) -> Dict[str, float]:
        """Off-chip accesses of each test-application phase."""
        return {phase.name: float(phase.ddr_accesses) for phase in self.result.phases}

    def to_dict(self) -> Dict[str, object]:
        """JSON form (crosses process boundaries and persists in the cache)."""
        return {
            "policy_name": self.policy_name,
            "result": self.result.to_dict(),
            "training_results": [result.to_dict() for result in self.training_results],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PolicyEvaluation":
        """Rebuild an evaluation from :meth:`to_dict` output."""
        return cls(
            policy_name=str(data["policy_name"]),
            result=ApplicationResult.from_dict(data["result"]),  # type: ignore[arg-type]
            training_results=[
                ApplicationResult.from_dict(entry)
                for entry in list(data.get("training_results", []))
            ],
        )


def train_policy(
    setup: ExperimentSetup,
    policy: CohmeleonPolicy,
    training_app: ApplicationSpec,
    iterations: int,
    evaluation_hook: Optional[Callable[[int, CohmeleonPolicy], None]] = None,
    max_events: Optional[int] = None,
) -> List[ApplicationResult]:
    """Train a Cohmeleon policy online for ``iterations`` application runs.

    Epsilon and alpha decay linearly to zero over the training iterations,
    as in the paper.  ``evaluation_hook`` (used by the Figure 8 study) is
    called after every iteration with the iteration index and the policy.
    ``max_events`` bounds each phase's event budget (bounded what-if
    evaluations; ``None`` keeps the engine default).
    """
    if iterations <= 0:
        return []
    soc, runtime = build_runtime(setup, policy)
    results: List[ApplicationResult] = []
    for iteration in range(iterations):
        policy.set_training_progress(iteration / iterations)
        results.append(
            run_application(soc, runtime, training_app, max_events=max_events)
        )
        if evaluation_hook is not None:
            evaluation_hook(iteration, policy)
    return results


def evaluate_policy(
    setup: ExperimentSetup,
    policy: CoherencePolicy,
    test_app: ApplicationSpec,
    max_events: Optional[int] = None,
) -> ApplicationResult:
    """Run ``test_app`` once under ``policy`` on a fresh SoC."""
    soc, runtime = build_runtime(setup, policy)
    return run_application(soc, runtime, test_app, max_events=max_events)


def evaluate_one_policy(
    setup: ExperimentSetup,
    policy: CoherencePolicy,
    test_app: ApplicationSpec,
    training_app: Optional[ApplicationSpec] = None,
    training_iterations: int = 10,
    policy_name: Optional[str] = None,
    max_events: Optional[int] = None,
) -> PolicyEvaluation:
    """Train (if learning) and evaluate one policy; mutates ``policy``.

    ``max_events`` bounds every phase's event budget — training and
    evaluation alike — so a caller holding a request-scoped budget (the
    what-if path of :mod:`repro.serving`) cannot be run away from.
    """
    training_results: List[ApplicationResult] = []
    if isinstance(policy, CohmeleonPolicy):
        if training_app is not None and training_iterations > 0:
            training_results = train_policy(
                setup, policy, training_app, training_iterations,
                max_events=max_events,
            )
        policy.freeze()
        policy.clear_history()
    result = evaluate_policy(setup, policy, test_app, max_events=max_events)
    return PolicyEvaluation(
        policy_name=policy_name if policy_name is not None else policy.name,
        result=result,
        training_results=training_results,
    )


def _policy_evaluation_job(params: Dict[str, object], rng) -> Dict[str, object]:
    """Sweep job: evaluate one policy on one setup (see :func:`evaluate_policies`)."""
    evaluation = evaluate_one_policy(
        setup=params["setup"],  # type: ignore[arg-type]
        policy=params["policy"],  # type: ignore[arg-type]
        test_app=params["test_app"],  # type: ignore[arg-type]
        training_app=params["training_app"],  # type: ignore[arg-type]
        training_iterations=int(params["training_iterations"]),  # type: ignore[arg-type]
        policy_name=str(params["policy_name"]),
    )
    return evaluation.to_dict()


def evaluate_policies(
    setup: ExperimentSetup,
    policies: Dict[str, CoherencePolicy],
    test_app: ApplicationSpec,
    training_app: Optional[ApplicationSpec] = None,
    training_iterations: int = 10,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, PolicyEvaluation]:
    """Evaluate every policy on ``test_app`` (training the learning ones first).

    Every evaluation runs on a *deep copy* of the caller's policy object, so
    evaluations are independent of each other and of the caller: training,
    freezing, and history-clearing never leak into the passed-in policies,
    and two ``evaluate_policies`` calls with the same arguments return
    identical results.  With ``runner`` the per-policy evaluations dispatch
    through the sweep runner (one job per policy) and may execute in
    parallel worker processes.
    """
    jobs = [
        Job(
            key=name,
            fn=_policy_evaluation_job,
            params={
                "setup": setup,
                "policy": copy.deepcopy(policy),
                "policy_name": name,
                "test_app": test_app,
                "training_app": training_app,
                "training_iterations": training_iterations,
            },
            seed=setup.seed,
        )
        for name, policy in policies.items()
    ]
    spec = SweepSpec(name=f"evaluate-{setup.name}", jobs=jobs)
    outcome = run_spec(spec, runner)
    return {
        name: PolicyEvaluation.from_dict(outcome[name]) for name in policies
    }
