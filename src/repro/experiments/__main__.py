"""``python -m repro.experiments`` — run a figure through the sweep runner."""

import sys

from repro.experiments.sweep.cli import main

if __name__ == "__main__":
    sys.exit(main())
